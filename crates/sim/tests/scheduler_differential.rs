//! Differential property test: the timing-wheel scheduler against the
//! `BinaryHeap` reference oracle.
//!
//! Random operation sequences — schedule (all event kinds, delays spanning
//! every wheel level and the overflow horizon), set/cancel timer, pop,
//! peek, crash purges and rollback flushes — are applied to both
//! implementations in lock-step. After every operation each observable
//! must agree exactly: the popped event stream (time *and* event), peeked
//! times, the virtual clock, pending counts, dispatch counts, timer
//! liveness and the lost-message counter. This is the proof that the
//! wheel's lazy tombstones are observationally equivalent to the oracle's
//! eager drain-and-rebuild purges.

use ocpt_sim::scheduler::{HeapScheduler, WheelScheduler};
use ocpt_sim::{Event, MsgId, ProcessId, SimDuration, TimerId};
use proptest::prelude::*;

/// Process-space size for generated ops.
const N: u16 = 5;

/// Spread raw entropy into a delay that exercises every wheel level and
/// the overflow heap: a 6-bit mantissa shifted by 0..=42 bits (the wheel
/// resolves 36 bits, so the two largest shifts land in overflow).
fn stretch(b: u64) -> SimDuration {
    let shift = (b & 7) * 6;
    let mantissa = (b >> 3) & 0x3F;
    SimDuration::from_nanos(mantissa << shift)
}

/// One generated operation, decoded from raw `(sel, a, b)` entropy (the
/// vendored proptest shim favours plain tuples over custom strategies).
#[derive(Debug)]
enum Op {
    Schedule(SimDuration, Event<u32>),
    SetTimer(ProcessId, SimDuration, u64),
    CancelTimer(u64),
    Pop,
    /// Pop-then-drain-window: one normal pop followed by `pop_matching`
    /// probes for the popped event's `(time, target)` window — exactly
    /// the batched-delivery pattern the run loop uses.
    PopWindow,
    Peek,
    DropFor(ProcessId),
    Clear,
}

fn decode(sel: u8, a: u64, b: u64) -> Op {
    let pid = ProcessId((a % N as u64) as u32);
    match sel % 13 {
        // Scheduling dominates so queues grow deep enough to stress
        // cascades and purges.
        0..=3 => {
            let ev = match (a / N as u64) % 6 {
                0 | 1 => Event::Tick { pid, kind: a },
                2 | 3 => Event::Deliver {
                    src: ProcessId(((a + 1) % N as u64) as u32),
                    dst: pid,
                    msg_id: MsgId(a),
                    msg: (b & 0xFFFF_FFFF) as u32,
                },
                4 => Event::Crash { pid },
                _ => Event::Recover { pid },
            };
            Op::Schedule(stretch(b), ev)
        }
        4 | 5 => Op::SetTimer(pid, stretch(b), a),
        6 => Op::CancelTimer(a),
        7 | 8 => Op::Pop,
        9 => Op::Peek,
        10 => Op::DropFor(pid),
        11 => Op::PopWindow,
        _ => Op::Clear,
    }
}

/// Apply one op to both schedulers, asserting identical results.
fn apply(
    wheel: &mut WheelScheduler<u32>,
    heap: &mut HeapScheduler<u32>,
    timers: &mut Vec<TimerId>,
    op: Op,
) -> Result<(), TestCaseError> {
    match op {
        Op::Schedule(delay, ev) => {
            wheel.schedule_after(delay, ev.clone());
            heap.schedule_after(delay, ev);
        }
        Op::SetTimer(pid, delay, tag) => {
            let tw = wheel.set_timer(pid, delay, tag);
            let th = heap.set_timer(pid, delay, tag);
            prop_assert_eq!(tw, th, "timer id allocation diverged");
            timers.push(tw);
        }
        Op::CancelTimer(raw) => {
            if !timers.is_empty() {
                let id = timers[(raw % timers.len() as u64) as usize];
                wheel.cancel_timer(id);
                heap.cancel_timer(id);
            }
        }
        Op::Pop => {
            prop_assert_eq!(wheel.pop(), heap.pop(), "pop diverged");
        }
        Op::PopWindow => {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(&w, &h, "window-opening pop diverged");
            if let Some((at, ev)) = w {
                if !ev.is_fault() {
                    let pid = ev.target();
                    loop {
                        let (we, he) = (wheel.pop_matching(at, pid), heap.pop_matching(at, pid));
                        prop_assert_eq!(&we, &he, "pop_matching diverged");
                        if we.is_none() {
                            break;
                        }
                    }
                    // A drained window really is drained: the next live
                    // event (if any) is a different (time, target) window
                    // or a fault.
                    prop_assert!(wheel.pop_matching(at, pid).is_none());
                }
            }
        }
        Op::Peek => {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time(), "peek diverged");
        }
        Op::DropFor(pid) => {
            wheel.drop_events_for(pid);
            heap.drop_events_for(pid);
        }
        Op::Clear => {
            wheel.clear_except_faults();
            heap.clear_except_faults();
        }
    }
    // Observable state must agree after every single operation.
    prop_assert_eq!(wheel.now(), heap.now(), "clock diverged");
    prop_assert_eq!(wheel.pending(), heap.pending(), "pending diverged");
    prop_assert_eq!(wheel.peak_pending(), heap.peak_pending(), "peak pending diverged");
    // Arena slot accounting: every insert was an alloc or a reuse, every
    // removal a free, and whatever is neither freed nor live has leaked.
    let a = wheel.arena_stats();
    prop_assert_eq!(a.allocs + a.reuses, a.frees + a.live, "arena slots leaked");
    prop_assert!(a.live <= a.hwm, "arena high-water mark below occupancy");
    prop_assert_eq!(wheel.events_dispatched(), heap.events_dispatched());
    prop_assert_eq!(wheel.clamped_events(), heap.clamped_events());
    prop_assert_eq!(
        wheel.messages_lost_at_crash(),
        heap.messages_lost_at_crash(),
        "lost-message accounting diverged"
    );
    for &id in timers.iter() {
        prop_assert_eq!(wheel.timer_live(id), heap.timer_live(id), "timer_live({:?})", id);
    }
    Ok(())
}

proptest! {
    /// Lock-step equivalence over randomized op sequences, then a full
    /// drain: both implementations must emit the exact same event stream.
    #[test]
    fn wheel_matches_reference_heap(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..120),
    ) {
        let mut wheel: WheelScheduler<u32> = WheelScheduler::new();
        let mut heap: HeapScheduler<u32> = HeapScheduler::new();
        let mut timers: Vec<TimerId> = Vec::new();
        for (sel, a, b) in ops {
            apply(&mut wheel, &mut heap, &mut timers, decode(sel, a, b))?;
        }
        // Drain to exhaustion: the remaining streams must be identical.
        loop {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time(), "drain peek diverged");
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(&w, &h, "drain pop diverged");
            if w.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.pending(), 0);
        prop_assert_eq!(heap.pending(), 0);
        // After exhaustion every payload slot has been reclaimed: the
        // arena holds no live events and the free list accounts for every
        // slot ever created.
        let a = wheel.arena_stats();
        prop_assert_eq!(a.live, 0, "arena payloads survived a full drain");
        prop_assert_eq!(a.allocs + a.reuses, a.frees, "reclaimed-slot accounting broken");
    }

    /// Deep-queue variant: build a large population first (scheduling
    /// only), then hammer purges and pops — the regime where the wheel's
    /// lazy tombstones and the oracle's eager drains differ most
    /// structurally.
    #[test]
    fn purge_heavy_sequences_match(
        seeds in prop::collection::vec((any::<u64>(), any::<u64>()), 50..200),
        purges in prop::collection::vec((any::<u8>(), any::<u64>()), 1..30),
    ) {
        let mut wheel: WheelScheduler<u32> = WheelScheduler::new();
        let mut heap: HeapScheduler<u32> = HeapScheduler::new();
        let mut timers: Vec<TimerId> = Vec::new();
        for (a, b) in seeds {
            // Interleave plain events and timers.
            let op = if a % 3 == 0 {
                Op::SetTimer(ProcessId((a % N as u64) as u32), stretch(b), a)
            } else {
                decode(0, a, b)
            };
            apply(&mut wheel, &mut heap, &mut timers, op)?;
        }
        for (sel, a) in purges {
            let op = match sel % 4 {
                0 => Op::DropFor(ProcessId((a % N as u64) as u32)),
                1 => Op::Clear,
                2 => Op::CancelTimer(a),
                _ => Op::Pop,
            };
            apply(&mut wheel, &mut heap, &mut timers, op)?;
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(&w, &h, "tail diverged");
            if w.is_none() {
                break;
            }
        }
    }
}
