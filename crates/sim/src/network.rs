//! Network model: reliable point-to-point channels with arbitrary finite
//! delays (paper §2.1). Channels are non-FIFO by default — the paper's
//! algorithm does not need FIFO — but FIFO can be enabled per run because
//! the Chandy–Lamport baseline requires it.

use crate::id::ProcessId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// How a per-message transit delay is sampled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly this long.
    Fixed(SimDuration),
    /// Uniform in `[lo, hi]`.
    Uniform(SimDuration, SimDuration),
    /// `floor + Exp(mean)` — a propagation floor plus exponential queueing.
    Exp {
        /// Minimum transit time.
        floor: SimDuration,
        /// Mean of the exponential component.
        mean: SimDuration,
    },
}

impl DelayModel {
    /// Sample one transit delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform(lo, hi) => rng.uniform_duration(lo, hi),
            DelayModel::Exp { floor, mean } => floor + rng.exp_duration(mean),
        }
    }

    /// A sensible LAN-ish default: 50µs floor + Exp(150µs).
    pub fn default_lan() -> Self {
        DelayModel::Exp { floor: SimDuration::from_micros(50), mean: SimDuration::from_micros(150) }
    }
}

/// Per-run network statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages handed to the network.
    pub messages: u64,
    /// Total payload+header bytes carried.
    pub bytes: u64,
}

/// The network: computes delivery times, enforces FIFO when configured,
/// assigns message ids and accumulates traffic statistics.
#[derive(Debug)]
pub struct Network {
    n: usize,
    delay: DelayModel,
    fifo: bool,
    rng: SimRng,
    /// Last delivery instant per ordered channel (src, dst); FIFO only.
    last_delivery: Vec<SimTime>,
    stats: NetworkStats,
}

impl Network {
    /// Build a network for `n` processes.
    pub fn new(n: usize, delay: DelayModel, fifo: bool, seed: u64) -> Self {
        Network {
            n,
            delay,
            fifo,
            rng: SimRng::derive(seed, NET_TAG),
            // The per-channel table is O(n²); only FIFO mode reads it, so
            // non-FIFO runs (the default, and the only mode that scales to
            // 100k processes) skip the allocation entirely.
            last_delivery: if fifo { vec![SimTime::ZERO; n * n] } else { Vec::new() },
            stats: NetworkStats::default(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether channels preserve ordering.
    pub fn is_fifo(&self) -> bool {
        self.fifo
    }

    /// Accept a message at `now`, returning its delivery instant. The
    /// caller assigns message ids and schedules the `Deliver` event.
    pub fn send(&mut self, now: SimTime, src: ProcessId, dst: ProcessId, bytes: u64) -> SimTime {
        assert!(src.index() < self.n && dst.index() < self.n, "pid out of range");
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        let mut at = now + self.delay.sample(&mut self.rng);
        if self.fifo {
            let slot = src.index() * self.n + dst.index();
            if at < self.last_delivery[slot] {
                at = self.last_delivery[slot];
            }
            self.last_delivery[slot] = at;
        }
        at
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }
}

/// Tag for deriving the network's RNG sub-stream from the master seed.
const NET_TAG: u64 = 0x004E_4554_574F_524B; // "NETWORK"

#[cfg(test)]
mod tests {
    use super::*;

    fn net(fifo: bool, delay: DelayModel) -> Network {
        Network::new(4, delay, fifo, 1234)
    }

    #[test]
    fn fixed_delay_is_exact() {
        let mut n = net(false, DelayModel::Fixed(SimDuration::from_micros(10)));
        let now = SimTime::from_millis(1);
        let at = n.send(now, ProcessId(0), ProcessId(1), 100);
        assert_eq!(at, now + SimDuration::from_micros(10));
    }

    #[test]
    fn fifo_never_reorders_a_channel() {
        let mut n = net(true, DelayModel::Uniform(SimDuration::ZERO, SimDuration::from_millis(5)));
        let mut last = SimTime::ZERO;
        for i in 0..200u64 {
            let at = n.send(SimTime::from_micros(i), ProcessId(2), ProcessId(3), 8);
            assert!(at >= last, "FIFO violated");
            last = at;
        }
    }

    #[test]
    fn non_fifo_can_reorder() {
        let mut n = net(false, DelayModel::Uniform(SimDuration::ZERO, SimDuration::from_millis(5)));
        let mut times = Vec::new();
        for i in 0..200u64 {
            let at = n.send(SimTime::from_micros(i), ProcessId(0), ProcessId(1), 8);
            times.push(at);
        }
        // An adjacent inversion is exactly "not sorted" — no need to
        // clone and sort the whole sample to detect one.
        let reordered = times.windows(2).any(|w| w[1] < w[0]);
        assert!(reordered, "expected at least one reordering with this seed");
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net(false, DelayModel::Fixed(SimDuration::ZERO));
        n.send(SimTime::ZERO, ProcessId(0), ProcessId(1), 100);
        n.send(SimTime::ZERO, ProcessId(0), ProcessId(2), 50);
        assert_eq!(n.stats(), NetworkStats { messages: 2, bytes: 150 });
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut n = Network::new(
                3,
                DelayModel::Exp { floor: SimDuration::ZERO, mean: SimDuration::from_micros(100) },
                false,
                99,
            );
            (0..50)
                .map(|_| n.send(SimTime::ZERO, ProcessId(0), ProcessId(1), 1))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
