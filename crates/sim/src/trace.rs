//! Execution tracing: the flight recorder's event source.
//!
//! Traces serve three purposes: (1) the paper-figure scenario tests assert
//! on exact event sequences, (2) the examples render a space-time diagram
//! like the paper's Figures 2 and 5 so a human can eyeball a run, and
//! (3) `ocpt-telemetry` derives causal spans and the versioned JSONL
//! export (DESIGN.md §8) from the recorded stream.
//!
//! Every [`TraceEvent`] carries, besides its time/process/kind triple, a
//! stable machine-readable `code` (e.g. `"ctrl.ck_bgn"`) and, when the
//! event belongs to a checkpoint round, that round's sequence number
//! `seq`. The free-form `detail` string is for human eyes only — JSONL
//! consumers key off `kind`/`code`/`seq` and never parse prose.

use std::fmt::Write as _;

use crate::id::ProcessId;
use crate::time::SimTime;

/// Category of a traced occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// An application message was sent.
    AppSend,
    /// An application message was received and processed.
    AppRecv,
    /// A control message was sent (CK_BGN / CK_REQ / CK_END, markers, …).
    CtrlSend,
    /// A control message was received.
    CtrlRecv,
    /// A tentative checkpoint was taken (state saved optimistically).
    TentativeCkpt,
    /// A checkpoint was finalized (tentative + log flushed / made permanent).
    FinalizeCkpt,
    /// A stable-storage write started.
    StorageStart,
    /// A stable-storage write became durable.
    StorageDone,
    /// The process crashed.
    Crash,
    /// The process restarted and recovered.
    Recover,
    /// Algorithm-specific note. Notes must carry a structured `code`
    /// (use [`Trace::note`]); the detail is auxiliary.
    Note,
}

/// Every kind, in a fixed order (used by summaries and schema docs).
pub const TRACE_KINDS: [TraceKind; 11] = [
    TraceKind::AppSend,
    TraceKind::AppRecv,
    TraceKind::CtrlSend,
    TraceKind::CtrlRecv,
    TraceKind::TentativeCkpt,
    TraceKind::FinalizeCkpt,
    TraceKind::StorageStart,
    TraceKind::StorageDone,
    TraceKind::Crash,
    TraceKind::Recover,
    TraceKind::Note,
];

impl TraceKind {
    fn glyph(self) -> char {
        match self {
            TraceKind::AppSend => '>',
            TraceKind::AppRecv => '<',
            TraceKind::CtrlSend => '}',
            TraceKind::CtrlRecv => '{',
            TraceKind::TentativeCkpt => 'T',
            TraceKind::FinalizeCkpt => 'F',
            TraceKind::StorageStart => 'w',
            TraceKind::StorageDone => 'W',
            TraceKind::Crash => 'X',
            TraceKind::Recover => 'R',
            TraceKind::Note => '*',
        }
    }

    /// The stable schema name of this kind — the `kind` field of every
    /// JSONL trace line. Never rename these: they are part of the
    /// versioned `ocpt-trace` schema (DESIGN.md §8).
    pub const fn name(self) -> &'static str {
        match self {
            TraceKind::AppSend => "app_send",
            TraceKind::AppRecv => "app_recv",
            TraceKind::CtrlSend => "ctrl_send",
            TraceKind::CtrlRecv => "ctrl_recv",
            TraceKind::TentativeCkpt => "tentative_ckpt",
            TraceKind::FinalizeCkpt => "finalize_ckpt",
            TraceKind::StorageStart => "storage_start",
            TraceKind::StorageDone => "storage_done",
            TraceKind::Crash => "crash",
            TraceKind::Recover => "recover",
            TraceKind::Note => "note",
        }
    }

    /// Inverse of [`Self::name`] (used by the JSONL parser and the
    /// `ocpt trace grep --kind` filter).
    pub fn from_name(name: &str) -> Option<TraceKind> {
        TRACE_KINDS.iter().copied().find(|k| k.name() == name)
    }

    /// The default event code recorded when the producer has nothing more
    /// specific to say (protocols that expose richer envelopes override
    /// this with e.g. `"ctrl.ck_bgn"`).
    pub const fn default_code(self) -> &'static str {
        match self {
            TraceKind::AppSend => "app.send",
            TraceKind::AppRecv => "app.recv",
            TraceKind::CtrlSend => "ctrl.send",
            TraceKind::CtrlRecv => "ctrl.recv",
            TraceKind::TentativeCkpt => "ckpt.tentative",
            TraceKind::FinalizeCkpt => "ckpt.finalize",
            TraceKind::StorageStart => "storage.start",
            TraceKind::StorageDone => "storage.done",
            TraceKind::Crash => "fault.crash",
            TraceKind::Recover => "fault.recover",
            TraceKind::Note => "note",
        }
    }
}

/// One traced occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// Which process it happened on.
    pub pid: ProcessId,
    /// Category.
    pub kind: TraceKind,
    /// Stable machine-readable code within the kind (e.g.
    /// `"ctrl.ck_bgn"`, `"recovery.resend"`). Schema field `code`.
    pub code: &'static str,
    /// Checkpoint sequence number (csn) this event belongs to, when it
    /// belongs to one. Schema field `seq` (omitted when `None`).
    pub seq: Option<u64>,
    /// Free-form human-oriented detail (message names, byte counts, …).
    /// Never parsed by tooling.
    pub detail: String,
}

/// An append-only trace. Disabled traces cost one branch per record call.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A recording trace.
    pub fn enabled() -> Self {
        Trace { enabled: true, events: Vec::new() }
    }

    /// A trace that drops everything (for large benchmark runs).
    pub fn disabled() -> Self {
        Trace { enabled: false, events: Vec::new() }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one occurrence with the kind's default code and no sequence
    /// number (no-op when disabled).
    pub fn record(
        &mut self,
        at: SimTime,
        pid: ProcessId,
        kind: TraceKind,
        detail: impl Into<String>,
    ) {
        self.record_coded(at, pid, kind, kind.default_code(), None, detail);
    }

    /// Record one occurrence belonging to checkpoint round `seq`.
    pub fn record_seq(
        &mut self,
        at: SimTime,
        pid: ProcessId,
        kind: TraceKind,
        seq: u64,
        detail: impl Into<String>,
    ) {
        self.record_coded(at, pid, kind, kind.default_code(), Some(seq), detail);
    }

    /// Record one fully-specified occurrence (no-op when disabled). This
    /// is the only path that appends; the other `record*` methods and
    /// [`Self::note`] delegate here.
    pub fn record_coded(
        &mut self,
        at: SimTime,
        pid: ProcessId,
        kind: TraceKind,
        code: &'static str,
        seq: Option<u64>,
        detail: impl Into<String>,
    ) {
        if self.enabled {
            self.events.push(TraceEvent { at, pid, kind, code, seq, detail: detail.into() });
        }
    }

    /// Lazy variant of [`Self::record`]: the detail closure runs only
    /// when recording is on, so hot paths never pay for `format!` of a
    /// detail string that a disabled trace would drop. (Benchmark and
    /// experiment runs disable tracing; this keeps their dispatch loop
    /// allocation-free.)
    #[inline]
    pub fn record_with(
        &mut self,
        at: SimTime,
        pid: ProcessId,
        kind: TraceKind,
        detail: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.record_coded(at, pid, kind, kind.default_code(), None, detail());
        }
    }

    /// Lazy variant of [`Self::record_seq`] (see [`Self::record_with`]).
    #[inline]
    pub fn record_seq_with(
        &mut self,
        at: SimTime,
        pid: ProcessId,
        kind: TraceKind,
        seq: u64,
        detail: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.record_coded(at, pid, kind, kind.default_code(), Some(seq), detail());
        }
    }

    /// Lazy variant of [`Self::record_coded`] (see [`Self::record_with`]).
    #[inline]
    pub fn record_coded_with(
        &mut self,
        at: SimTime,
        pid: ProcessId,
        kind: TraceKind,
        code: &'static str,
        seq: Option<u64>,
        detail: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.record_coded(at, pid, kind, code, seq, detail());
        }
    }

    /// Record an algorithm-specific note. Notes are structured: `code` is
    /// the stable machine-readable label (`"recovery.rollback"`, …) and
    /// `detail` is auxiliary prose that consumers never parse.
    pub fn note(
        &mut self,
        at: SimTime,
        pid: ProcessId,
        code: &'static str,
        detail: impl Into<String>,
    ) {
        self.record_coded(at, pid, TraceKind::Note, code, None, detail);
    }

    /// All recorded events, in record order (which is time order, since the
    /// simulator records as it dispatches).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events on one process.
    pub fn for_process(&self, pid: ProcessId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.pid == pid)
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Render a compact ASCII space-time diagram: one row per process, one
    /// column per recorded event (columns are globally time-ordered). This
    /// intentionally mirrors the look of the paper's Figures 2 and 5.
    pub fn ascii_diagram(&self, n: usize) -> String {
        let cols = self.events.len();
        let mut rows = vec![vec!['-'; cols]; n];
        for (c, e) in self.events.iter().enumerate() {
            if e.pid.index() < n {
                rows[e.pid.index()][c] = e.kind.glyph();
            }
        }
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            let _ = write!(out, "P{i:<3}|");
            out.extend(row.iter());
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "legend: > send  < recv  }} ctrl-send  {{ ctrl-recv  T tentative  F finalize  w flush-start  W durable  X crash  R recover"
        );
        out
    }

    /// Render a proper space-time diagram as an SVG document: one
    /// horizontal lifeline per process, events as glyphs placed at their
    /// true (virtual) times — the publishable version of the paper's
    /// Figures 2 and 5.
    pub fn to_svg(&self, n: usize) -> String {
        const ROW_H: f64 = 42.0;
        const LEFT: f64 = 56.0;
        const WIDTH: f64 = 960.0;
        const TOP: f64 = 28.0;
        let t_max = self.events.iter().map(|e| e.at.as_nanos()).max().unwrap_or(1).max(1);
        let x = |t: SimTime| LEFT + (WIDTH - LEFT - 20.0) * t.as_nanos() as f64 / t_max as f64;
        let y = |p: ProcessId| TOP + ROW_H * p.index() as f64 + ROW_H / 2.0;
        let height = TOP + ROW_H * n as f64 + 34.0;
        let mut s = String::new();
        let _ = write!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{height}" font-family="monospace" font-size="11">"#
        );
        let _ = write!(s, r#"<rect width="100%" height="100%" fill="white"/>"#);
        for p in (0..n).map(|i| ProcessId(i as u32)) {
            let yy = y(p);
            let _ = write!(
                s,
                r##"<line x1="{LEFT}" y1="{yy}" x2="{}" y2="{yy}" stroke="#888"/><text x="8" y="{}">{p}</text>"##,
                WIDTH - 16.0,
                yy + 4.0
            );
        }
        for e in &self.events {
            if e.pid.index() >= n {
                continue;
            }
            let (color, r) = match e.kind {
                TraceKind::TentativeCkpt => ("#e8a33d", 6.0),
                TraceKind::FinalizeCkpt => ("#2e7d32", 6.0),
                TraceKind::StorageStart | TraceKind::StorageDone => ("#7b1fa2", 3.5),
                TraceKind::CtrlSend | TraceKind::CtrlRecv => ("#c62828", 3.0),
                TraceKind::Crash => ("#000000", 7.0),
                TraceKind::Recover => ("#1565c0", 7.0),
                _ => ("#90a4ae", 2.0),
            };
            let _ = write!(
                s,
                r#"<circle cx="{:.1}" cy="{:.1}" r="{r}" fill="{color}"><title>{} {} {} {}</title></circle>"#,
                x(e.at),
                y(e.pid),
                e.at,
                e.pid,
                e.code,
                svg_escape(&e.detail),
            );
        }
        let _ = write!(
            s,
            r#"<text x="{LEFT}" y="{}">orange=tentative green=finalize purple=storage red=control grey=app  t∈[0,{}]</text>"#,
            height - 12.0,
            SimTime::from_nanos(t_max)
        );
        s.push_str("</svg>");
        s
    }

    /// A line-per-event textual log (stable format, used in tests/examples).
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let seq = e.seq.map(|s| format!("#{s}")).unwrap_or_default();
            let _ = writeln!(
                out,
                "{:>12}  {:<4} {:<16} {}{} {}",
                e.at.to_string(),
                e.pid.to_string(),
                e.code,
                e.kind.name(),
                seq,
                e.detail
            );
        }
        out
    }
}

fn svg_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_contains_lifelines_and_events() {
        let mut t = Trace::enabled();
        t.record_seq(SimTime::from_millis(1), ProcessId(0), TraceKind::TentativeCkpt, 1, "CT(1)");
        t.record_seq(SimTime::from_millis(2), ProcessId(1), TraceKind::FinalizeCkpt, 1, "C(1)");
        t.record(SimTime::from_millis(3), ProcessId(1), TraceKind::AppSend, "M<1>&x");
        let svg = t.to_svg(2);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<line").count(), 2, "one lifeline per process");
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("M&lt;1&gt;&amp;x"), "detail must be escaped");
    }

    #[test]
    fn svg_of_empty_trace_is_valid() {
        let t = Trace::enabled();
        let svg = t.to_svg(3);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, ProcessId(0), TraceKind::AppSend, "M1");
        t.note(SimTime::ZERO, ProcessId(0), "x", "y");
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_nanos(1), ProcessId(0), TraceKind::AppSend, "M1");
        t.record(SimTime::from_nanos(2), ProcessId(1), TraceKind::AppRecv, "M1");
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[1].detail, "M1");
        assert_eq!(t.events()[0].code, "app.send");
        assert_eq!(t.events()[0].seq, None);
        assert_eq!(t.for_process(ProcessId(1)).count(), 1);
        assert_eq!(t.of_kind(TraceKind::AppSend).count(), 1);
    }

    #[test]
    fn record_seq_and_coded_carry_structure() {
        let mut t = Trace::enabled();
        t.record_seq(SimTime::from_nanos(5), ProcessId(2), TraceKind::TentativeCkpt, 7, "CT(7)");
        t.record_coded(
            SimTime::from_nanos(6),
            ProcessId(2),
            TraceKind::CtrlSend,
            "ctrl.ck_bgn",
            Some(7),
            "-> P0",
        );
        assert_eq!(t.events()[0].seq, Some(7));
        assert_eq!(t.events()[0].code, "ckpt.tentative");
        assert_eq!(t.events()[1].code, "ctrl.ck_bgn");
    }

    #[test]
    fn notes_are_structured() {
        let mut t = Trace::enabled();
        t.note(SimTime::from_millis(5), ProcessId(2), "recovery.rollback", "to S_3");
        let e = &t.events()[0];
        assert_eq!(e.kind, TraceKind::Note);
        assert_eq!(e.code, "recovery.rollback");
        assert_eq!(e.detail, "to S_3");
    }

    #[test]
    fn kind_names_round_trip() {
        for k in TRACE_KINDS {
            assert_eq!(TraceKind::from_name(k.name()), Some(k), "{}", k.name());
        }
        assert_eq!(TraceKind::from_name("nope"), None);
    }

    #[test]
    fn ascii_diagram_shape() {
        let mut t = Trace::enabled();
        t.record_seq(SimTime::from_nanos(1), ProcessId(0), TraceKind::TentativeCkpt, 1, "CT01");
        t.record_seq(SimTime::from_nanos(2), ProcessId(1), TraceKind::FinalizeCkpt, 1, "C11");
        let d = t.ascii_diagram(2);
        let lines: Vec<&str> = d.lines().collect();
        assert!(lines[0].starts_with("P0"));
        assert!(lines[0].contains('T'));
        assert!(lines[1].contains('F'));
    }

    #[test]
    fn render_log_contains_details() {
        let mut t = Trace::enabled();
        t.note(SimTime::from_millis(5), ProcessId(2), "hello.code", "hello");
        let log = t.render_log();
        assert!(log.contains("P2"));
        assert!(log.contains("hello.code"));
        assert!(log.contains("hello"));
    }
}
