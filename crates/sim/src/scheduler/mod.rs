//! Virtual clock and pending-event queue.
//!
//! Two interchangeable implementations live behind the [`Scheduler`]
//! facade:
//!
//! * [`wheel::WheelScheduler`] — the production kernel: a hierarchical
//!   timing wheel with O(1) amortised schedule/pop and O(1) lazy purges
//!   (watermark tombstones filtered at pop time);
//! * [`reference::HeapScheduler`] — the original `BinaryHeap` kernel,
//!   kept as a behavioural oracle: O(log n) schedule/pop and O(n log n)
//!   eager drain-and-rebuild purges.
//!
//! Both honour the same determinism contract — events fire in
//! `(time, seq)` order with `seq` assigned at insertion — and expose the
//! same observable counters, so `tests/scheduler_differential.rs` can
//! drive them in lock-step through randomized operation sequences and
//! assert identical behaviour. Select with [`SchedulerKind`] (the wheel
//! is the default everywhere).

pub mod reference;
pub mod wheel;

pub use reference::HeapScheduler;
pub use wheel::{ArenaStats, WheelScheduler};

use crate::event::Event;
use crate::id::{ProcessId, TimerId};
use crate::time::{SimDuration, SimTime};

/// Which event-queue implementation a run uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Hierarchical timing wheel with lazy cancellation (production).
    #[default]
    Wheel,
    /// The original `BinaryHeap` with eager purges (differential oracle).
    ReferenceHeap,
}

impl SchedulerKind {
    /// Short stable name (used in bench reports).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Wheel => "wheel",
            SchedulerKind::ReferenceHeap => "reference_heap",
        }
    }
}

/// Virtual clock and pending-event queue (see the module docs for the
/// two implementations behind this facade).
#[derive(Debug)]
pub enum Scheduler<M> {
    /// Timing-wheel kernel.
    Wheel(WheelScheduler<M>),
    /// Binary-heap oracle.
    Reference(HeapScheduler<M>),
}

/// Delegate a method to whichever implementation is active.
macro_rules! delegate {
    ($self:ident, $s:ident => $body:expr) => {
        match $self {
            Scheduler::Wheel($s) => $body,
            Scheduler::Reference($s) => $body,
        }
    };
}

impl<M> Default for Scheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Scheduler<M> {
    /// A scheduler at time zero with no pending events (timing wheel).
    pub fn new() -> Self {
        Scheduler::Wheel(WheelScheduler::new())
    }

    /// The `BinaryHeap` reference implementation (differential oracle).
    pub fn new_reference() -> Self {
        Scheduler::Reference(HeapScheduler::new())
    }

    /// A scheduler of the requested kind.
    pub fn with_kind(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Wheel => Self::new(),
            SchedulerKind::ReferenceHeap => Self::new_reference(),
        }
    }

    /// Which implementation this scheduler uses.
    pub fn kind(&self) -> SchedulerKind {
        match self {
            Scheduler::Wheel(_) => SchedulerKind::Wheel,
            Scheduler::Reference(_) => SchedulerKind::ReferenceHeap,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        delegate!(self, s => s.now())
    }

    /// Number of events dispatched so far.
    #[inline]
    pub fn events_dispatched(&self) -> u64 {
        delegate!(self, s => s.events_dispatched())
    }

    /// Number of events still pending (cancelled-but-unfired timers are
    /// counted until their stale firing is skipped).
    #[inline]
    pub fn pending(&self) -> usize {
        delegate!(self, s => s.pending())
    }

    /// High-water mark of [`Self::pending`] over the scheduler's life —
    /// the peak in-flight event population. Kind-independent: both
    /// implementations observe the same pending count at every step.
    #[inline]
    pub fn peak_pending(&self) -> u64 {
        delegate!(self, s => s.peak_pending())
    }

    /// Allocation counters of the wheel's payload arena. The reference
    /// heap boxes events in its `BinaryHeap` nodes (no arena) and
    /// reports all-zero stats — callers comparing across kinds must
    /// treat this as implementation telemetry, not observable behaviour.
    #[inline]
    pub fn arena_stats(&self) -> ArenaStats {
        match self {
            Scheduler::Wheel(s) => s.arena_stats(),
            Scheduler::Reference(_) => ArenaStats::default(),
        }
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release builds the event is clamped to `now` (runs next) and the
    /// clamp is counted — see [`Self::clamped_events`].
    pub fn schedule_at(&mut self, at: SimTime, event: Event<M>) {
        delegate!(self, s => s.schedule_at(at, event))
    }

    /// Number of events that were scheduled into the past and clamped to
    /// `now` (release builds only; debug builds panic first).
    #[inline]
    pub fn clamped_events(&self) -> u64 {
        delegate!(self, s => s.clamped_events())
    }

    /// Message deliveries that were pending for a process when
    /// [`Self::drop_events_for`] discarded them — in-flight messages lost
    /// to a fail-stop crash.
    #[inline]
    pub fn messages_lost_at_crash(&self) -> u64 {
        delegate!(self, s => s.messages_lost_at_crash())
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: Event<M>) {
        delegate!(self, s => s.schedule_after(delay, event))
    }

    /// Register a timer owned by `pid`, firing after `delay` with the given
    /// owner tag. Returns the id to use for cancellation.
    pub fn set_timer(&mut self, pid: ProcessId, delay: SimDuration, tag: u64) -> TimerId {
        delegate!(self, s => s.set_timer(pid, delay, tag))
    }

    /// Cancel a previously set timer. Cancelling an already-fired or
    /// already-cancelled timer is a harmless no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        delegate!(self, s => s.cancel_timer(id))
    }

    /// True if the timer is still pending (set, not fired, not cancelled).
    pub fn timer_live(&self, id: TimerId) -> bool {
        delegate!(self, s => s.timer_live(id))
    }

    /// Pop the next due event, advancing the clock to its instant.
    ///
    /// Cancelled timers are skipped transparently. Returns `None` when the
    /// queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        delegate!(self, s => s.pop())
    }

    /// Pop the next due event only if it is due at exactly `at`, targets
    /// `pid`, and is not a fault. The delivery-window primitive: after a
    /// normal [`Self::pop`] the run loop keeps draining the same
    /// `(time, process)` window as one batch, amortising per-event
    /// dispatch overhead. Never reorders — only the front event can
    /// match, so `(at, seq)` order (and thus every trace byte) is
    /// preserved.
    pub fn pop_matching(&mut self, at: SimTime, pid: ProcessId) -> Option<Event<M>> {
        delegate!(self, s => s.pop_matching(at, pid))
    }

    /// Peek at the due time of the next (non-cancelled) event without
    /// advancing the clock.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        delegate!(self, s => s.peek_time())
    }

    /// Drop every pending event except injected faults (used at recovery
    /// time: rollback flushes the channels, cancels all timers and ticks,
    /// and the recovery routine re-arms the world afresh).
    pub fn clear_except_faults(&mut self) {
        delegate!(self, s => s.clear_except_faults())
    }

    /// Drop every pending event addressed to `pid` (used at crash time so a
    /// dead process receives nothing until recovery re-arms it).
    ///
    /// Message deliveries *to* a crashed process are lost, matching the
    /// fail-stop model (counted — see [`Self::messages_lost_at_crash`]);
    /// in-flight messages *from* it were already sent.
    pub fn drop_events_for(&mut self, pid: ProcessId) {
        delegate!(self, s => s.drop_events_for(pid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::MsgId;

    const KINDS: [SchedulerKind; 2] = [SchedulerKind::Wheel, SchedulerKind::ReferenceHeap];

    fn tick(pid: u32, kind: u64) -> Event<u32> {
        Event::Tick { pid: ProcessId(pid), kind }
    }

    /// Run an invariant against both implementations.
    fn for_both(f: impl Fn(Scheduler<u32>)) {
        for kind in KINDS {
            f(Scheduler::with_kind(kind));
        }
    }

    #[test]
    fn kind_roundtrip() {
        for kind in KINDS {
            assert_eq!(Scheduler::<u32>::with_kind(kind).kind(), kind);
        }
        assert_eq!(Scheduler::<u32>::new().kind(), SchedulerKind::Wheel);
        assert_eq!(Scheduler::<u32>::default().kind(), SchedulerKind::default());
    }

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        for_both(|mut s| {
            s.schedule_at(SimTime::from_nanos(10), tick(0, 0));
            s.schedule_at(SimTime::from_nanos(5), tick(0, 1));
            s.schedule_at(SimTime::from_nanos(10), tick(0, 2));
            assert_eq!(s.pending(), 3);
            let kinds: Vec<u64> = std::iter::from_fn(|| s.pop())
                .map(|(_, e)| match e {
                    Event::Tick { kind, .. } => kind,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(kinds, vec![1, 0, 2]);
            assert_eq!(s.now(), SimTime::from_nanos(10));
            assert_eq!(s.events_dispatched(), 3);
            assert_eq!(s.pending(), 0);
        });
    }

    #[test]
    fn cancelled_timers_are_skipped() {
        for_both(|mut s| {
            let t1 = s.set_timer(ProcessId(0), SimDuration::from_nanos(5), 100);
            let t2 = s.set_timer(ProcessId(0), SimDuration::from_nanos(10), 200);
            assert!(s.timer_live(t1));
            s.cancel_timer(t1);
            assert!(!s.timer_live(t1));
            let (_, e) = s.pop().expect("one timer should fire");
            match e {
                Event::Timer { id, tag, .. } => {
                    assert_eq!(id, t2);
                    assert_eq!(tag, 200);
                }
                _ => panic!("unexpected event"),
            }
            assert!(s.pop().is_none());
        });
    }

    #[test]
    fn timer_fires_once() {
        for_both(|mut s| {
            let t = s.set_timer(ProcessId(1), SimDuration::from_nanos(1), 7);
            assert!(s.pop().is_some());
            assert!(!s.timer_live(t));
            // Cancelling after fire is a no-op.
            s.cancel_timer(t);
            assert!(s.pop().is_none());
        });
    }

    #[test]
    fn peek_does_not_advance() {
        for_both(|mut s| {
            s.schedule_at(SimTime::from_nanos(42), tick(0, 0));
            assert_eq!(s.peek_time(), Some(SimTime::from_nanos(42)));
            assert_eq!(s.now(), SimTime::ZERO);
        });
    }

    #[test]
    fn schedule_below_internal_cursor_after_peek() {
        // `peek_time` may advance the wheel's internal cursor past `now`;
        // an event then scheduled between `now` and the peeked time must
        // still fire first (the wheel routes it through its early bucket).
        for_both(|mut s| {
            s.schedule_at(SimTime::from_nanos(1_000), tick(0, 0));
            assert_eq!(s.peek_time(), Some(SimTime::from_nanos(1_000)));
            s.schedule_at(SimTime::from_nanos(10), tick(0, 1));
            s.schedule_at(SimTime::from_nanos(10), tick(0, 2));
            assert_eq!(s.peek_time(), Some(SimTime::from_nanos(10)));
            let kinds: Vec<u64> = std::iter::from_fn(|| s.pop())
                .map(|(_, e)| match e {
                    Event::Tick { kind, .. } => kind,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(kinds, vec![1, 2, 0]);
        });
    }

    #[test]
    fn far_future_events_pop_in_order() {
        // Spans every wheel level plus the overflow horizon (> 2^36 ns).
        for_both(|mut s| {
            let times = [1u64 << 40, 1, (1 << 36) + 3, 1 << 12, (1 << 40) + 1, 1 << 24, 0, 1 << 36];
            for (i, &t) in times.iter().enumerate() {
                s.schedule_at(SimTime::from_nanos(t), tick(0, i as u64));
            }
            let mut sorted = times.to_vec();
            sorted.sort_unstable();
            let popped: Vec<u64> =
                std::iter::from_fn(|| s.pop()).map(|(at, _)| at.as_nanos()).collect();
            assert_eq!(popped, sorted);
        });
    }

    #[test]
    fn drop_events_for_removes_only_targets() {
        for_both(|mut s| {
            s.schedule_at(
                SimTime::from_nanos(5),
                Event::Deliver { src: ProcessId(0), dst: ProcessId(1), msg_id: MsgId(0), msg: 9 },
            );
            s.schedule_at(SimTime::from_nanos(6), tick(1, 0));
            s.schedule_at(SimTime::from_nanos(7), tick(2, 0));
            s.schedule_at(SimTime::from_nanos(8), Event::Recover { pid: ProcessId(1) });
            s.drop_events_for(ProcessId(1));
            assert_eq!(s.pending(), 2);
            assert_eq!(s.messages_lost_at_crash(), 1);
            let mut remaining = Vec::new();
            while let Some((_, e)) = s.pop() {
                remaining.push(e.target());
            }
            assert_eq!(remaining, vec![ProcessId(2), ProcessId(1)]); // tick P2, recover P1
        });
    }

    #[test]
    fn events_scheduled_after_drop_survive() {
        // The tombstone is a watermark, not a standing filter: events
        // addressed to the pid *after* the drop must be delivered.
        for_both(|mut s| {
            s.schedule_at(SimTime::from_nanos(5), tick(1, 0));
            s.drop_events_for(ProcessId(1));
            s.schedule_at(SimTime::from_nanos(6), tick(1, 1));
            let t = s.set_timer(ProcessId(1), SimDuration::from_nanos(9), 5);
            assert!(s.timer_live(t));
            let kinds: Vec<Event<u32>> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
            assert!(matches!(kinds[0], Event::Tick { kind: 1, .. }));
            assert!(matches!(kinds[1], Event::Timer { tag: 5, .. }));
            assert_eq!(kinds.len(), 2);
        });
    }

    #[test]
    fn drop_kills_timers_of_target() {
        for_both(|mut s| {
            let t = s.set_timer(ProcessId(3), SimDuration::from_nanos(10), 1);
            assert!(s.timer_live(t));
            s.drop_events_for(ProcessId(3));
            assert!(!s.timer_live(t));
            assert!(s.pop().is_none());
        });
    }

    #[test]
    fn clear_except_faults_keeps_only_faults() {
        for_both(|mut s| {
            s.schedule_at(SimTime::from_nanos(5), tick(0, 0));
            let t = s.set_timer(ProcessId(1), SimDuration::from_nanos(3), 9);
            s.schedule_at(SimTime::from_nanos(7), Event::Crash { pid: ProcessId(2) });
            s.schedule_at(SimTime::from_nanos(9), Event::Recover { pid: ProcessId(2) });
            s.clear_except_faults();
            assert!(!s.timer_live(t));
            assert_eq!(s.pending(), 2);
            let kinds: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
            assert!(matches!(kinds[0], Event::Crash { .. }));
            assert!(matches!(kinds[1], Event::Recover { .. }));
            assert_eq!(kinds.len(), 2);
        });
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), tick(0, 0));
        s.pop();
        s.schedule_at(SimTime::from_nanos(5), tick(0, 1));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn reference_scheduling_in_the_past_panics_in_debug() {
        let mut s: Scheduler<u32> = Scheduler::new_reference();
        s.schedule_at(SimTime::from_nanos(10), tick(0, 0));
        s.pop();
        s.schedule_at(SimTime::from_nanos(5), tick(0, 1));
    }
}
