//! The production event queue: a hierarchical timing wheel with lazy
//! cancellation.
//!
//! ## Layout
//!
//! Six levels of 64 slots each, sliced out of the nanosecond timestamp
//! six bits at a time: level `ℓ` slot `s` holds events whose time agrees
//! with the wheel cursor on every bit above `6·(ℓ+1)` and has `s` in bits
//! `[6ℓ, 6·(ℓ+1))`. Level 0 slots are therefore a single nanosecond wide
//! and level 5 slots cover ~1.1 s; together the wheel spans events up to
//! `2^36` ns (~68.7 s) of *bit distance* from the cursor. Anything
//! farther — or across a `2^36`-aligned boundary — waits in an overflow
//! min-heap and migrates into the wheel when the cursor reaches its
//! 68-second window.
//!
//! `schedule_at` is one shift/XOR to pick a level plus a `Vec` push;
//! `pop` drains the earliest level-0 slot into a small FIFO batch. An
//! event cascades down at most `LEVELS − 1` times before firing, so both
//! operations are O(1) amortised regardless of the pending population —
//! the binary-heap oracle ([`super::reference`]) pays O(log n) per
//! operation and O(n log n) per purge instead.
//!
//! ## Determinism contract
//!
//! Identical to the reference: events fire in `(time, seq)` order, where
//! `seq` is insertion order. Within one level-0 slot every event shares
//! the same nanosecond, so sorting the slot by `seq` at drain time — the
//! only sort in the structure — restores exact FIFO tie-breaking no
//! matter how the events cascaded in.
//!
//! ## Lazy cancellation
//!
//! [`WheelScheduler::drop_events_for`] and
//! [`WheelScheduler::clear_except_faults`] do not walk the pending
//! population. Each records a *watermark* (the current insertion `seq`);
//! a non-fault event is dead iff it was inserted below the relevant
//! watermark, and dead events are discarded when the wheel reaches them.
//! Exact pending/lost counts are maintained eagerly via O(#processes)
//! per-target counters, so [`WheelScheduler::pending`] and
//! [`WheelScheduler::messages_lost_at_crash`] agree with the eager oracle at every
//! step even though the memory is reclaimed late.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use crate::event::{Event, Scheduled};
use crate::id::{ProcessId, TimerId};
use crate::time::{SimDuration, SimTime};

/// Deterministic multiplicative hasher for the timer map. `TimerId`s are
/// dense sequential `u64`s, so SipHash (and its per-map random seeding)
/// buys nothing here and dominates the set/cancel/fire hot path; one
/// multiply by a 64-bit golden-ratio constant plus a xor-shift spreads
/// the counter bits across the whole word.
#[derive(Clone, Copy, Debug, Default)]
struct TimerIdHasher(u64);

impl Hasher for TimerIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 29);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback (FNV-1a) — not used by `TimerId`'s derived Hash.
        let mut h = self.0 ^ 0xCBF2_9CE4_8422_2325;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01B3);
        }
        self.0 = h;
    }
}

type TimerMap = HashMap<TimerId, (ProcessId, u64), BuildHasherDefault<TimerIdHasher>>;

/// Bits per wheel level (64 slots).
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Number of levels.
const LEVELS: usize = 6;
/// Total bits the wheel resolves; events with a larger bit distance from
/// the cursor live in the overflow heap.
const WHEEL_BITS: u32 = BITS * LEVELS as u32;
/// Levels whose slots are drained directly into the pop batch (one small
/// contiguous sort) instead of cascading event-by-event. Level 2 spans
/// 4 µs per slot — small enough that the sort beats per-event hops, and
/// rare enough for newcomers to land below the parked cursor (they fall
/// back to the `early` bucket, which `settle` merges by `(at, seq)`).
const DRAIN_LEVELS: usize = 2;

/// Virtual clock and pending-event queue over a hierarchical timing wheel.
#[derive(Debug)]
pub struct WheelScheduler<M> {
    now: SimTime,
    /// Wheel position in nanoseconds. Always `>= now` and `<=` every
    /// pending event in the wheel, batch and overflow; only events in
    /// `early` may precede it (see [`Self::place`]).
    cursor: u64,
    seq: u64,
    next_timer: u64,
    popped: u64,
    clamped: u64,

    /// `LEVELS × SLOTS` buckets of unordered events.
    slots: Vec<Vec<Scheduled<M>>>,
    /// Emptied slot buffers, recycled so cascades and drains never free
    /// and re-allocate (the hot path is allocation-free at steady state).
    spare: Vec<Vec<Scheduled<M>>>,
    /// One occupancy bit per slot, per level.
    occupied: [u64; LEVELS],
    /// The drained earliest level-0 slot: all entries share one
    /// nanosecond, sorted by `seq`.
    batch: VecDeque<Scheduled<M>>,
    /// Events scheduled below the cursor (possible only between a
    /// `peek_time` and the pop it predicts). `Scheduled`'s reversed `Ord`
    /// makes both heaps min-first.
    early: BinaryHeap<Scheduled<M>>,
    /// Events beyond the wheel horizon.
    overflow: BinaryHeap<Scheduled<M>>,

    /// Live timers with their owner and the `seq` of their firing event
    /// (needed to evaluate the owner's drop watermark).
    timers: TimerMap,
    /// Non-fault events inserted below this are dead (rollback flush).
    clear_mark: u64,
    /// Non-fault events targeting pid `p` inserted below `drop_marks[p]`
    /// are dead (fail-stop crash).
    drop_marks: Vec<u64>,

    /// Exact pending count (matches the oracle's `heap.len()`).
    live: u64,
    /// Pending fault events (never tombstoned).
    fault_live: u64,
    /// Pending non-fault events per target process.
    nonfault_by_target: Vec<u64>,
    /// Pending `Deliver` events per destination process.
    deliver_by_target: Vec<u64>,
    messages_lost: u64,
}

impl<M> Default for WheelScheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> WheelScheduler<M> {
    /// A scheduler at time zero with no pending events.
    pub fn new() -> Self {
        WheelScheduler {
            now: SimTime::ZERO,
            cursor: 0,
            seq: 0,
            next_timer: 0,
            popped: 0,
            clamped: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            spare: Vec::new(),
            occupied: [0; LEVELS],
            batch: VecDeque::new(),
            early: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            timers: TimerMap::default(),
            clear_mark: 0,
            drop_marks: Vec::new(),
            live: 0,
            fault_live: 0,
            nonfault_by_target: Vec::new(),
            deliver_by_target: Vec::new(),
            messages_lost: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    #[inline]
    pub fn events_dispatched(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending (cancelled-but-unfired timers are
    /// counted until their stale firing is skipped, exactly like the
    /// reference heap; tombstoned events are already excluded).
    #[inline]
    pub fn pending(&self) -> usize {
        self.live as usize
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release builds the event is clamped to `now` (runs next) and the
    /// clamp is counted — see [`Self::clamped_events`].
    pub fn schedule_at(&mut self, at: SimTime, event: Event<M>) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        if at < self.now {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        if event.is_fault() {
            self.fault_live += 1;
        } else {
            let t = event.target().index();
            self.grow_targets(t);
            self.nonfault_by_target[t] += 1;
            if matches!(event, Event::Deliver { .. }) {
                self.deliver_by_target[t] += 1;
            }
        }
        self.live += 1;
        self.place(Scheduled { at, seq, event });
    }

    /// Number of events that were scheduled into the past and clamped to
    /// `now`. Always 0 in debug builds (the debug assertion fires first);
    /// a nonzero value in release builds flags a timing-model bug that
    /// would previously have been absorbed silently.
    #[inline]
    pub fn clamped_events(&self) -> u64 {
        self.clamped
    }

    /// Message deliveries that were pending for a process when
    /// [`Self::drop_events_for`] tombstoned them — in-flight messages lost
    /// to a fail-stop crash.
    #[inline]
    pub fn messages_lost_at_crash(&self) -> u64 {
        self.messages_lost
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: Event<M>) {
        self.schedule_at(self.now + delay, event);
    }

    /// Register a timer owned by `pid`, firing after `delay` with the given
    /// owner tag. Returns the id to use for cancellation.
    pub fn set_timer(&mut self, pid: ProcessId, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        // `self.seq` is the seq the firing event is about to receive.
        self.timers.insert(id, (pid, self.seq));
        self.schedule_after(delay, Event::Timer { pid, id, tag });
        id
    }

    /// Cancel a previously set timer. Cancelling an already-fired or
    /// already-cancelled timer is a harmless no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.timers.remove(&id);
    }

    /// True if the timer is still pending (set, not fired, not cancelled,
    /// and its owner not crashed since it was set).
    pub fn timer_live(&self, id: TimerId) -> bool {
        match self.timers.get(&id) {
            Some(&(pid, seq)) => seq >= self.drop_mark(pid.index()),
            None => false,
        }
    }

    /// Pop the next due event, advancing the clock to its instant.
    ///
    /// Cancelled timers and tombstoned events are skipped transparently.
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        self.settle()?;
        let s = if self.next_is_early() {
            self.early.pop().expect("settle leaves a live front")
        } else {
            self.batch.pop_front().expect("settle leaves a live front")
        };
        self.live -= 1;
        if s.event.is_fault() {
            self.fault_live -= 1;
        } else {
            let t = s.event.target().index();
            self.nonfault_by_target[t] -= 1;
            match &s.event {
                Event::Deliver { .. } => {
                    self.deliver_by_target[t] -= 1;
                }
                Event::Timer { id, .. } => {
                    self.timers.remove(id);
                }
                _ => {}
            }
        }
        debug_assert!(s.at >= self.now, "time went backwards");
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.event))
    }

    /// Peek at the due time of the next live event without advancing the
    /// clock. (The wheel cursor may advance internally; `now` does not.)
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.settle()
    }

    /// Drop every pending event except injected faults (used at recovery
    /// time: rollback flushes the channels, cancels all timers and ticks,
    /// and the recovery routine re-arms the world afresh).
    ///
    /// O(#processes): records a watermark; dead events are discarded as
    /// the wheel reaches them.
    pub fn clear_except_faults(&mut self) {
        self.clear_mark = self.seq;
        self.timers.clear();
        self.live = self.fault_live;
        self.nonfault_by_target.iter_mut().for_each(|c| *c = 0);
        self.deliver_by_target.iter_mut().for_each(|c| *c = 0);
    }

    /// Drop every pending event addressed to `pid` (used at crash time so a
    /// dead process receives nothing until recovery re-arms it).
    ///
    /// Message deliveries *to* a crashed process are lost, matching the
    /// fail-stop model (counted — see [`Self::messages_lost_at_crash`]);
    /// in-flight messages *from* it were already sent.
    ///
    /// O(1): records a per-pid watermark; dead events are discarded as the
    /// wheel reaches them.
    pub fn drop_events_for(&mut self, pid: ProcessId) {
        let t = pid.index();
        self.grow_targets(t);
        if self.drop_marks.len() <= t {
            self.drop_marks.resize(t + 1, 0);
        }
        self.drop_marks[t] = self.seq;
        self.messages_lost += self.deliver_by_target[t];
        self.live -= self.nonfault_by_target[t];
        self.nonfault_by_target[t] = 0;
        self.deliver_by_target[t] = 0;
    }

    // ---------- internals ----------

    #[inline]
    fn grow_targets(&mut self, t: usize) {
        if self.nonfault_by_target.len() <= t {
            self.nonfault_by_target.resize(t + 1, 0);
            self.deliver_by_target.resize(t + 1, 0);
        }
    }

    #[inline]
    fn drop_mark(&self, t: usize) -> u64 {
        self.drop_marks.get(t).copied().unwrap_or(0)
    }

    /// Take a slot's contents, leaving a recycled (empty, pre-sized)
    /// buffer in its place. Pair with `self.spare.push(v)` after draining.
    #[inline]
    fn take_slot(&mut self, idx: usize) -> Vec<Scheduled<M>> {
        let fresh = self.spare.pop().unwrap_or_default();
        std::mem::replace(&mut self.slots[idx], fresh)
    }

    /// True if the event was tombstoned by a clear/drop watermark.
    #[inline]
    fn tombstoned(&self, s: &Scheduled<M>) -> bool {
        !s.event.is_fault()
            && (s.seq < self.clear_mark || s.seq < self.drop_mark(s.event.target().index()))
    }

    /// Tombstoned, or a cancelled timer's stale firing.
    #[inline]
    fn is_dead(&self, s: &Scheduled<M>) -> bool {
        if self.tombstoned(s) {
            return true;
        }
        if let Event::Timer { id, .. } = &s.event {
            return !self.timers.contains_key(id);
        }
        false
    }

    /// Account for a dead entry leaving the structure. Tombstoned events
    /// were already subtracted from the counters when the watermark was
    /// recorded; a cancelled timer's stale firing is subtracted here, when
    /// it is physically skipped — exactly when the oracle pops it.
    fn discard(&mut self, s: Scheduled<M>) {
        if self.tombstoned(&s) {
            if let Event::Timer { id, .. } = &s.event {
                self.timers.remove(id);
            }
        } else {
            debug_assert!(matches!(s.event, Event::Timer { .. }), "only timers cancel");
            self.live -= 1;
            self.nonfault_by_target[s.event.target().index()] -= 1;
        }
    }

    /// Bucket an event by its bit distance from the cursor. Callers
    /// guarantee `s.at >= now`; times below the cursor (possible only
    /// after `peek_time` advanced it) go to the `early` heap.
    fn place(&mut self, s: Scheduled<M>) {
        let at = s.at.as_nanos();
        if at < self.cursor {
            self.early.push(s);
            return;
        }
        let diff = at ^ self.cursor;
        if diff >> WHEEL_BITS != 0 {
            self.overflow.push(s);
            return;
        }
        let level = if diff == 0 { 0 } else { ((63 - diff.leading_zeros()) / BITS) as usize };
        let slot = ((at >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(s);
        self.occupied[level] |= 1 << slot;
    }

    /// True if the next due event sits in `early` rather than `batch`.
    /// The batch spans a whole drained window (up to 64 ns), so the two
    /// merge by `(at, seq)` — neither side uniformly precedes the other.
    #[inline]
    fn next_is_early(&self) -> bool {
        match (self.early.peek(), self.batch.front()) {
            (Some(e), Some(b)) => (e.at, e.seq) < (b.at, b.seq),
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Advance until the earliest *live* pending event sits at the front
    /// of `early` or `batch`, discarding dead entries along the way.
    /// Returns its due time, or `None` when fully drained.
    fn settle(&mut self) -> Option<SimTime> {
        loop {
            if self.early.is_empty() && self.batch.is_empty() {
                if !self.refill_batch() {
                    return None;
                }
                continue;
            }
            if self.next_is_early() {
                let s = self.early.peek().expect("checked");
                if self.is_dead(s) {
                    let s = self.early.pop().expect("peeked");
                    self.discard(s);
                    continue;
                }
                return Some(s.at);
            }
            let s = self.batch.front().expect("checked");
            if self.is_dead(s) {
                let s = self.batch.pop_front().expect("peeked");
                self.discard(s);
                continue;
            }
            return Some(s.at);
        }
    }

    /// Drain the earliest occupied level-0 slot into `batch`, cascading
    /// coarser slots and migrating overflow as needed. Returns false when
    /// the wheel and overflow are physically empty.
    fn refill_batch(&mut self) -> bool {
        debug_assert!(self.batch.is_empty() && self.early.is_empty());
        loop {
            // Level 0: every occupied slot is a single nanosecond at or
            // after the cursor within its 64 ns window.
            let mask0 = !0u64 << (self.cursor & (SLOTS as u64 - 1));
            debug_assert_eq!(self.occupied[0] & !mask0, 0, "level-0 slot in the past");
            let bm0 = self.occupied[0] & mask0;
            if bm0 != 0 {
                let slot = bm0.trailing_zeros() as usize;
                self.occupied[0] &= !(1u64 << slot);
                self.cursor = (self.cursor & !(SLOTS as u64 - 1)) | slot as u64;
                let mut v = self.take_slot(slot);
                for s in v.drain(..) {
                    // Tombstoned corpses were already subtracted from the
                    // counters at watermark time; reclaim them here rather
                    // than sorting and re-inspecting them downstream.
                    // (Cancelled-but-untombstoned timers must flow on: the
                    // oracle only skips those at the queue front.)
                    if self.tombstoned(&s) {
                        if let Event::Timer { id, .. } = &s.event {
                            self.timers.remove(id);
                        }
                    } else {
                        self.batch.push_back(s);
                    }
                }
                self.spare.push(v);
                // The only ordering work in the wheel: one nanosecond's
                // ties, FIFO by insertion seq. The batch was empty on
                // entry, so this sorts exactly the drained slot.
                self.batch.make_contiguous().sort_unstable_by_key(|s| s.seq);
                if self.batch.is_empty() {
                    continue;
                }
                return true;
            }
            // Cascade the earliest occupied coarse slot down one level.
            let mut cascaded = false;
            for level in 1..LEVELS {
                let shift = BITS * level as u32;
                let cur_slot = (self.cursor >> shift) & (SLOTS as u64 - 1);
                let mask = !0u64 << cur_slot;
                debug_assert_eq!(self.occupied[level] & !mask, 0, "coarse slot in the past");
                let bm = self.occupied[level] & mask;
                if bm == 0 {
                    continue;
                }
                let slot = bm.trailing_zeros() as usize;
                self.occupied[level] &= !(1u64 << slot);
                // Jump the cursor to the slot's start (time between the
                // old cursor and here is provably empty), then re-bucket
                // the slot's events — each lands strictly below `level`.
                let below_parent = (1u64 << (shift + BITS)) - 1;
                let slot_start = (self.cursor & !below_parent) | ((slot as u64) << shift);
                self.cursor = self.cursor.max(slot_start);
                if level <= DRAIN_LEVELS {
                    // Fine slots (64 ns at level 1, 4 µs at level 2) are
                    // drained straight into the batch instead of being
                    // re-bucketed one level at a time: one contiguous
                    // `(at, seq)` sort of a small window is cheaper than
                    // a cascade hop per event. Parking the cursor on the
                    // window's last nanosecond keeps the placement
                    // invariant: a newcomer can only land inside the
                    // window at exactly `cursor` (level-0 slot 63) or
                    // below it (the early bucket), and `settle` merges
                    // both against the batch by `(at, seq)`.
                    self.cursor = self.cursor.max(slot_start | ((1u64 << shift) - 1));
                    let mut v = self.take_slot(level * SLOTS + slot);
                    for s in v.drain(..) {
                        if self.tombstoned(&s) {
                            if let Event::Timer { id, .. } = &s.event {
                                self.timers.remove(id);
                            }
                        } else {
                            self.batch.push_back(s);
                        }
                    }
                    self.spare.push(v);
                    if self.batch.is_empty() {
                        cascaded = true;
                        break;
                    }
                    self.batch.make_contiguous().sort_unstable_by_key(|s| (s.at, s.seq));
                    return true;
                }
                let mut v = self.take_slot(level * SLOTS + slot);
                for s in v.drain(..) {
                    if self.tombstoned(&s) {
                        if let Event::Timer { id, .. } = &s.event {
                            self.timers.remove(id);
                        }
                    } else {
                        self.place(s);
                    }
                }
                self.spare.push(v);
                cascaded = true;
                break;
            }
            if cascaded {
                continue;
            }
            // Wheel empty: jump to the overflow horizon and migrate every
            // event within the new 2^36 ns window.
            if let Some(top) = self.overflow.peek() {
                self.cursor = top.at.as_nanos();
                while let Some(top) = self.overflow.peek() {
                    if (top.at.as_nanos() ^ self.cursor) >> WHEEL_BITS != 0 {
                        break;
                    }
                    let s = self.overflow.pop().expect("peeked");
                    self.place(s);
                }
                continue;
            }
            debug_assert_eq!(self.live, 0, "live events but empty structure");
            return false;
        }
    }
}
