//! The production event queue: a hierarchical timing wheel with lazy
//! cancellation over a slab arena.
//!
//! ## Layout
//!
//! Six levels of 64 slots each, sliced out of the nanosecond timestamp
//! six bits at a time: level `ℓ` slot `s` holds events whose time agrees
//! with the wheel cursor on every bit above `6·(ℓ+1)` and has `s` in bits
//! `[6ℓ, 6·(ℓ+1))`. Level 0 slots are therefore a single nanosecond wide
//! and level 5 slots cover ~1.1 s; together the wheel spans events up to
//! `2^36` ns (~68.7 s) of *bit distance* from the cursor. Anything
//! farther — or across a `2^36`-aligned boundary — waits in an overflow
//! min-heap and migrates into the wheel when the cursor reaches its
//! 68-second window.
//!
//! `schedule_at` is one shift/XOR to pick a level plus a `Vec` push;
//! `pop` drains the earliest level-0 slot into a small FIFO batch. An
//! event cascades down at most `LEVELS − 1` times before firing, so both
//! operations are O(1) amortised regardless of the pending population —
//! the binary-heap oracle ([`super::reference`]) pays O(log n) per
//! operation and O(n log n) per purge instead.
//!
//! ## Slab arena
//!
//! The wheel structures never hold `Event<M>` values. Each payload lives
//! in a generational slab (`EventArena`) together with its liveness
//! header (`seq`, `kind`, `target`, generation); what flows through
//! slots, cascades, heaps and the pop batch is a 32-byte `Copy` entry
//! carrying the schedule key `(at, seq)`, the arena handle `(idx, gen)`
//! and a copy of the header — so tombstone checks during drains and
//! sweeps are entry-local, and the arena is touched only to insert, to
//! take a payload, and to read a live timer's id at the queue front.
//! Freed slots go on a free list and are reused, so the steady-state
//! schedule→pop cycle performs **zero heap allocations** — pinned by the
//! per-instance counters in [`ArenaStats`] and a
//! `benches/scheduler_micro.rs` assert, the same idiom as the protocol
//! bench's `TentSet::deep_copies` check.
//!
//! ## Determinism contract
//!
//! Identical to the reference: events fire in `(time, seq)` order, where
//! `seq` is insertion order. Within one level-0 slot every event shares
//! the same nanosecond, so sorting the slot by `seq` at drain time — the
//! only sort in the structure — restores exact FIFO tie-breaking no
//! matter how the events cascaded in.
//!
//! ## Lazy cancellation and the corpse sweep
//!
//! [`WheelScheduler::drop_events_for`] and
//! [`WheelScheduler::clear_except_faults`] do not walk the pending
//! population. Each records a *watermark* (the current insertion `seq`);
//! a non-fault event is dead iff it was inserted below the relevant
//! watermark, and dead events are discarded when the wheel reaches them.
//! Exact pending/lost counts are maintained via O(#processes) per-target
//! counters, so [`WheelScheduler::pending`] and
//! [`WheelScheduler::messages_lost_at_crash`] agree with the eager
//! oracle at every step even though the memory is reclaimed late. The
//! per-target counters themselves are built lazily: until the first
//! `drop_events_for` of a run, `schedule_at`/`pop` maintain only the
//! scalar totals, and the first drop materializes the per-target table
//! with one sequential pass over the arena (crash-free runs — the
//! common case — never pay the two extra counter writes per event).
//!
//! Purely lazy reclamation would let a crash-heavy run accumulate
//! millions of dead payloads (anything tombstoned ahead of the cursor
//! stays resident until its due time), so when corpses outnumber twice
//! the live population a *sweep* reclaims them: a retain over the
//! occupied wheel structures (entry-local checks) plus one sequential
//! pass over the slab freeing tombstoned payloads — no sorting, no
//! random access. The sweep bounds the slab footprint at ~3× the live
//! population while staying amortised O(1) per scheduled event: a sweep
//! only runs when it can free at least two thirds of what it visits, so
//! each visit is charged against a distinct tombstoning.

use std::collections::{BinaryHeap, VecDeque};

use crate::event::Event;
use crate::id::{ProcessId, TimerId};
use crate::time::{SimDuration, SimTime};

/// Bits per wheel level (64 slots).
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Number of levels.
const LEVELS: usize = 6;
/// Total bits the wheel resolves; events with a larger bit distance from
/// the cursor live in the overflow heap.
const WHEEL_BITS: u32 = BITS * LEVELS as u32;
/// Levels whose slots are drained directly into the pop batch (one small
/// contiguous sort) instead of cascading event-by-event. Level 2 spans
/// 4 µs per slot — small enough that the sort beats per-event hops, and
/// rare enough for newcomers to land below the parked cursor (they fall
/// back to the `early` bucket, which `settle` merges by `(at, seq)`).
const DRAIN_LEVELS: usize = 2;

/// Event class, precomputed at schedule time so liveness checks and pop
/// accounting never have to re-match the payload enum.
const K_OTHER: u8 = 0;
const K_DELIVER: u8 = 1;
const K_TIMER: u8 = 2;
const K_FAULT: u8 = 3;

/// A scheduled event as the wheel sees it: the ordering key, the arena
/// handle of the payload, and a copy of the liveness header — 32 `Copy`
/// bytes, so cascades, drains and sorts move half a cache line instead
/// of a full `Event<M>`, and tombstone checks never touch the arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry {
    /// Due instant in nanoseconds.
    at: u64,
    /// Insertion sequence number (FIFO tie-break).
    seq: u64,
    /// Arena slot index of the payload.
    idx: u32,
    /// Arena slot generation (stale-handle detection, debug builds).
    gen: u32,
    /// `event.target().0` (tombstone checks without an arena read).
    target: u32,
    /// One of `K_OTHER` / `K_DELIVER` / `K_TIMER` / `K_FAULT`.
    kind: u8,
}

impl Ord for Entry {
    /// Reversed `(at, seq)` order so `BinaryHeap<Entry>` pops min-first,
    /// matching `Scheduled`'s reversed `Ord`.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Classify an event for the arena slot header: `(kind, target)`.
fn meta<M>(event: &Event<M>) -> (u8, u32) {
    match event {
        Event::Deliver { dst, .. } => (K_DELIVER, dst.0),
        Event::Timer { pid, .. } => (K_TIMER, pid.0),
        Event::Crash { pid } | Event::Recover { pid } => (K_FAULT, pid.0),
        other => (K_OTHER, other.target().0),
    }
}

/// True if an entry was tombstoned by a clear/drop watermark — the
/// entry-local form: drains and sweeps discard corpses without touching
/// the arena.
#[inline]
fn entry_tombstoned(e: &Entry, max_mark: u64, clear_mark: u64, drop_marks: &[u64]) -> bool {
    seq_tombstoned(e.seq, e.kind, e.target, max_mark, clear_mark, drop_marks)
}

/// True if an event with this header was tombstoned by a clear/drop
/// watermark — the header form shared by the entry check, the counter
/// materialization and the corpse sweep's slab pass (which hold the
/// scheduler destructured). The leading compare short-circuits the
/// whole check in crash-free runs (`max_mark` stays 0, every `seq` is
/// ≥ 0).
#[inline]
fn seq_tombstoned(
    seq: u64,
    kind: u8,
    target: u32,
    max_mark: u64,
    clear_mark: u64,
    drop_marks: &[u64],
) -> bool {
    if seq >= max_mark {
        return false;
    }
    kind != K_FAULT
        && (seq < clear_mark || seq < drop_marks.get(target as usize).copied().unwrap_or(0))
}

/// Allocation/occupancy counters of a scheduler's event arena.
///
/// `allocs` counts slab growth (a fresh slot pushed onto the slab) and
/// `reuses` counts free-list recycling; at steady state `allocs` is
/// constant while `reuses` grows — the zero-allocation invariant pinned
/// by the `arena_churn` microbench. `live + frees == allocs + reuses`
/// always (every insert is an alloc or a reuse; every removal is a
/// free), so the differential tests can audit reclaimed-slot accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Slab slots created (heap growth events).
    pub allocs: u64,
    /// Inserts satisfied from the free list (no allocation).
    pub reuses: u64,
    /// Slots returned to the free list.
    pub frees: u64,
    /// Slots currently holding a payload.
    pub live: u64,
    /// High-water mark of `live` — peak physical occupancy, including
    /// tombstoned corpses not yet reclaimed.
    pub hwm: u64,
}

/// One arena slot: the payload plus the liveness header the queue front
/// consults (all on the payload's cache line).
#[derive(Debug)]
struct Slot<M> {
    /// Bumped on every free; an [`Entry`] with a mismatched generation
    /// is stale (its payload was reclaimed by a sweep).
    gen: u32,
    /// `event.target().0`.
    target: u32,
    /// Insertion sequence of the occupying event (tombstone watermark
    /// comparisons).
    seq: u64,
    /// One of `K_OTHER` / `K_DELIVER` / `K_TIMER` / `K_FAULT`.
    kind: u8,
    /// The event, `None` while the slot is on the free list.
    payload: Option<Event<M>>,
}

/// Generational slab holding the `Event<M>` payloads referenced by
/// [`Entry`] handles. Freed slots are recycled LIFO; the generation
/// counter both catches stale-handle bugs at the moment of misuse and
/// lets the corpse sweep free payloads without touching the wheel.
#[derive(Debug)]
struct EventArena<M> {
    slots: Vec<Slot<M>>,
    free: Vec<u32>,
    stats: ArenaStats,
}

impl<M> EventArena<M> {
    fn new() -> Self {
        EventArena { slots: Vec::new(), free: Vec::new(), stats: ArenaStats::default() }
    }

    /// Store a payload and its header, reusing a freed slot when one
    /// exists.
    fn insert(&mut self, event: Event<M>, seq: u64, kind: u8, target: u32) -> (u32, u32) {
        let (idx, gen) = match self.free.pop() {
            Some(idx) => {
                self.stats.reuses += 1;
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.payload.is_none(), "free-list slot still occupied");
                slot.seq = seq;
                slot.kind = kind;
                slot.target = target;
                slot.payload = Some(event);
                (idx, slot.gen)
            }
            None => {
                self.stats.allocs += 1;
                let idx = u32::try_from(self.slots.len()).expect("arena capacity exceeded u32");
                self.slots.push(Slot { gen: 0, target, seq, kind, payload: Some(event) });
                (idx, 0)
            }
        };
        self.stats.live += 1;
        if self.stats.live > self.stats.hwm {
            self.stats.hwm = self.stats.live;
        }
        (idx, gen)
    }

    /// Remove and return the payload behind a handle, bumping the slot
    /// generation and recycling it.
    fn take(&mut self, idx: u32, gen: u32) -> Event<M> {
        let slot = &mut self.slots[idx as usize];
        debug_assert_eq!(slot.gen, gen, "stale arena handle");
        let event = slot.payload.take().expect("arena slot already freed");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        self.stats.frees += 1;
        self.stats.live -= 1;
        event
    }

    /// The slot behind a handle (header reads at the queue front).
    #[inline]
    fn slot(&self, idx: u32) -> &Slot<M> {
        &self.slots[idx as usize]
    }
}

/// Dense registry of live timers, replacing a hash map on the
/// set/cancel/fire hot path.
///
/// Timer ids are allocated sequentially, so the registry is a ring
/// indexed by `id − base`: O(1) insert/lookup/remove with no hashing at
/// all. Dead slots at the front are compacted away as the base advances;
/// interior holes persist only until the timers ahead of them retire,
/// which bounds memory by the live timer *span* rather than the count.
#[derive(Debug, Default)]
struct TimerRing {
    /// Id of `buf[0]`; ids below this are retired (fired or cancelled).
    base: u64,
    /// `(owner, seq of the firing event)` per id ≥ `base`. Only touched
    /// by inserts, compaction, and cold `get` lookups.
    buf: VecDeque<(ProcessId, u64)>,
    /// Liveness, one bit per id: word `i` covers ids
    /// `[64·(word_base+i), 64·(word_base+i) + 64)`. Two orders of
    /// magnitude denser than `buf`, so the per-pop `contains` check and
    /// the per-cancel `remove` stay cache-resident even with hundreds of
    /// thousands of in-flight timers.
    live: VecDeque<u64>,
    /// Absolute index of `live[0]`.
    word_base: u64,
}

impl TimerRing {
    /// Register the next timer id for `pid`, whose firing event will
    /// carry insertion sequence `seq`.
    fn insert(&mut self, pid: ProcessId, seq: u64) -> TimerId {
        let id = self.base + self.buf.len() as u64;
        self.buf.push_back((pid, seq));
        let word = id / 64;
        if self.live.is_empty() {
            self.word_base = word;
        }
        if self.word_base + self.live.len() as u64 <= word {
            self.live.push_back(0);
        }
        let w = (word - self.word_base) as usize;
        self.live[w] |= 1u64 << (id % 64);
        TimerId(id)
    }

    /// The liveness bit of an id. Bits of retired ids are cleared in
    /// place, so a set bit means live; ids outside the word window were
    /// retired long ago (or never issued).
    #[inline]
    fn bit(&self, id: TimerId) -> bool {
        let word = id.0 / 64;
        if word < self.word_base {
            return false;
        }
        match self.live.get((word - self.word_base) as usize) {
            Some(w) => (w >> (id.0 % 64)) & 1 != 0,
            None => false,
        }
    }

    /// Owner and firing-event seq of a live timer. Cold-path lookup
    /// (`timer_live` queries): the hot paths use only the bitmap.
    fn get(&self, id: TimerId) -> Option<(ProcessId, u64)> {
        if !self.bit(id) {
            return None;
        }
        let idx = (id.0 - self.base) as usize;
        self.buf.get(idx).copied()
    }

    /// True if the timer is still registered (set, not fired/cancelled).
    /// One L2-resident bitmap word — never touches the `(pid, seq)` ring.
    #[inline]
    fn contains(&self, id: TimerId) -> bool {
        self.bit(id)
    }

    /// Retire a timer (cancel or fire). No-op if already retired.
    fn remove(&mut self, id: TimerId) {
        let word = id.0 / 64;
        if word >= self.word_base {
            if let Some(w) = self.live.get_mut((word - self.word_base) as usize) {
                *w &= !(1u64 << (id.0 % 64));
            }
        }
        // Compact retired ids off the front so memory tracks the live
        // id *span*, not the historical count.
        while !self.buf.is_empty() && !self.bit(TimerId(self.base)) {
            self.buf.pop_front();
            self.base += 1;
        }
        while (self.word_base + 1) * 64 <= self.base && !self.live.is_empty() {
            self.live.pop_front();
            self.word_base += 1;
        }
    }

    /// Retire every registered timer.
    fn clear(&mut self) {
        self.base += self.buf.len() as u64;
        self.buf.clear();
        self.live.clear();
        self.word_base = 0;
    }
}

/// Liveness of the entry at the queue front.
enum Front {
    /// Fire it.
    Live,
    /// Tombstoned by a watermark: reap it.
    Corpse,
    /// A cancelled timer's firing (never tombstoned, still counted as
    /// pending — exactly like the oracle's heap, which carries the
    /// corpse to the top before skipping it).
    CancelledTimer,
}

/// Virtual clock and pending-event queue over a hierarchical timing wheel.
#[derive(Debug)]
pub struct WheelScheduler<M> {
    now: SimTime,
    /// Wheel position in nanoseconds. Always `>= now` and `<=` every
    /// pending event in the wheel, batch and overflow; only events in
    /// `early` may precede it (see [`Self::place`]).
    cursor: u64,
    seq: u64,
    popped: u64,
    clamped: u64,

    /// Payload + header storage; everything below holds [`Entry`]
    /// handles only.
    arena: EventArena<M>,

    /// `LEVELS × SLOTS` buckets of unordered entries.
    slots: Vec<Vec<Entry>>,
    /// One occupancy bit per slot, per level.
    occupied: [u64; LEVELS],
    /// The drained front window, ordered `(at, seq)`; `batch_pos` is the
    /// consumption cursor (a `Vec` plus index beats a ring buffer here:
    /// pops are one bump, and the drain sort runs on the bare slice).
    batch: Vec<Entry>,
    batch_pos: usize,
    /// Events scheduled below the cursor (possible only between a
    /// `peek_time` and the pop it predicts). `Entry`'s reversed `Ord`
    /// makes both heaps min-first.
    early: BinaryHeap<Entry>,
    /// Events beyond the wheel horizon.
    overflow: BinaryHeap<Entry>,

    /// Live timers with their owner and the `seq` of their firing event
    /// (needed to evaluate the owner's drop watermark).
    timers: TimerRing,
    /// Non-fault events inserted below this are dead (rollback flush).
    clear_mark: u64,
    /// Non-fault events targeting pid `p` inserted below `drop_marks[p]`
    /// are dead (fail-stop crash).
    drop_marks: Vec<u64>,
    /// `max(clear_mark, all drop_marks)`: entries with `seq >= max_mark`
    /// cannot be tombstoned, which reduces the per-entry liveness check
    /// to one compare in crash-free runs.
    max_mark: u64,

    /// Exact pending count (matches the oracle's `heap.len()`).
    live: u64,
    /// High-water mark of `live` over the run.
    peak_live: u64,
    /// Pending fault events (never tombstoned).
    fault_live: u64,
    /// Whether the per-target counters below are materialized. False
    /// until the first `drop_events_for`; flipping it walks the arena
    /// once (see [`Self::activate_counters`]).
    counters_active: bool,
    /// Pending non-fault events per target process (when active).
    nonfault_by_target: Vec<u64>,
    /// Pending `Deliver` events per destination process (when active).
    deliver_by_target: Vec<u64>,
    messages_lost: u64,
}

impl<M> Default for WheelScheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> WheelScheduler<M> {
    /// A scheduler at time zero with no pending events.
    pub fn new() -> Self {
        WheelScheduler {
            now: SimTime::ZERO,
            cursor: 0,
            seq: 0,
            popped: 0,
            clamped: 0,
            arena: EventArena::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            batch: Vec::new(),
            batch_pos: 0,
            early: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            timers: TimerRing::default(),
            clear_mark: 0,
            drop_marks: Vec::new(),
            max_mark: 0,
            live: 0,
            peak_live: 0,
            fault_live: 0,
            counters_active: false,
            nonfault_by_target: Vec::new(),
            deliver_by_target: Vec::new(),
            messages_lost: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    #[inline]
    pub fn events_dispatched(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending (cancelled-but-unfired timers are
    /// counted until their stale firing is skipped, exactly like the
    /// reference heap; tombstoned events are already excluded).
    #[inline]
    pub fn pending(&self) -> usize {
        self.live as usize
    }

    /// High-water mark of [`Self::pending`] over the scheduler's life —
    /// the peak in-flight event population.
    #[inline]
    pub fn peak_pending(&self) -> u64 {
        self.peak_live
    }

    /// Allocation counters of the payload arena (see [`ArenaStats`]).
    #[inline]
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release builds the event is clamped to `now` (runs next) and the
    /// clamp is counted — see [`Self::clamped_events`].
    pub fn schedule_at(&mut self, at: SimTime, event: Event<M>) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        if at < self.now {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let (kind, target) = meta(&event);
        if kind == K_FAULT {
            self.fault_live += 1;
        } else if self.counters_active {
            let t = target as usize;
            self.grow_targets(t);
            self.nonfault_by_target[t] += 1;
            if kind == K_DELIVER {
                self.deliver_by_target[t] += 1;
            }
        }
        self.live += 1;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
        let (idx, gen) = self.arena.insert(event, seq, kind, target);
        self.place(Entry { at: at.as_nanos(), seq, idx, gen, target, kind });
    }

    /// Number of events that were scheduled into the past and clamped to
    /// `now`. Always 0 in debug builds (the debug assertion fires first);
    /// a nonzero value in release builds flags a timing-model bug that
    /// would previously have been absorbed silently.
    #[inline]
    pub fn clamped_events(&self) -> u64 {
        self.clamped
    }

    /// Message deliveries that were pending for a process when
    /// [`Self::drop_events_for`] tombstoned them — in-flight messages lost
    /// to a fail-stop crash.
    #[inline]
    pub fn messages_lost_at_crash(&self) -> u64 {
        self.messages_lost
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: Event<M>) {
        self.schedule_at(self.now + delay, event);
    }

    /// Register a timer owned by `pid`, firing after `delay` with the given
    /// owner tag. Returns the id to use for cancellation.
    pub fn set_timer(&mut self, pid: ProcessId, delay: SimDuration, tag: u64) -> TimerId {
        // `self.seq` is the seq the firing event is about to receive.
        let id = self.timers.insert(pid, self.seq);
        self.schedule_after(delay, Event::Timer { pid, id, tag });
        id
    }

    /// Cancel a previously set timer. Cancelling an already-fired or
    /// already-cancelled timer is a harmless no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.timers.remove(id);
    }

    /// True if the timer is still pending (set, not fired, not cancelled,
    /// and its owner not crashed since it was set).
    pub fn timer_live(&self, id: TimerId) -> bool {
        match self.timers.get(id) {
            Some((pid, seq)) => seq >= self.drop_mark(pid.index()),
            None => false,
        }
    }

    /// Pop the next due event, advancing the clock to its instant.
    ///
    /// Cancelled timers and tombstoned events are skipped transparently.
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        // Fast path: a non-timer at the batch front with nothing in
        // `early` and a seq above every watermark needs no settling —
        // it cannot be tombstoned, and only timers can be cancelled.
        if let Some(&e) = self.batch.get(self.batch_pos) {
            if self.early.is_empty() && e.seq >= self.max_mark && e.kind != K_TIMER {
                self.batch_pos += 1;
                return Some(self.finish_pop(e));
            }
        }
        self.settle()?;
        let e = if self.next_is_early() {
            self.early.pop().expect("settle leaves a live front")
        } else {
            let e = self.batch[self.batch_pos];
            self.batch_pos += 1;
            e
        };
        Some(self.finish_pop(e))
    }

    /// Pop the next due event only if it is due at exactly `at`, targets
    /// `pid`, and is not a fault — the delivery-window primitive: after a
    /// normal [`Self::pop`], the run loop keeps draining the same
    /// `(time, process)` window as one batch, amortising per-event
    /// dispatch overhead without ever reordering (`(at, seq)` order is
    /// preserved because only the *front* event can match).
    pub fn pop_matching(&mut self, at: SimTime, pid: ProcessId) -> Option<Event<M>> {
        self.settle()?;
        let from_early = self.next_is_early();
        let front = if from_early {
            *self.early.peek().expect("settle leaves a live front")
        } else {
            self.batch[self.batch_pos]
        };
        if front.at != at.as_nanos() {
            return None;
        }
        if front.target != pid.0 || front.kind == K_FAULT {
            return None;
        }
        let e = if from_early {
            self.early.pop().expect("peeked")
        } else {
            self.batch_pos += 1;
            front
        };
        Some(self.finish_pop(e).1)
    }

    /// Peek at the due time of the next live event without advancing the
    /// clock. (The wheel cursor may advance internally; `now` does not.)
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.settle()
    }

    /// Drop every pending event except injected faults (used at recovery
    /// time: rollback flushes the channels, cancels all timers and ticks,
    /// and the recovery routine re-arms the world afresh).
    ///
    /// O(#processes): records a watermark; dead events are reclaimed by
    /// the corpse sweep or as the wheel reaches them.
    pub fn clear_except_faults(&mut self) {
        self.clear_mark = self.seq;
        self.max_mark = self.max_mark.max(self.seq);
        self.timers.clear();
        self.live = self.fault_live;
        self.nonfault_by_target.iter_mut().for_each(|c| *c = 0);
        self.deliver_by_target.iter_mut().for_each(|c| *c = 0);
        self.maybe_sweep();
    }

    /// Drop every pending event addressed to `pid` (used at crash time so a
    /// dead process receives nothing until recovery re-arms it).
    ///
    /// Message deliveries *to* a crashed process are lost, matching the
    /// fail-stop model (counted — see [`Self::messages_lost_at_crash`]);
    /// in-flight messages *from* it were already sent.
    ///
    /// Records a per-pid watermark; dead events are reclaimed by the
    /// corpse sweep or as the wheel reaches them. The first drop of a run
    /// additionally walks the arena once to materialize the per-target
    /// counters (O(pending)); subsequent drops are O(1) amortised.
    pub fn drop_events_for(&mut self, pid: ProcessId) {
        if !self.counters_active {
            self.activate_counters();
        }
        let t = pid.index();
        self.grow_targets(t);
        if self.drop_marks.len() <= t {
            self.drop_marks.resize(t + 1, 0);
        }
        self.drop_marks[t] = self.seq;
        self.max_mark = self.max_mark.max(self.seq);
        self.messages_lost += self.deliver_by_target[t];
        self.live -= self.nonfault_by_target[t];
        self.nonfault_by_target[t] = 0;
        self.deliver_by_target[t] = 0;
        self.maybe_sweep();
    }

    // ---------- internals ----------

    /// Materialize the per-target pending counters with one sequential
    /// pass over the arena (every resident payload is a physical event).
    /// Cancelled-but-unfired timers count (the oracle's heap still holds
    /// them); tombstoned corpses do not (they were subtracted when their
    /// watermark was recorded).
    fn activate_counters(&mut self) {
        self.counters_active = true;
        let mut nonfault: Vec<u64> = Vec::new();
        let mut deliver: Vec<u64> = Vec::new();
        for s in &self.arena.slots {
            if s.payload.is_none() || s.kind == K_FAULT {
                continue;
            }
            if seq_tombstoned(
                s.seq,
                s.kind,
                s.target,
                self.max_mark,
                self.clear_mark,
                &self.drop_marks,
            ) {
                continue;
            }
            let t = s.target as usize;
            if nonfault.len() <= t {
                nonfault.resize(t + 1, 0);
                deliver.resize(t + 1, 0);
            }
            nonfault[t] += 1;
            if s.kind == K_DELIVER {
                deliver[t] += 1;
            }
        }
        self.nonfault_by_target = nonfault;
        self.deliver_by_target = deliver;
        debug_assert_eq!(
            self.nonfault_by_target.iter().sum::<u64>() + self.fault_live,
            self.live,
            "materialized counters disagree with the live total"
        );
    }

    #[inline]
    fn grow_targets(&mut self, t: usize) {
        if self.nonfault_by_target.len() <= t {
            self.nonfault_by_target.resize(t + 1, 0);
            self.deliver_by_target.resize(t + 1, 0);
        }
    }

    #[inline]
    fn drop_mark(&self, t: usize) -> u64 {
        self.drop_marks.get(t).copied().unwrap_or(0)
    }

    /// Liveness of a front entry. The tombstone check is entry-local;
    /// only live timers cost an arena read (for the id, on the cache
    /// line the pop that follows is about to take anyway).
    #[inline]
    fn classify(&self, e: &Entry) -> Front {
        if entry_tombstoned(e, self.max_mark, self.clear_mark, &self.drop_marks) {
            return Front::Corpse;
        }
        if e.kind == K_TIMER {
            let s = self.arena.slot(e.idx);
            debug_assert_eq!(s.gen, e.gen, "stale arena handle at the front");
            match s.payload.as_ref() {
                Some(Event::Timer { id, .. }) => {
                    if !self.timers.contains(*id) {
                        return Front::CancelledTimer;
                    }
                }
                _ => unreachable!("K_TIMER slot with non-timer payload"),
            }
        }
        Front::Live
    }

    /// Account for a popped live entry and hand out its payload.
    fn finish_pop(&mut self, e: Entry) -> (SimTime, Event<M>) {
        self.live -= 1;
        let (kind, target) = (e.kind, e.target);
        let event = self.arena.take(e.idx, e.gen);
        match kind {
            K_FAULT => self.fault_live -= 1,
            K_TIMER => {
                if let Event::Timer { id, .. } = &event {
                    self.timers.remove(*id);
                }
                if self.counters_active {
                    self.nonfault_by_target[target as usize] -= 1;
                }
            }
            K_DELIVER => {
                if self.counters_active {
                    let t = target as usize;
                    self.nonfault_by_target[t] -= 1;
                    self.deliver_by_target[t] -= 1;
                }
            }
            _ => {
                if self.counters_active {
                    self.nonfault_by_target[target as usize] -= 1;
                }
            }
        }
        debug_assert!(e.at >= self.now.as_nanos(), "time went backwards");
        self.now = SimTime::from_nanos(e.at);
        self.popped += 1;
        (self.now, event)
    }

    /// Reap a tombstoned corpse (at the front or during a drain): free
    /// the payload and retire any timer registration. Its counters were
    /// settled when the watermark was recorded.
    fn reap(&mut self, e: Entry) {
        let event = self.arena.take(e.idx, e.gen);
        if let Event::Timer { id, .. } = &event {
            self.timers.remove(*id);
        }
    }

    /// Skip a cancelled timer's stale firing at the queue front. It was
    /// still counted as pending (the oracle pops it before skipping),
    /// so the live total and counters are settled here.
    fn discard_cancelled(&mut self, e: Entry) {
        let _ = self.arena.take(e.idx, e.gen);
        self.live -= 1;
        if self.counters_active {
            self.nonfault_by_target[e.target as usize] -= 1;
        }
    }

    /// Eagerly reclaim tombstoned corpses when they outnumber twice the
    /// live population. Two sequential passes — a retain over the
    /// occupied wheel structures (entry-local checks, no arena reads)
    /// and a pass over the slab freeing tombstoned payloads — with no
    /// sorting and no random access anywhere. Bounds the arena footprint
    /// at ~3× live instead of letting crash-heavy runs accumulate
    /// millions of resident corpses.
    fn maybe_sweep(&mut self) {
        let corpses = self.arena.stats.live - self.live;
        if corpses > (self.live * 2).max(4_096) {
            self.sweep_corpses();
        }
    }

    /// The sweep itself. Both passes evaluate the same tombstone
    /// predicate against the same (frozen) watermarks, so every corpse
    /// entry is dropped exactly when its payload is freed. Slab frees
    /// stream in reverse index order, and the LIFO free list then hands
    /// out ascending indices, so the schedule burst that follows a crash
    /// writes payloads sequentially too.
    fn sweep_corpses(&mut self) {
        let Self {
            arena,
            timers,
            slots,
            batch,
            batch_pos,
            early,
            overflow,
            occupied,
            clear_mark,
            drop_marks,
            max_mark,
            ..
        } = self;
        let (mm, cm) = (*max_mark, *clear_mark);
        let keep = |e: &Entry| !entry_tombstoned(e, mm, cm, drop_marks);
        for level in 0..LEVELS {
            let mut bm = occupied[level];
            while bm != 0 {
                let slot = bm.trailing_zeros() as usize;
                bm &= bm - 1;
                let v = &mut slots[level * SLOTS + slot];
                v.retain(&keep);
                if v.is_empty() {
                    occupied[level] &= !(1u64 << slot);
                }
            }
        }
        // The consumed batch prefix is already popped — drop it before
        // retaining so it cannot be revisited.
        batch.drain(..*batch_pos);
        *batch_pos = 0;
        batch.retain(&keep);
        early.retain(&keep);
        overflow.retain(&keep);
        let EventArena { slots: arena_slots, free, stats } = arena;
        for (idx, s) in arena_slots.iter_mut().enumerate().rev() {
            if s.payload.is_none() || !seq_tombstoned(s.seq, s.kind, s.target, mm, cm, drop_marks) {
                continue;
            }
            let event = s.payload.take().expect("occupancy checked");
            s.gen = s.gen.wrapping_add(1);
            free.push(idx as u32);
            stats.frees += 1;
            stats.live -= 1;
            if s.kind == K_TIMER {
                if let Event::Timer { id, .. } = &event {
                    timers.remove(*id);
                }
            }
        }
    }

    /// Bucket an entry by its bit distance from the cursor. Callers
    /// guarantee `e.at >= now`; times below the cursor (possible only
    /// after `peek_time` advanced it) go to the `early` heap.
    fn place(&mut self, e: Entry) {
        let at = e.at;
        if at < self.cursor {
            self.early.push(e);
            return;
        }
        let diff = at ^ self.cursor;
        if diff >> WHEEL_BITS != 0 {
            self.overflow.push(e);
            return;
        }
        let level = if diff == 0 { 0 } else { ((63 - diff.leading_zeros()) / BITS) as usize };
        let slot = ((at >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(e);
        self.occupied[level] |= 1 << slot;
    }

    /// True if the next due event sits in `early` rather than `batch`.
    /// The batch spans a whole drained window (up to 64 ns), so the two
    /// merge by `(at, seq)` — neither side uniformly precedes the other.
    #[inline]
    fn next_is_early(&self) -> bool {
        match (self.early.peek(), self.batch.get(self.batch_pos)) {
            (Some(e), Some(b)) => (e.at, e.seq) < (b.at, b.seq),
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Advance until the earliest *live* pending event sits at the front
    /// of `early` or `batch`, discarding dead entries along the way.
    /// Returns its due time, or `None` when fully drained.
    fn settle(&mut self) -> Option<SimTime> {
        loop {
            if self.early.is_empty() && self.batch_pos >= self.batch.len() {
                if !self.refill_batch() {
                    return None;
                }
                continue;
            }
            let from_early = self.next_is_early();
            let e = if from_early {
                *self.early.peek().expect("checked")
            } else {
                self.batch[self.batch_pos]
            };
            match self.classify(&e) {
                Front::Live => return Some(SimTime::from_nanos(e.at)),
                dead => {
                    if from_early {
                        self.early.pop().expect("peeked");
                    } else {
                        self.batch_pos += 1;
                    }
                    match dead {
                        Front::Corpse => self.reap(e),
                        Front::CancelledTimer => self.discard_cancelled(e),
                        Front::Live => unreachable!(),
                    }
                }
            }
        }
    }

    /// Drain the earliest occupied level-0 slot into `batch`, cascading
    /// coarser slots and migrating overflow as needed. Tombstoned
    /// entries are reaped as they are drained (entry-local check), so
    /// they never participate in a sort or reach `settle`.
    /// Returns false when the wheel and overflow are physically empty.
    fn refill_batch(&mut self) -> bool {
        debug_assert!(self.batch_pos >= self.batch.len() && self.early.is_empty());
        self.batch.clear();
        self.batch_pos = 0;
        loop {
            // Level 0: every occupied slot is a single nanosecond at or
            // after the cursor within its 64 ns window.
            let mask0 = !0u64 << (self.cursor & (SLOTS as u64 - 1));
            debug_assert_eq!(self.occupied[0] & !mask0, 0, "level-0 slot in the past");
            let bm0 = self.occupied[0] & mask0;
            if bm0 != 0 {
                let slot = bm0.trailing_zeros() as usize;
                self.occupied[0] &= !(1u64 << slot);
                self.cursor = (self.cursor & !(SLOTS as u64 - 1)) | slot as u64;
                let mut v = std::mem::take(&mut self.slots[slot]);
                for e in v.drain(..) {
                    if entry_tombstoned(&e, self.max_mark, self.clear_mark, &self.drop_marks) {
                        self.reap(e);
                    } else {
                        self.batch.push(e);
                    }
                }
                self.slots[slot] = v;
                // The only ordering work in the wheel: one nanosecond's
                // ties, FIFO by insertion seq. The batch was empty on
                // entry, so this sorts exactly the drained slot.
                if self.batch.len() > 1 {
                    self.batch.sort_unstable_by_key(|e| e.seq);
                }
                if self.batch.is_empty() {
                    continue;
                }
                return true;
            }
            // Cascade the earliest occupied coarse slot down one level.
            let mut cascaded = false;
            for level in 1..LEVELS {
                let shift = BITS * level as u32;
                let cur_slot = (self.cursor >> shift) & (SLOTS as u64 - 1);
                let mask = !0u64 << cur_slot;
                debug_assert_eq!(self.occupied[level] & !mask, 0, "coarse slot in the past");
                let bm = self.occupied[level] & mask;
                if bm == 0 {
                    continue;
                }
                let slot = bm.trailing_zeros() as usize;
                self.occupied[level] &= !(1u64 << slot);
                // Jump the cursor to the slot's start (time between the
                // old cursor and here is provably empty), then re-bucket
                // the slot's events — each lands strictly below `level`.
                let below_parent = (1u64 << (shift + BITS)) - 1;
                let slot_start = (self.cursor & !below_parent) | ((slot as u64) << shift);
                self.cursor = self.cursor.max(slot_start);
                if level <= DRAIN_LEVELS {
                    // Fine slots (64 ns at level 1, 4 µs at level 2) are
                    // drained straight into the batch instead of being
                    // re-bucketed one level at a time: one contiguous
                    // `(at, seq)` sort of a small window is cheaper than
                    // a cascade hop per event. Parking the cursor on the
                    // window's last nanosecond keeps the placement
                    // invariant: a newcomer can only land inside the
                    // window at exactly `cursor` (level-0 slot 63) or
                    // below it (the early bucket), and `settle` merges
                    // both against the batch by `(at, seq)`.
                    self.cursor = self.cursor.max(slot_start | ((1u64 << shift) - 1));
                    let mut v = std::mem::take(&mut self.slots[level * SLOTS + slot]);
                    for e in v.drain(..) {
                        if entry_tombstoned(&e, self.max_mark, self.clear_mark, &self.drop_marks) {
                            self.reap(e);
                        } else {
                            self.batch.push(e);
                        }
                    }
                    self.slots[level * SLOTS + slot] = v;
                    if self.batch.is_empty() {
                        cascaded = true;
                        break;
                    }
                    if self.batch.len() > 1 {
                        self.batch.sort_unstable_by_key(|e| (e.at, e.seq));
                    }
                    return true;
                }
                // `place` re-buckets strictly below `level`, so the taken
                // slot is never a push target while drained.
                let mut v = std::mem::take(&mut self.slots[level * SLOTS + slot]);
                for e in v.drain(..) {
                    if entry_tombstoned(&e, self.max_mark, self.clear_mark, &self.drop_marks) {
                        self.reap(e);
                    } else {
                        self.place(e);
                    }
                }
                self.slots[level * SLOTS + slot] = v;
                cascaded = true;
                break;
            }
            if cascaded {
                continue;
            }
            // Wheel empty: jump to the overflow horizon and migrate every
            // event within the new 2^36 ns window.
            if let Some(top) = self.overflow.peek() {
                self.cursor = top.at;
                while let Some(top) = self.overflow.peek() {
                    if (top.at ^ self.cursor) >> WHEEL_BITS != 0 {
                        break;
                    }
                    let e = self.overflow.pop().expect("peeked");
                    if entry_tombstoned(&e, self.max_mark, self.clear_mark, &self.drop_marks) {
                        self.reap(e);
                    } else {
                        self.place(e);
                    }
                }
                continue;
            }
            debug_assert_eq!(self.live, 0, "live events but empty structure");
            return false;
        }
    }
}
