//! The reference event queue: a `BinaryHeap` with eager purges.
//!
//! This is the kernel's original scheduler, kept as the behavioural
//! oracle for the timing-wheel implementation in [`super::wheel`]: it is
//! simple enough to be obviously correct, and the differential property
//! test (`tests/scheduler_differential.rs` in this crate) drives both
//! implementations through randomized operation sequences asserting
//! identical event streams and counters.
//!
//! Complexity: `schedule_at`/`pop` are O(log n); `drop_events_for` and
//! `clear_except_faults` drain and rebuild the whole heap — O(n log n)
//! per crash or rollback — which is exactly the cost profile the wheel
//! replaces with O(1) tombstones.

use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::event::{Event, Scheduled};
use crate::id::{ProcessId, TimerId};
use crate::time::{SimDuration, SimTime};

/// Virtual clock and pending-event queue over a binary heap.
#[derive(Debug)]
pub struct HeapScheduler<M> {
    now: SimTime,
    seq: u64,
    next_timer: u64,
    heap: BinaryHeap<Scheduled<M>>,
    /// Timers that have been set and not yet fired or cancelled.
    live_timers: HashSet<TimerId>,
    /// High-water mark of `heap.len()` over the run.
    peak: u64,
    popped: u64,
    /// Past-scheduled events clamped to `now` (release builds only reach
    /// here; debug builds panic first). Nonzero means a model bug that
    /// release runs would otherwise silently absorb.
    clamped: u64,
    /// Message deliveries discarded by [`Self::drop_events_for`] — the
    /// fail-stop model's in-flight messages to a crashed process.
    messages_lost: u64,
}

impl<M> Default for HeapScheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> HeapScheduler<M> {
    /// A scheduler at time zero with no pending events.
    pub fn new() -> Self {
        HeapScheduler {
            now: SimTime::ZERO,
            seq: 0,
            next_timer: 0,
            heap: BinaryHeap::new(),
            live_timers: HashSet::new(),
            peak: 0,
            popped: 0,
            clamped: 0,
            messages_lost: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    #[inline]
    pub fn events_dispatched(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending (cancelled-but-unfired timers are
    /// counted until their stale firing is skipped).
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// High-water mark of [`Self::pending`] over the scheduler's life —
    /// the peak in-flight event population.
    #[inline]
    pub fn peak_pending(&self) -> u64 {
        self.peak
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release builds the event is clamped to `now` (runs next) and the
    /// clamp is counted — see [`Self::clamped_events`].
    pub fn schedule_at(&mut self, at: SimTime, event: Event<M>) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        if at < self.now {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
        self.peak = self.peak.max(self.heap.len() as u64);
    }

    /// Number of events that were scheduled into the past and clamped to
    /// `now`. Always 0 in debug builds (the debug assertion fires first);
    /// a nonzero value in release builds flags a timing-model bug that
    /// would previously have been absorbed silently.
    #[inline]
    pub fn clamped_events(&self) -> u64 {
        self.clamped
    }

    /// Message deliveries that were pending for a process when
    /// [`Self::drop_events_for`] discarded them — in-flight messages lost
    /// to a fail-stop crash.
    #[inline]
    pub fn messages_lost_at_crash(&self) -> u64 {
        self.messages_lost
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: Event<M>) {
        self.schedule_at(self.now + delay, event);
    }

    /// Register a timer owned by `pid`, firing after `delay` with the given
    /// owner tag. Returns the id to use for cancellation.
    pub fn set_timer(&mut self, pid: ProcessId, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.live_timers.insert(id);
        self.schedule_after(delay, Event::Timer { pid, id, tag });
        id
    }

    /// Cancel a previously set timer. Cancelling an already-fired or
    /// already-cancelled timer is a harmless no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.live_timers.remove(&id);
    }

    /// True if the timer is still pending (set, not fired, not cancelled).
    pub fn timer_live(&self, id: TimerId) -> bool {
        self.live_timers.contains(&id)
    }

    /// Pop the next due event, advancing the clock to its instant.
    ///
    /// Cancelled timers are skipped transparently. Returns `None` when the
    /// queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        while let Some(s) = self.heap.pop() {
            if let Event::Timer { id, .. } = &s.event {
                // Drop stale timer firings.
                if !self.live_timers.remove(id) {
                    continue;
                }
            }
            debug_assert!(s.at >= self.now, "time went backwards");
            self.now = s.at;
            self.popped += 1;
            return Some((s.at, s.event));
        }
        None
    }

    /// Pop the next due event only if it is due at exactly `at`, targets
    /// `pid`, and is not a fault — the delivery-window primitive (see
    /// [`super::wheel::WheelScheduler::pop_matching`]). Stale timer
    /// firings ahead of the probe are skipped, exactly as `peek_time`
    /// would skip them.
    pub fn pop_matching(&mut self, at: SimTime, pid: ProcessId) -> Option<Event<M>> {
        loop {
            let s = self.heap.peek()?;
            if let Event::Timer { id, .. } = &s.event {
                if !self.live_timers.contains(id) {
                    self.heap.pop();
                    continue;
                }
            }
            if s.at != at || s.event.is_fault() || s.event.target() != pid {
                return None;
            }
            let s = self.heap.pop().expect("peeked");
            if let Event::Timer { id, .. } = &s.event {
                self.live_timers.remove(id);
            }
            debug_assert!(s.at >= self.now, "time went backwards");
            self.now = s.at;
            self.popped += 1;
            return Some(s.event);
        }
    }

    /// Peek at the due time of the next (non-cancelled) event without
    /// advancing the clock.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(s) = self.heap.peek() {
            if let Event::Timer { id, .. } = &s.event {
                if !self.live_timers.contains(id) {
                    self.heap.pop();
                    continue;
                }
            }
            return Some(s.at);
        }
        None
    }

    /// Drop every pending event except injected faults (used at recovery
    /// time: rollback flushes the channels, cancels all timers and ticks,
    /// and the recovery routine re-arms the world afresh).
    pub fn clear_except_faults(&mut self) {
        let drained: Vec<Scheduled<M>> = std::mem::take(&mut self.heap).into_vec();
        self.live_timers.clear();
        for s in drained {
            if s.event.is_fault() {
                self.heap.push(s);
            }
        }
    }

    /// Drop every pending event addressed to `pid` (used at crash time so a
    /// dead process receives nothing until recovery re-arms it).
    ///
    /// Message deliveries *to* a crashed process are lost, matching the
    /// fail-stop model (counted — see [`Self::messages_lost_at_crash`]);
    /// in-flight messages *from* it were already sent.
    pub fn drop_events_for(&mut self, pid: ProcessId) {
        let drained: Vec<Scheduled<M>> = std::mem::take(&mut self.heap).into_vec();
        for s in drained {
            let addressed = s.event.target() == pid;
            // Faults are driven by the fault plan, never dropped.
            let keep = s.event.is_fault() || !addressed;
            if keep {
                self.heap.push(s);
            } else {
                match &s.event {
                    Event::Deliver { .. } => self.messages_lost += 1,
                    Event::Timer { id, .. } => {
                        self.live_timers.remove(id);
                    }
                    _ => {}
                }
            }
        }
    }
}
