//! Failure injection: fail-stop crashes with optional restart.
//!
//! The checkpointing literature (and this paper) assumes fail-stop
//! processes: a crashed process loses its volatile state (tentative
//! checkpoints and message logs held in memory!) but keeps whatever it
//! flushed to stable storage. A fault plan is a deterministic list of crash
//! and recovery instants, pre-scheduled at simulation start so runs remain
//! reproducible.

use crate::id::ProcessId;
use crate::time::{SimDuration, SimTime};

/// One injected fault: `pid` crashes at `at`, and (optionally) restarts
/// after `down_for`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// The process that fails.
    pub pid: ProcessId,
    /// Crash instant.
    pub at: SimTime,
    /// How long the process stays down; `None` means it never restarts.
    pub down_for: Option<SimDuration>,
}

/// A deterministic schedule of faults for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A single crash of `pid` at `at`, restarting after `down_for`.
    pub fn single(pid: ProcessId, at: SimTime, down_for: SimDuration) -> Self {
        FaultPlan { faults: vec![Fault { pid, at, down_for: Some(down_for) }] }
    }

    /// Add a fault to the plan (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// All faults, in the order added.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Validate the plan against a system of `n` processes: ids in range,
    /// and no overlapping down-times for the same process.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        let mut per: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); n];
        for f in &self.faults {
            if f.pid.index() >= n {
                return Err(format!("fault references {} but n={n}", f.pid));
            }
            let end = match f.down_for {
                Some(d) => f.at + d,
                None => SimTime::MAX,
            };
            per[f.pid.index()].push((f.at, end));
        }
        for (i, spans) in per.iter_mut().enumerate() {
            spans.sort();
            for w in spans.windows(2) {
                if w[1].0 < w[0].1 {
                    return Err(format!("P{i} has overlapping faults"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_plan() {
        let p =
            FaultPlan::single(ProcessId(1), SimTime::from_secs(1), SimDuration::from_millis(100));
        assert_eq!(p.faults().len(), 1);
        assert!(p.validate(4).is_ok());
    }

    #[test]
    fn out_of_range_pid_rejected() {
        let p = FaultPlan::single(ProcessId(9), SimTime::ZERO, SimDuration::ZERO);
        assert!(p.validate(4).is_err());
    }

    #[test]
    fn overlapping_faults_rejected() {
        let p = FaultPlan::none()
            .with(Fault {
                pid: ProcessId(0),
                at: SimTime::from_secs(1),
                down_for: Some(SimDuration::from_secs(10)),
            })
            .with(Fault {
                pid: ProcessId(0),
                at: SimTime::from_secs(5),
                down_for: Some(SimDuration::from_secs(1)),
            });
        assert!(p.validate(2).is_err());
    }

    #[test]
    fn non_overlapping_faults_accepted() {
        let p = FaultPlan::none()
            .with(Fault {
                pid: ProcessId(0),
                at: SimTime::from_secs(1),
                down_for: Some(SimDuration::from_secs(1)),
            })
            .with(Fault { pid: ProcessId(0), at: SimTime::from_secs(3), down_for: None });
        assert!(p.validate(2).is_ok());
    }

    #[test]
    fn permanent_crash_overlaps_everything_after() {
        let p = FaultPlan::none()
            .with(Fault { pid: ProcessId(0), at: SimTime::from_secs(1), down_for: None })
            .with(Fault {
                pid: ProcessId(0),
                at: SimTime::from_secs(3),
                down_for: Some(SimDuration::ZERO),
            });
        assert!(p.validate(1).is_err());
    }
}
