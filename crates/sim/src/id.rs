//! Identifiers shared across the simulation and the protocol crates.

use std::fmt;

/// Identifier of one of the `N` sequential processes `P_0 … P_{N-1}` of the
/// distributed computation (paper §2.1).
///
/// Process ids are dense: a system of `n` processes uses exactly the ids
/// `0..n`. The paper's control-message layer relies on this total order
/// (`CK_BGN` suppression picks the smallest id, the `CK_REQ` ring walks ids
/// upward), so the id is an ordered integer rather than an opaque handle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// The conventional coordinator `P_0` used by the control-message layer.
    pub const P0: ProcessId = ProcessId(0);

    /// The id as a `usize`, for indexing per-process tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterate all process ids `0..n`.
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> {
        assert!(n <= u32::MAX as usize + 1, "too many processes");
        (0..n as u32).map(ProcessId)
    }
}

impl From<u16> for ProcessId {
    fn from(v: u16) -> Self {
        ProcessId(v as u32)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

impl From<usize> for ProcessId {
    fn from(v: usize) -> Self {
        assert!(v <= u32::MAX as usize, "process id out of range");
        ProcessId(v as u32)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a timer registered with the scheduler.
///
/// Timers are cancelled lazily: cancelling bumps a generation counter and a
/// fired event whose id no longer matches is dropped by the scheduler.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// Identifier of an in-flight stable-storage request.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StorageReqId(pub u64);

/// Monotonically increasing identifier for an application message, unique
/// within one simulation run. Used by the causality checker to match send
/// and receive events of the same message.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_iteration_and_index() {
        let ids: Vec<ProcessId> = ProcessId::all(3).collect();
        assert_eq!(ids, vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
        assert_eq!(ids[2].index(), 2);
    }

    #[test]
    fn process_id_display() {
        assert_eq!(ProcessId(7).to_string(), "P7");
        assert_eq!(format!("{:?}", ProcessId(7)), "P7");
    }

    #[test]
    fn conversions() {
        assert_eq!(ProcessId::from(3u16), ProcessId(3));
        assert_eq!(ProcessId::from(4usize), ProcessId(4));
    }

    #[test]
    #[should_panic]
    fn oversized_usize_panics() {
        let _ = ProcessId::from(u32::MAX as usize + 1);
    }

    #[test]
    fn ids_beyond_u16_work() {
        // Regression: ids past 65 535 must survive the usize round-trip
        // (they used to silently truncate when the id was a u16).
        let p = ProcessId::from(70_000usize);
        assert_eq!(p.index(), 70_000);
        assert_eq!(p.to_string(), "P70000");
    }
}
