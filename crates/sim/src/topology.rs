//! Communication topologies for workload generators.
//!
//! A topology answers one question: which peers may a process send
//! application messages to? The underlying network is always fully
//! connected (any process *can* reach any other — the control-message layer
//! relies on that); topology only shapes the *application* traffic pattern.

use crate::id::ProcessId;

/// Application-level communication topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Every process may message every other process.
    FullMesh,
    /// Process `i` messages `i±1 (mod n)`.
    Ring,
    /// Process 0 is the hub; leaves message only the hub, the hub messages leaves.
    Star,
    /// 2-D grid (row-major, `cols` columns); neighbors are N/S/E/W.
    Grid {
        /// Number of columns of the grid; rows are derived from `n`.
        cols: usize,
    },
}

impl Topology {
    /// The peers `src` may send to, in ascending id order.
    pub fn neighbors(&self, n: usize, src: ProcessId) -> Vec<ProcessId> {
        assert!(n >= 2, "need at least two processes");
        let i = src.index();
        assert!(i < n, "pid out of range");
        let mut out = match *self {
            Topology::FullMesh => (0..n).filter(|&j| j != i).map(ProcessId::from).collect(),
            Topology::Ring => {
                let prev = (i + n - 1) % n;
                let next = (i + 1) % n;
                let mut v = vec![ProcessId::from(prev), ProcessId::from(next)];
                v.sort();
                v.dedup();
                v
            }
            Topology::Star => {
                if i == 0 {
                    (1..n).map(ProcessId::from).collect()
                } else {
                    vec![ProcessId::P0]
                }
            }
            Topology::Grid { cols } => {
                assert!(cols >= 1, "grid needs at least one column");
                let r = i / cols;
                let c = i % cols;
                let mut v = Vec::with_capacity(4);
                if r > 0 {
                    v.push(i - cols);
                }
                if c > 0 {
                    v.push(i - 1);
                }
                if c + 1 < cols && i + 1 < n {
                    v.push(i + 1);
                }
                if i + cols < n {
                    v.push(i + cols);
                }
                v.into_iter().map(ProcessId::from).collect()
            }
        };
        out.sort();
        out
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::FullMesh => "mesh",
            Topology::Ring => "ring",
            Topology::Star => "star",
            Topology::Grid { .. } => "grid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ProcessId> {
        v.iter().map(|&x| ProcessId(x)).collect()
    }

    #[test]
    fn full_mesh_excludes_self() {
        let nbrs = Topology::FullMesh.neighbors(4, ProcessId(2));
        assert_eq!(nbrs, ids(&[0, 1, 3]));
    }

    #[test]
    fn ring_wraps() {
        assert_eq!(Topology::Ring.neighbors(5, ProcessId(0)), ids(&[1, 4]));
        assert_eq!(Topology::Ring.neighbors(5, ProcessId(4)), ids(&[0, 3]));
    }

    #[test]
    fn ring_of_two_dedups() {
        assert_eq!(Topology::Ring.neighbors(2, ProcessId(0)), ids(&[1]));
    }

    #[test]
    fn star_hub_and_leaf() {
        assert_eq!(Topology::Star.neighbors(4, ProcessId(0)), ids(&[1, 2, 3]));
        assert_eq!(Topology::Star.neighbors(4, ProcessId(3)), ids(&[0]));
    }

    #[test]
    fn grid_interior_and_edges() {
        // 2x3 grid: 0 1 2 / 3 4 5
        let g = Topology::Grid { cols: 3 };
        assert_eq!(g.neighbors(6, ProcessId(0)), ids(&[1, 3]));
        assert_eq!(g.neighbors(6, ProcessId(1)), ids(&[0, 2, 4]));
        assert_eq!(g.neighbors(6, ProcessId(4)), ids(&[1, 3, 5]));
    }

    #[test]
    fn grid_ragged_last_row() {
        // 3 cols, n=5: 0 1 2 / 3 4
        let g = Topology::Grid { cols: 3 };
        assert_eq!(g.neighbors(5, ProcessId(2)), ids(&[1]));
        assert_eq!(g.neighbors(5, ProcessId(4)), ids(&[1, 3]));
    }

    #[test]
    fn every_topology_keeps_everyone_connected() {
        // Sanity: union of neighbor relations is connected (BFS reaches all).
        for topo in [Topology::FullMesh, Topology::Ring, Topology::Star, Topology::Grid { cols: 4 }]
        {
            let n = 12;
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(i) = stack.pop() {
                for p in topo.neighbors(n, ProcessId::from(i)) {
                    if !seen[p.index()] {
                        seen[p.index()] = true;
                        stack.push(p.index());
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "{topo:?} disconnected");
        }
    }
}
