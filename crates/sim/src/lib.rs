//! # ocpt-sim — deterministic discrete-event simulation kernel
//!
//! The substrate on which the checkpointing protocols are evaluated. It
//! implements the system model of Jiang & Manivannan (IPDPS 2007), §2.1:
//!
//! * `N` sequential processes communicating **only** by message passing;
//! * reliable channels with **finite but arbitrary** delays;
//! * channels **need not be FIFO** (FIFO is available as an option because
//!   the Chandy–Lamport baseline requires it);
//! * no shared memory, no global clock — the virtual clock here exists only
//!   in the simulator, never visible to protocol logic.
//!
//! The kernel is deliberately small: a virtual clock + event queue
//! ([`Scheduler`] — a hierarchical timing wheel, with the original binary
//! heap retained as a differential oracle), a delay-sampling [`Network`],
//! seeded randomness
//! ([`SimRng`]), failure injection ([`FaultPlan`]) and tracing ([`Trace`]).
//! Protocol state machines live in `ocpt-core`/`ocpt-baselines`; the glue
//! that drives them over this kernel lives in `ocpt-harness`.
//!
//! ## Determinism
//!
//! A run is a pure function of its [`SimConfig`] (including the seed) and
//! the driving logic. Ties in the event queue break by insertion order and
//! all random draws come from named SplitMix64-derived sub-streams, so
//! adding instrumentation never perturbs an experiment.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod event;
pub mod fault;
pub mod id;
pub mod network;
pub mod rng;
pub mod scheduler;
pub mod time;
pub mod topology;
pub mod trace;

pub use config::SimConfig;
pub use event::{Event, Scheduled};
pub use fault::{Fault, FaultPlan};
pub use id::{MsgId, ProcessId, StorageReqId, TimerId};
pub use network::{DelayModel, Network, NetworkStats};
pub use rng::{derive_seed, SimRng};
pub use scheduler::{ArenaStats, Scheduler, SchedulerKind};
pub use time::{SimDuration, SimTime};
pub use topology::Topology;
pub use trace::{Trace, TraceEvent, TraceKind, TRACE_KINDS};
