//! Deterministic random-number generation for simulations.
//!
//! Every run is fully determined by a single `u64` seed. Sub-streams (per
//! process, per channel, per workload) are derived with SplitMix64 so that
//! adding a consumer does not perturb the draws seen by existing consumers —
//! essential for comparable parameter sweeps.

use crate::time::SimDuration;

/// SplitMix64 step, used to derive independent sub-seeds from a master seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a named sub-seed from a master seed. `tag` distinguishes streams
/// (e.g. per-process workload vs. channel jitter).
pub fn derive_seed(master: u64, tag: u64) -> u64 {
    let mut s = master ^ tag.wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut s)
}

/// A seeded RNG with distribution helpers used across the simulator.
///
/// Self-contained xoshiro256++ core (Blackman & Vigna), seeded by
/// SplitMix64 expansion of the `u64` seed — no external dependency, and
/// the stream for a given seed is stable across platforms and builds.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create from an explicit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SimRng { s }
    }

    /// Create a derived sub-stream.
    pub fn derive(master: u64, tag: u64) -> Self {
        SimRng::new(derive_seed(master, tag))
    }

    /// Next raw 64-bit draw (xoshiro256++ step).
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire widening-multiply mapping with rejection for exact
        // uniformity.
        loop {
            let x = self.next_u64();
            let m = x as u128 * bound as u128;
            let lo = m as u64;
            // Fast path: a low part >= bound can never be biased.
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn next_usize_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        self.next_u64_below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed duration with the given mean.
    ///
    /// Used for Poisson message inter-arrival times in the workloads.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        if mean.is_zero() {
            return SimDuration::ZERO;
        }
        // Inverse-CDF sampling; clamp u away from 0 to avoid ln(0).
        let u = self.next_f64().max(1e-12);
        mean.mul_f64(-u.ln())
    }

    /// Uniformly jittered duration in `[base - spread, base + spread]`,
    /// clamped at zero.
    pub fn jittered(&mut self, base: SimDuration, spread: SimDuration) -> SimDuration {
        if spread.is_zero() {
            return base;
        }
        let lo = base.as_nanos().saturating_sub(spread.as_nanos());
        let hi = base.as_nanos().saturating_add(spread.as_nanos());
        SimDuration::from_nanos(self.next_u64_inclusive(lo, hi))
    }

    /// Uniform duration in `[lo, hi]`.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "uniform_duration: lo > hi");
        SimDuration::from_nanos(self.next_u64_inclusive(lo.as_nanos(), hi.as_nanos()))
    }

    /// Uniform `u64` in `[lo, hi]` (both inclusive).
    fn next_u64_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let width = hi - lo;
        if width == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64_below(width + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_below(1000), b.next_u64_below(1000));
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = SimRng::derive(42, 1);
        let mut b = SimRng::derive(42, 2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64_below(u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64_below(u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn exp_duration_mean_is_plausible() {
        let mut r = SimRng::new(7);
        let mean = SimDuration::from_millis(10);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| r.exp_duration(mean).as_nanos()).sum();
        let avg = total / n;
        // Within 5% of the requested mean.
        let expect = mean.as_nanos();
        assert!((avg as f64 - expect as f64).abs() < 0.05 * expect as f64, "avg={avg}");
    }

    #[test]
    fn exp_duration_zero_mean() {
        let mut r = SimRng::new(7);
        assert_eq!(r.exp_duration(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn jittered_bounds() {
        let mut r = SimRng::new(9);
        let base = SimDuration::from_micros(100);
        let spread = SimDuration::from_micros(20);
        for _ in 0..1000 {
            let d = r.jittered(base, spread);
            assert!(d >= SimDuration::from_micros(80) && d <= SimDuration::from_micros(120));
        }
        assert_eq!(r.jittered(base, SimDuration::ZERO), base);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0 + 1e-9));
    }
}
