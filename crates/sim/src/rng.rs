//! Deterministic random-number generation for simulations.
//!
//! Every run is fully determined by a single `u64` seed. Sub-streams (per
//! process, per channel, per workload) are derived with SplitMix64 so that
//! adding a consumer does not perturb the draws seen by existing consumers —
//! essential for comparable parameter sweeps.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// SplitMix64 step, used to derive independent sub-seeds from a master seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a named sub-seed from a master seed. `tag` distinguishes streams
/// (e.g. per-process workload vs. channel jitter).
pub fn derive_seed(master: u64, tag: u64) -> u64 {
    let mut s = master ^ tag.wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut s)
}

/// A seeded RNG with distribution helpers used across the simulator.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create from an explicit seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Create a derived sub-stream.
    pub fn derive(master: u64, tag: u64) -> Self {
        SimRng::new(derive_seed(master, tag))
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn next_usize_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p
    }

    /// Exponentially distributed duration with the given mean.
    ///
    /// Used for Poisson message inter-arrival times in the workloads.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        if mean.is_zero() {
            return SimDuration::ZERO;
        }
        // Inverse-CDF sampling; clamp u away from 0 to avoid ln(0).
        let u = self.inner.gen::<f64>().max(1e-12);
        mean.mul_f64(-u.ln())
    }

    /// Uniformly jittered duration in `[base - spread, base + spread]`,
    /// clamped at zero.
    pub fn jittered(&mut self, base: SimDuration, spread: SimDuration) -> SimDuration {
        if spread.is_zero() {
            return base;
        }
        let lo = base.as_nanos().saturating_sub(spread.as_nanos());
        let hi = base.as_nanos().saturating_add(spread.as_nanos());
        SimDuration::from_nanos(self.inner.gen_range(lo..=hi))
    }

    /// Uniform duration in `[lo, hi]`.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "uniform_duration: lo > hi");
        SimDuration::from_nanos(self.inner.gen_range(lo.as_nanos()..=hi.as_nanos()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_below(1000), b.next_u64_below(1000));
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = SimRng::derive(42, 1);
        let mut b = SimRng::derive(42, 2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64_below(u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64_below(u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn exp_duration_mean_is_plausible() {
        let mut r = SimRng::new(7);
        let mean = SimDuration::from_millis(10);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| r.exp_duration(mean).as_nanos()).sum();
        let avg = total / n;
        // Within 5% of the requested mean.
        let expect = mean.as_nanos();
        assert!((avg as f64 - expect as f64).abs() < 0.05 * expect as f64, "avg={avg}");
    }

    #[test]
    fn exp_duration_zero_mean() {
        let mut r = SimRng::new(7);
        assert_eq!(r.exp_duration(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn jittered_bounds() {
        let mut r = SimRng::new(9);
        let base = SimDuration::from_micros(100);
        let spread = SimDuration::from_micros(20);
        for _ in 0..1000 {
            let d = r.jittered(base, spread);
            assert!(d >= SimDuration::from_micros(80) && d <= SimDuration::from_micros(120));
        }
        assert_eq!(r.jittered(base, SimDuration::ZERO), base);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0 + 1e-9));
    }
}
