//! Simulation events.
//!
//! The kernel is specialised for message-passing distributed systems: the
//! event vocabulary covers message delivery, per-process timers, stable
//! storage completions, workload ticks and crash/recovery faults. The
//! payload type `M` is generic so each protocol carries its own envelope.

use crate::id::{MsgId, ProcessId, StorageReqId, TimerId};
use crate::time::SimTime;

/// A simulation event, dispatched by the scheduler at its due time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event<M> {
    /// A message from `src` arrives at `dst`.
    Deliver {
        /// Sending process.
        src: ProcessId,
        /// Receiving process.
        dst: ProcessId,
        /// Unique id of this message within the run.
        msg_id: MsgId,
        /// Protocol-specific envelope.
        msg: M,
    },
    /// A timer owned by `pid` fires. `tag` is the owner's discriminator.
    Timer {
        /// Owning process.
        pid: ProcessId,
        /// Scheduler-assigned id (for cancellation).
        id: TimerId,
        /// Owner-chosen discriminator (e.g. "checkpoint interval").
        tag: u64,
    },
    /// A stable-storage write issued by `pid` has become durable.
    StorageDone {
        /// Issuing process.
        pid: ProcessId,
        /// The request that completed.
        req: StorageReqId,
    },
    /// A workload tick for `pid` (e.g. "emit the next application message").
    Tick {
        /// Target process.
        pid: ProcessId,
        /// Owner-chosen discriminator.
        kind: u64,
    },
    /// Process `pid` crashes (fail-stop).
    Crash {
        /// Crashing process.
        pid: ProcessId,
    },
    /// Process `pid` restarts and begins recovery.
    Recover {
        /// Recovering process.
        pid: ProcessId,
    },
}

impl<M> Event<M> {
    /// True for fault-plan events (`Crash`/`Recover`). Faults are driven
    /// by the injected plan and survive every purge — crashes and
    /// rollbacks never cancel them.
    pub fn is_fault(&self) -> bool {
        matches!(self, Event::Crash { .. } | Event::Recover { .. })
    }

    /// The process this event is primarily addressed to.
    pub fn target(&self) -> ProcessId {
        match self {
            Event::Deliver { dst, .. } => *dst,
            Event::Timer { pid, .. }
            | Event::StorageDone { pid, .. }
            | Event::Tick { pid, .. }
            | Event::Crash { pid }
            | Event::Recover { pid } => *pid,
        }
    }
}

/// An event together with its due time and a FIFO tiebreak sequence number.
///
/// Ordering is `(time, seq)` so that events scheduled earlier at the same
/// instant run first — this makes runs bit-for-bit reproducible.
#[derive(Clone, Debug)]
pub struct Scheduled<M> {
    /// When the event is due.
    pub at: SimTime,
    /// Insertion order tiebreak.
    pub seq: u64,
    /// The event itself.
    pub event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_resolution() {
        let e: Event<()> =
            Event::Deliver { src: ProcessId(1), dst: ProcessId(2), msg_id: MsgId(0), msg: () };
        assert_eq!(e.target(), ProcessId(2));
        let t: Event<()> = Event::Timer { pid: ProcessId(3), id: TimerId(0), tag: 9 };
        assert_eq!(t.target(), ProcessId(3));
        let c: Event<()> = Event::Crash { pid: ProcessId(4) };
        assert_eq!(c.target(), ProcessId(4));
    }

    #[test]
    fn scheduled_orders_earliest_first_then_fifo() {
        use std::collections::BinaryHeap;
        let mk = |at, seq| Scheduled::<u32> {
            at: SimTime::from_nanos(at),
            seq,
            event: Event::Tick { pid: ProcessId(0), kind: 0 },
        };
        let mut h = BinaryHeap::new();
        h.push(mk(10, 2));
        h.push(mk(5, 3));
        h.push(mk(10, 1));
        let order: Vec<(u64, u64)> =
            std::iter::from_fn(|| h.pop()).map(|s| (s.at.as_nanos(), s.seq)).collect();
        assert_eq!(order, vec![(5, 3), (10, 1), (10, 2)]);
    }
}
