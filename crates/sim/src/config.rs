//! Top-level simulation configuration.

use crate::network::DelayModel;
use crate::time::SimDuration;

/// Parameters of the simulated distributed system (paper §2.1).
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Number of processes `N`.
    pub n: usize,
    /// Master seed; every random stream in the run derives from it.
    pub seed: u64,
    /// Per-message transit delay model.
    pub delay: DelayModel,
    /// Whether channels preserve order. The paper's algorithm does not need
    /// FIFO; Chandy–Lamport does.
    pub fifo: bool,
    /// Hard stop: the simulation ends at this virtual instant even if events
    /// remain (safety net against non-terminating configurations).
    pub horizon: SimDuration,
}

impl SimConfig {
    /// A small default system: 4 processes, LAN delays, non-FIFO, 10 s horizon.
    pub fn new(n: usize, seed: u64) -> Self {
        SimConfig {
            n,
            seed,
            delay: DelayModel::default_lan(),
            fifo: false,
            horizon: SimDuration::from_secs(10),
        }
    }

    /// Builder: set the delay model.
    pub fn with_delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Builder: enable or disable FIFO channels.
    pub fn with_fifo(mut self, fifo: bool) -> Self {
        self.fifo = fifo;
        self
    }

    /// Builder: set the horizon.
    pub fn with_horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Validate invariants (n ≥ 2, horizon > 0).
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 2 {
            return Err("need at least 2 processes".into());
        }
        if self.n > u32::MAX as usize {
            return Err("too many processes".into());
        }
        if self.horizon.is_zero() {
            return Err("horizon must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SimConfig::new(4, 1).validate().is_ok());
    }

    #[test]
    fn tiny_and_zero_rejected() {
        assert!(SimConfig::new(1, 1).validate().is_err());
        let c = SimConfig::new(4, 1).with_horizon(SimDuration::ZERO);
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_apply() {
        let c = SimConfig::new(8, 2)
            .with_fifo(true)
            .with_delay(DelayModel::Fixed(SimDuration::from_micros(1)))
            .with_horizon(SimDuration::from_secs(60));
        assert!(c.fifo);
        assert_eq!(c.horizon, SimDuration::from_secs(60));
    }
}
