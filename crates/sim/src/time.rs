//! Virtual time for the discrete-event simulator.
//!
//! All simulation time is kept in nanoseconds inside a [`SimTime`] (an
//! instant) or a [`SimDuration`] (a span). Both are thin wrappers around
//! `u64`, so they are `Copy`, totally ordered and cheap to pass around.
//! Saturating arithmetic is used throughout: a simulation that runs "past
//! the end of time" clamps instead of panicking, which keeps long parameter
//! sweeps robust.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000))
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, clamped at zero.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier` is actually later.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span; used as "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Construct from fractional seconds (for reporting-precision inputs).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "duration must be finite and non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a float factor, rounding to the nearest nanosecond.
    pub fn mul_f64(self, f: f64) -> Self {
        assert!(f >= 0.0 && f.is_finite(), "factor must be finite and non-negative");
        SimDuration((self.0 as f64 * f).round().min(u64::MAX as f64) as u64)
    }

    /// Saturating addition of two spans.
    #[inline]
    pub fn saturating_add(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

/// Render nanoseconds with a human-friendly unit.
fn fmt_ns(ns: u64) -> String {
    if ns == u64::MAX {
        "∞".to_string()
    } else if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic_is_saturating() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
        let d = SimTime::ZERO - SimTime::from_secs(1);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn since_and_checked_since() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(25);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(15));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_millis(15)));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(1.26).as_nanos(), 13);
        assert_eq!(d.mul_f64(0.0).as_nanos(), 0);
    }

    #[test]
    fn from_secs_f64_precision() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000µs");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::MAX.to_string(), "∞");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }
}
