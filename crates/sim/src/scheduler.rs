//! The discrete-event scheduler: a virtual clock plus an event heap.
//!
//! Determinism contract: with equal seeds and equal sequences of `schedule`
//! calls, `pop` returns the exact same sequence of events. Ties at the same
//! instant are broken by insertion order.

use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::event::{Event, Scheduled};
use crate::id::{ProcessId, TimerId};
use crate::time::{SimDuration, SimTime};

/// Virtual clock and pending-event queue.
#[derive(Debug)]
pub struct Scheduler<M> {
    now: SimTime,
    seq: u64,
    next_timer: u64,
    heap: BinaryHeap<Scheduled<M>>,
    /// Timers that have been set and not yet fired or cancelled.
    live_timers: HashSet<TimerId>,
    popped: u64,
    /// Past-scheduled events clamped to `now` (release builds only reach
    /// here; debug builds panic first). Nonzero means a model bug that
    /// release runs would otherwise silently absorb.
    clamped: u64,
}

impl<M> Default for Scheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Scheduler<M> {
    /// A scheduler at time zero with no pending events.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            next_timer: 0,
            heap: BinaryHeap::new(),
            live_timers: HashSet::new(),
            popped: 0,
            clamped: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    #[inline]
    pub fn events_dispatched(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release builds the event is clamped to `now` (runs next) and the
    /// clamp is counted — see [`Self::clamped_events`].
    pub fn schedule_at(&mut self, at: SimTime, event: Event<M>) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        if at < self.now {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Number of events that were scheduled into the past and clamped to
    /// `now`. Always 0 in debug builds (the debug assertion fires first);
    /// a nonzero value in release builds flags a timing-model bug that
    /// would previously have been absorbed silently.
    #[inline]
    pub fn clamped_events(&self) -> u64 {
        self.clamped
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: Event<M>) {
        self.schedule_at(self.now + delay, event);
    }

    /// Register a timer owned by `pid`, firing after `delay` with the given
    /// owner tag. Returns the id to use for cancellation.
    pub fn set_timer(&mut self, pid: ProcessId, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.live_timers.insert(id);
        self.schedule_after(delay, Event::Timer { pid, id, tag });
        id
    }

    /// Cancel a previously set timer. Cancelling an already-fired or
    /// already-cancelled timer is a harmless no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.live_timers.remove(&id);
    }

    /// True if the timer is still pending (set, not fired, not cancelled).
    pub fn timer_live(&self, id: TimerId) -> bool {
        self.live_timers.contains(&id)
    }

    /// Pop the next due event, advancing the clock to its instant.
    ///
    /// Cancelled timers are skipped transparently. Returns `None` when the
    /// queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        while let Some(s) = self.heap.pop() {
            if let Event::Timer { id, .. } = &s.event {
                // Drop stale timer firings.
                if !self.live_timers.remove(id) {
                    continue;
                }
            }
            debug_assert!(s.at >= self.now, "time went backwards");
            self.now = s.at;
            self.popped += 1;
            return Some((s.at, s.event));
        }
        None
    }

    /// Peek at the due time of the next (non-cancelled) event without
    /// advancing the clock.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(s) = self.heap.peek() {
            if let Event::Timer { id, .. } = &s.event {
                if !self.live_timers.contains(id) {
                    self.heap.pop();
                    continue;
                }
            }
            return Some(s.at);
        }
        None
    }

    /// Drop every pending event except injected faults (used at recovery
    /// time: rollback flushes the channels, cancels all timers and ticks,
    /// and the recovery routine re-arms the world afresh).
    pub fn clear_except_faults(&mut self) {
        let drained: Vec<Scheduled<M>> = std::mem::take(&mut self.heap).into_vec();
        self.live_timers.clear();
        for s in drained {
            if matches!(s.event, Event::Crash { .. } | Event::Recover { .. }) {
                self.heap.push(s);
            }
        }
    }

    /// Drop every pending event addressed to `pid` (used at crash time so a
    /// dead process receives nothing until recovery re-arms it).
    ///
    /// Message deliveries *to* a crashed process are silently lost, matching
    /// the fail-stop model; in-flight messages *from* it were already sent.
    pub fn drop_events_for(&mut self, pid: ProcessId) {
        let drained: Vec<Scheduled<M>> = std::mem::take(&mut self.heap).into_vec();
        for s in drained {
            let addressed = s.event.target() == pid;
            let keep = match &s.event {
                // Faults are driven by the fault plan, never dropped.
                Event::Crash { .. } | Event::Recover { .. } => true,
                _ => !addressed,
            };
            if keep {
                self.heap.push(s);
            } else if let Event::Timer { id, .. } = &s.event {
                self.live_timers.remove(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::MsgId;

    fn tick(pid: u16, kind: u64) -> Event<u32> {
        Event::Tick { pid: ProcessId(pid), kind }
    }

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), tick(0, 0));
        s.schedule_at(SimTime::from_nanos(5), tick(0, 1));
        s.schedule_at(SimTime::from_nanos(10), tick(0, 2));
        let kinds: Vec<u64> = std::iter::from_fn(|| s.pop())
            .map(|(_, e)| match e {
                Event::Tick { kind, .. } => kind,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kinds, vec![1, 0, 2]);
        assert_eq!(s.now(), SimTime::from_nanos(10));
        assert_eq!(s.events_dispatched(), 3);
    }

    #[test]
    fn cancelled_timers_are_skipped() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let t1 = s.set_timer(ProcessId(0), SimDuration::from_nanos(5), 100);
        let t2 = s.set_timer(ProcessId(0), SimDuration::from_nanos(10), 200);
        assert!(s.timer_live(t1));
        s.cancel_timer(t1);
        assert!(!s.timer_live(t1));
        let (_, e) = s.pop().expect("one timer should fire");
        match e {
            Event::Timer { id, tag, .. } => {
                assert_eq!(id, t2);
                assert_eq!(tag, 200);
            }
            _ => panic!("unexpected event"),
        }
        assert!(s.pop().is_none());
    }

    #[test]
    fn timer_fires_once() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let t = s.set_timer(ProcessId(1), SimDuration::from_nanos(1), 7);
        assert!(s.pop().is_some());
        assert!(!s.timer_live(t));
        // Cancelling after fire is a no-op.
        s.cancel_timer(t);
        assert!(s.pop().is_none());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(42), tick(0, 0));
        assert_eq!(s.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(s.now(), SimTime::ZERO);
    }

    #[test]
    fn drop_events_for_removes_only_targets() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(
            SimTime::from_nanos(5),
            Event::Deliver { src: ProcessId(0), dst: ProcessId(1), msg_id: MsgId(0), msg: 9 },
        );
        s.schedule_at(SimTime::from_nanos(6), tick(1, 0));
        s.schedule_at(SimTime::from_nanos(7), tick(2, 0));
        s.schedule_at(SimTime::from_nanos(8), Event::Recover { pid: ProcessId(1) });
        s.drop_events_for(ProcessId(1));
        let mut remaining = Vec::new();
        while let Some((_, e)) = s.pop() {
            remaining.push(e.target());
        }
        assert_eq!(remaining, vec![ProcessId(2), ProcessId(1)]); // tick P2, recover P1
    }

    #[test]
    fn clear_except_faults_keeps_only_faults() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(5), tick(0, 0));
        let t = s.set_timer(ProcessId(1), SimDuration::from_nanos(3), 9);
        s.schedule_at(SimTime::from_nanos(7), Event::Crash { pid: ProcessId(2) });
        s.schedule_at(SimTime::from_nanos(9), Event::Recover { pid: ProcessId(2) });
        s.clear_except_faults();
        assert!(!s.timer_live(t));
        let kinds: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert!(matches!(kinds[0], Event::Crash { .. }));
        assert!(matches!(kinds[1], Event::Recover { .. }));
        assert_eq!(kinds.len(), 2);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), tick(0, 0));
        s.pop();
        s.schedule_at(SimTime::from_nanos(5), tick(0, 1));
    }
}
