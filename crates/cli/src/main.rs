//! The `ocpt` binary: see `ocpt help`.

fn main() {
    let args = match ocpt_cli::args::Args::parse(std::env::args().skip(1), ocpt_cli::BOOL_FLAGS) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match ocpt_cli::dispatch(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
