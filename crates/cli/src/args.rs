//! A small, dependency-free command-line parser for the `ocpt` binary.
//!
//! Flags are `--key value` (or bare `--flag` for booleans); unknown flags
//! abort with usage. Arguments that don't start with `--` are collected
//! as positionals (after the leading subcommand) — `ocpt trace summary
//! FILE` uses them. Kept deliberately simple — the CLI is a front door,
//! not a framework.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    positionals: Vec<String>,
    opts: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Parse failure (unknown flag, missing value, bad number).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse an iterator of arguments (exclusive of the program name).
    pub fn parse<I: IntoIterator<Item = String>>(
        items: I,
        bool_flags: &[&str],
    ) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = items.into_iter().peekable();
        if let Some(cmd) = it.peek() {
            if !cmd.starts_with("--") {
                out.command = it.next().unwrap();
            }
        }
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                out.positionals.push(a);
                continue;
            };
            if bool_flags.contains(&key) {
                out.flags.push(key.to_string());
            } else {
                let v = it.next().ok_or_else(|| ArgError(format!("--{key} needs a value")))?;
                out.opts.insert(key.to_string(), v);
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument after the subcommand.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// All positional arguments after the subcommand.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// A boolean flag's presence.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.opts.get(name).map(String::as_str)
    }

    /// A parsed option with default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.opts.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, ArgError> {
        Args::parse(v.iter().map(|s| s.to_string()), &["trace", "quick"])
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse(&["run", "--n", "8", "--algo", "ocpt", "--trace"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get("algo"), Some("ocpt"));
        assert_eq!(a.num("n", 4usize).unwrap(), 8);
        assert!(a.flag("trace"));
        assert!(!a.flag("quick"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["run"]).unwrap();
        assert_eq!(a.num("n", 4usize).unwrap(), 4);
        assert_eq!(a.get("algo"), None);
    }

    #[test]
    fn errors() {
        assert!(parse(&["run", "--n"]).is_err());
        let a = parse(&["run", "--n", "abc"]).unwrap();
        assert!(a.num("n", 4usize).is_err());
    }

    #[test]
    fn positionals_collected_in_order() {
        let a = parse(&["trace", "diff", "a.jsonl", "--context", "5", "b.jsonl"]).unwrap();
        assert_eq!(a.command, "trace");
        assert_eq!(a.positional(0), Some("diff"));
        assert_eq!(a.positional(1), Some("a.jsonl"));
        assert_eq!(a.positional(2), Some("b.jsonl"));
        assert_eq!(a.positional(3), None);
        assert_eq!(a.positionals().len(), 3);
        assert_eq!(a.num("context", 3usize).unwrap(), 5);
    }

    #[test]
    fn no_subcommand() {
        let a = parse(&["--n", "3"]).unwrap();
        assert_eq!(a.command, "");
        assert_eq!(a.num("n", 0usize).unwrap(), 3);
    }
}
