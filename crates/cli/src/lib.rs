//! # ocpt-cli — the `ocpt` command-line front door
//!
//! ```sh
//! ocpt run --algo ocpt --n 8 --gap-ms 5 --interval-ms 500 --svg run.svg
//! ocpt compare --n 16
//! ocpt recover --n 8 --crash-ms 1500 --live
//! ocpt algos
//! ```
//!
//! The library half holds the subcommand implementations so they are unit
//! testable; `src/main.rs` is a thin wrapper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;

use ocpt_core::OcptConfig;
use ocpt_harness::{
    coordinated_rollback, domino_rollback, run, verify_restored_states, Algo, RunConfig, RunResult,
    WorkloadSpec,
};
use ocpt_metrics::{f2, Table};
use ocpt_sim::{FaultPlan, ProcessId, SimDuration, SimTime, Topology};

use args::{ArgError, Args};

/// Boolean flags understood by the CLI.
pub const BOOL_FLAGS: &[&str] = &["trace", "quick", "live", "csv", "diagram", "json"];

/// The `ocpt trace` subcommands, for usage and error text.
const TRACE_SUBCOMMANDS: &str = "summary | diff | grep | timeline | critical-path | flame | health";

/// Entry point used by `main` (and by tests): dispatch a parsed command,
/// returning the rendered output.
pub fn dispatch(args: &Args) -> Result<String, ArgError> {
    // Only `trace` takes operands; elsewhere a stray positional is a typo.
    if args.command != "trace" {
        if let Some(p) = args.positional(0) {
            return Err(ArgError(format!("unexpected positional argument {p:?}")));
        }
    }
    match args.command.as_str() {
        "run" => cmd_run(args),
        "compare" => cmd_compare(args),
        "recover" => cmd_recover(args),
        "trace" => cmd_trace(args),
        "algos" => Ok(cmd_algos()),
        "" | "help" => Ok(usage()),
        other => Err(ArgError(format!("unknown command {other:?}\n\n{}", usage()))),
    }
}

/// The usage text.
pub fn usage() -> String {
    "ocpt — optimistic checkpointing with selective message logging (IPDPS 2007)\n\
     \n\
     USAGE:\n\
       ocpt run     [--algo NAME] [--n N] [--seed S] [--gap-ms G] [--interval-ms I]\n\
                    [--duration-ms D] [--state-kb K] [--topology mesh|ring|star|grid]\n\
                    [--trace] [--diagram] [--svg FILE] [--trace-json FILE]\n\
       ocpt compare [--n N] [--seed S] [--gap-ms G] [--interval-ms I] [--csv]\n\
       ocpt recover [--n N] [--seed S] [--crash-ms T] [--live]\n\
       ocpt trace   summary FILE\n\
       ocpt trace   diff A B [--context N]\n\
       ocpt trace   grep FILE [--pid P] [--kind K] [--code PREFIX]\n\
                    [--after T] [--before T] [--from-ms T] [--to-ms T]\n\
       ocpt trace   timeline FILE [--buckets N] [--json]\n\
       ocpt trace   critical-path FILE\n\
       ocpt trace   flame FILE\n\
       ocpt trace   health FILE [--json]\n\
       ocpt algos\n"
        .to_string()
}

fn parse_algo(name: &str) -> Result<Algo, ArgError> {
    Ok(match name {
        "ocpt" => Algo::ocpt(),
        "ocpt-naive" => Algo::ocpt_naive(),
        "ocpt-basic" => Algo::ocpt_basic(),
        "chandy-lamport" | "cl" => Algo::ChandyLamport,
        "koo-toueg" | "kt" => Algo::KooToueg,
        "staggered" => Algo::Staggered,
        "cic" => Algo::Cic,
        "uncoordinated" => Algo::Uncoordinated,
        other => return Err(ArgError(format!("unknown algorithm {other:?} (try `ocpt algos`)"))),
    })
}

fn parse_topology(name: &str, n: usize) -> Result<Topology, ArgError> {
    Ok(match name {
        "mesh" => Topology::FullMesh,
        "ring" => Topology::Ring,
        "star" => Topology::Star,
        "grid" => Topology::Grid { cols: (n as f64).sqrt().ceil() as usize },
        other => return Err(ArgError(format!("unknown topology {other:?}"))),
    })
}

fn build_config(args: &Args) -> Result<RunConfig, ArgError> {
    let n: usize = args.num("n", 8)?;
    if n < 2 {
        return Err(ArgError("--n must be at least 2".into()));
    }
    let seed: u64 = args.num("seed", 42)?;
    let gap_ms: f64 = args.num("gap-ms", 5.0)?;
    let interval_ms: u64 = args.num("interval-ms", 500)?;
    let duration_ms: u64 = args.num("duration-ms", 3_000)?;
    let state_kb: u64 = args.num("state-kb", 1024)?;
    let mut cfg = RunConfig::new(n, seed);
    cfg.workload = WorkloadSpec {
        topology: parse_topology(args.get("topology").unwrap_or("mesh"), n)?,
        ..WorkloadSpec::uniform_mesh(SimDuration::from_secs_f64(gap_ms / 1e3))
    };
    cfg.checkpoint_interval = SimDuration::from_millis(interval_ms);
    cfg.workload_duration = SimDuration::from_millis(duration_ms);
    cfg.state_bytes = state_kb * 1024;
    cfg.sim =
        cfg.sim.with_horizon(SimDuration::from_millis(duration_ms) + SimDuration::from_secs(30));
    cfg.trace = args.flag("trace")
        || args.flag("diagram")
        || args.get("svg").is_some()
        || args.get("trace-json").is_some();
    Ok(cfg)
}

fn report(r: &RunResult) -> String {
    let mut s = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(s, "algorithm          {}", r.algo);
    let _ = writeln!(s, "processes          {}", r.n);
    let _ = writeln!(s, "virtual makespan   {}", r.makespan);
    let _ = writeln!(s, "app messages       {}", r.app_messages);
    let _ = writeln!(s, "control messages   {}", r.ctrl_messages);
    let _ = writeln!(
        s,
        "piggyback bytes    {} ({}/msg)",
        r.piggyback_bytes,
        r.piggyback_bytes / r.app_messages.max(1)
    );
    let _ = writeln!(s, "rounds completed   {}", r.complete_rounds);
    let _ = writeln!(s, "recovery line      S_{}", r.recovery_line);
    let _ = writeln!(s, "peak writers       {}", r.storage.peak_writers);
    let _ = writeln!(s, "storage stall      {}", r.storage.total_stall);
    let _ = writeln!(s, "blocked time       {}", r.blocked_time);
    let _ = writeln!(s, "forced delay       {}", r.forced_delay);
    if let Some(obs) = &r.observer {
        let _ = writeln!(
            s,
            "consistency        {} complete round(s) judged",
            obs.complete_csns().len()
        );
    }
    match &r.protocol_error {
        Some(e) => {
            let _ = writeln!(s, "PROTOCOL ERROR     {e}");
        }
        None => {
            if let Ok(k) = r.verify_consistency() {
                let _ = writeln!(s, "theorem 2          {k} global checkpoint(s), all consistent");
            }
        }
    }
    s
}

fn cmd_run(args: &Args) -> Result<String, ArgError> {
    let algo = parse_algo(args.get("algo").unwrap_or("ocpt"))?;
    let cfg = build_config(args)?;
    let n = cfg.sim.n;
    let r = run(&algo, cfg);
    let mut out = report(&r);
    if args.flag("diagram") {
        out.push('\n');
        out.push_str(&r.trace.ascii_diagram(n));
    }
    if let Some(path) = args.get("svg") {
        std::fs::write(path, r.trace.to_svg(n))
            .map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        out.push_str(&format!("\nspace-time diagram written to {path}\n"));
    }
    if let Some(path) = args.get("trace-json") {
        std::fs::write(path, r.trace_jsonl())
            .map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        out.push_str(&format!("\nflight-recorder trace written to {path}\n"));
    }
    Ok(out)
}

fn load_trace(path: &str) -> Result<ocpt_telemetry::TraceFile, ArgError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("reading {path}: {e}")))?;
    ocpt_telemetry::parse_jsonl(&text).map_err(|e| ArgError(format!("{path}: {e}")))
}

fn cmd_trace(args: &Args) -> Result<String, ArgError> {
    let operand = |i: usize, name: &str| {
        args.positional(i).map(str::to_string).ok_or_else(|| {
            ArgError(format!(
                "ocpt trace {}: missing {name} operand",
                args.positional(0).unwrap_or("")
            ))
        })
    };
    match args.positional(0) {
        Some("summary") => {
            let f = load_trace(&operand(1, "FILE")?)?;
            Ok(ocpt_telemetry::summary(&f))
        }
        Some("diff") => {
            let a = load_trace(&operand(1, "A")?)?;
            let b = load_trace(&operand(2, "B")?)?;
            let context: usize = args.num("context", 3)?;
            Ok(match ocpt_telemetry::diff(&a, &b, context) {
                ocpt_telemetry::DiffReport::Identical => {
                    format!("traces are identical ({} events)\n", a.recs.len())
                }
                ocpt_telemetry::DiffReport::MetaDiffers(why) => format!("{why}\n"),
                ocpt_telemetry::DiffReport::Diverged { rendering, .. } => rendering,
            })
        }
        Some("grep") => {
            let f = load_trace(&operand(1, "FILE")?)?;
            // `num` returns its default when the flag is absent, so gate
            // each parse on presence to keep "unset" distinct from 0.
            let ms_flag = |name: &str| -> Result<Option<u64>, ArgError> {
                match args.get(name) {
                    None => Ok(None),
                    Some(_) => Ok(Some((args.num::<f64>(name, 0.0)? * 1e6) as u64)),
                }
            };
            // `--after`/`--before` are the sim-time window (milliseconds,
            // inclusive/exclusive like the filter); `--from-ms`/`--to-ms`
            // are their original spellings. When both are given the
            // window is the intersection (later start, earlier end).
            let merge = |a: Option<u64>, b: Option<u64>, newer: fn(u64, u64) -> u64| match (a, b) {
                (Some(x), Some(y)) => Some(newer(x, y)),
                (x, y) => x.or(y),
            };
            let filter = ocpt_telemetry::GrepFilter {
                pid: match args.get("pid") {
                    None => None,
                    Some(_) => Some(args.num("pid", 0u32)?),
                },
                kind: args.get("kind").map(str::to_string),
                code_prefix: args.get("code").map(str::to_string),
                from_nanos: merge(ms_flag("after")?, ms_flag("from-ms")?, u64::max),
                to_nanos: merge(ms_flag("before")?, ms_flag("to-ms")?, u64::min),
            };
            let hits = ocpt_telemetry::grep(&f, &filter);
            let mut out = String::new();
            use std::fmt::Write as _;
            for r in &hits {
                let _ = writeln!(out, "{}", ocpt_telemetry::render_rec(r));
            }
            let _ = writeln!(out, "{} of {} events matched", hits.len(), f.recs.len());
            Ok(out)
        }
        Some("timeline") => {
            let f = load_trace(&operand(1, "FILE")?)?;
            let buckets: usize = args.num("buckets", ocpt_telemetry::DEFAULT_BUCKETS)?;
            if buckets == 0 {
                return Err(ArgError("--buckets must be at least 1".into()));
            }
            let t = ocpt_telemetry::timeline(&f, buckets);
            Ok(if args.flag("json") { t.to_json() } else { t.render() })
        }
        Some("critical-path") => {
            let f = load_trace(&operand(1, "FILE")?)?;
            Ok(ocpt_telemetry::critical_path(&f).render())
        }
        Some("flame") => {
            let f = load_trace(&operand(1, "FILE")?)?;
            Ok(ocpt_telemetry::critical_path(&f).to_folded())
        }
        Some("health") => {
            let f = load_trace(&operand(1, "FILE")?)?;
            let h = ocpt_telemetry::health(&f);
            Ok(if args.flag("json") { h.to_json() } else { h.render() })
        }
        Some(other) => {
            Err(ArgError(format!("unknown trace subcommand {other:?} ({TRACE_SUBCOMMANDS})")))
        }
        None => Err(ArgError(format!("ocpt trace needs a subcommand: {TRACE_SUBCOMMANDS}"))),
    }
}

fn cmd_compare(args: &Args) -> Result<String, ArgError> {
    let cfg = build_config(args)?;
    let mut t = Table::new(
        format!("comparison at n={} (seed {})", cfg.sim.n, cfg.sim.seed),
        &[
            "algo",
            "rounds",
            "peak_writers",
            "stall_ms",
            "blocked_ms",
            "forced",
            "ctrl_msgs",
            "piggy_B/msg",
        ],
    );
    for algo in Algo::comparison_set() {
        let r = run(&algo, cfg.clone());
        t.row(&[
            r.algo.into(),
            r.complete_rounds.to_string(),
            r.storage.peak_writers.to_string(),
            f2(r.storage.total_stall.as_secs_f64() * 1e3),
            f2(r.blocked_time.as_secs_f64() * 1e3),
            r.counters.get("ckpt.forced_before_processing").to_string(),
            r.ctrl_messages.to_string(),
            f2(r.piggyback_bytes as f64 / r.app_messages.max(1) as f64),
        ]);
    }
    let mut out = t.render();
    if args.flag("csv") {
        out.push('\n');
        out.push_str(&t.to_csv());
    }
    Ok(out)
}

fn cmd_recover(args: &Args) -> Result<String, ArgError> {
    let mut cfg = build_config(args)?;
    let crash_ms: u64 = args.num("crash-ms", 2_000)?;
    let n = cfg.sim.n;
    let victim = ProcessId((n / 2) as u32);
    cfg.workload_duration = SimDuration::from_millis(crash_ms + 1_000);
    cfg.faults =
        FaultPlan::single(victim, SimTime::from_millis(crash_ms), SimDuration::from_millis(50));
    cfg.stop_on_crash = !args.flag("live");
    let mut out = String::new();
    use std::fmt::Write as _;

    let r = run(&Algo::ocpt(), cfg.clone());
    if let Some(e) = &r.protocol_error {
        return Err(ArgError(format!("ocpt run failed: {e}")));
    }
    if args.flag("live") {
        let _ = writeln!(out, "[ocpt] rode through the crash of {victim} at t={crash_ms}ms");
        let _ =
            writeln!(out, "[ocpt] recoveries performed : {}", r.counters.get("recovery.performed"));
        let _ = writeln!(
            out,
            "[ocpt] in-transit re-sent   : {}",
            r.counters.get("recovery.resent_msgs")
        );
        let _ = writeln!(
            out,
            "[ocpt] events re-executed   : {}",
            r.counters.get("recovery.events_lost")
        );
        let _ = writeln!(out, "[ocpt] rounds completed     : {}", r.complete_rounds);
    } else {
        let obs = r.observer.as_ref().expect("observer on");
        let line = r.recovery_line;
        let roll = coordinated_rollback(obs, line);
        let verified = verify_restored_states(&r, line).map_err(ArgError)?;
        let total: u64 = obs.positions().iter().sum();
        let _ = writeln!(out, "[ocpt] crash of {victim} at t={crash_ms}ms; rollback to S_{line}");
        let _ = writeln!(
            out,
            "[ocpt] events lost {} of {} ({:.1}%), cascade rounds {}, restored verified {}",
            roll.events_lost,
            total,
            100.0 * roll.events_lost as f64 / total.max(1) as f64,
            roll.cascade_rounds,
            verified
        );
        let u = run(&Algo::Uncoordinated, cfg);
        let obs = u.observer.as_ref().expect("observer on");
        let roll = domino_rollback(obs, victim);
        let total: u64 = obs.positions().iter().sum();
        let _ = writeln!(
            out,
            "[uncoordinated] events lost {} of {} ({:.1}%), {} to initial state, cascade rounds {}",
            roll.events_lost,
            total,
            100.0 * roll.events_lost as f64 / total.max(1) as f64,
            roll.rolled_to_initial,
            roll.cascade_rounds
        );
    }
    Ok(out)
}

fn cmd_algos() -> String {
    let mut t = Table::new("available algorithms", &["name", "class", "notes"]);
    t.row(&[
        "ocpt".into(),
        "quasi-synchronous (the paper)".into(),
        "optimized control layer, phased writes".into(),
    ]);
    t.row(&[
        "ocpt-naive".into(),
        "quasi-synchronous".into(),
        "no CK_BGN suppression / REQ skipping / END broadcast".into(),
    ]);
    t.row(&[
        "ocpt-basic".into(),
        "quasi-synchronous".into(),
        "Fig. 3 only — may not converge".into(),
    ]);
    t.row(&[
        "chandy-lamport".into(),
        "synchronous snapshot".into(),
        "needs FIFO; clustered writes".into(),
    ]);
    t.row(&[
        "koo-toueg".into(),
        "blocking synchronous".into(),
        "blocks sends between phases".into(),
    ]);
    t.row(&["staggered".into(), "synchronous, staggered".into(), "token-serialised writes".into()]);
    t.row(&[
        "cic".into(),
        "communication-induced".into(),
        "forced checkpoints before processing".into(),
    ]);
    t.row(&["uncoordinated".into(), "asynchronous".into(), "domino effect at recovery".into()]);
    t.render()
}

/// Convenience wrapper for an OCPT config override example (used in docs).
pub fn default_ocpt_config() -> OcptConfig {
    OcptConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(v: &[&str]) -> Result<String, ArgError> {
        let args = Args::parse(v.iter().map(|s| s.to_string()), BOOL_FLAGS)?;
        dispatch(&args)
    }

    #[test]
    fn help_and_algos() {
        assert!(run_cli(&[]).unwrap().contains("USAGE"));
        assert!(run_cli(&["algos"]).unwrap().contains("chandy-lamport"));
        assert!(run_cli(&["bogus"]).is_err());
    }

    #[test]
    fn run_small() {
        let out = run_cli(&[
            "run",
            "--n",
            "3",
            "--duration-ms",
            "400",
            "--interval-ms",
            "150",
            "--state-kb",
            "64",
        ])
        .unwrap();
        assert!(out.contains("algorithm          ocpt"));
        assert!(out.contains("all consistent"));
    }

    #[test]
    fn run_each_algo_smoke() {
        for algo in ["chandy-lamport", "koo-toueg", "staggered", "cic", "uncoordinated"] {
            let out = run_cli(&[
                "run",
                "--algo",
                algo,
                "--n",
                "3",
                "--duration-ms",
                "300",
                "--interval-ms",
                "120",
                "--state-kb",
                "64",
            ])
            .unwrap();
            assert!(out.contains(algo), "{out}");
        }
    }

    #[test]
    fn compare_renders_table() {
        let out = run_cli(&[
            "compare",
            "--n",
            "3",
            "--duration-ms",
            "300",
            "--interval-ms",
            "120",
            "--state-kb",
            "64",
            "--csv",
        ])
        .unwrap();
        assert!(out.contains("== comparison"));
        assert!(out.contains("uncoordinated"));
        assert!(out.contains("algo,rounds")); // csv
    }

    #[test]
    fn recover_offline_and_live() {
        let out = run_cli(&[
            "recover",
            "--n",
            "4",
            "--crash-ms",
            "500",
            "--duration-ms",
            "900",
            "--interval-ms",
            "150",
            "--state-kb",
            "64",
        ])
        .unwrap();
        assert!(out.contains("rollback to S_"));
        assert!(out.contains("uncoordinated"));
        let out = run_cli(&[
            "recover",
            "--n",
            "4",
            "--crash-ms",
            "500",
            "--interval-ms",
            "150",
            "--state-kb",
            "64",
            "--live",
        ])
        .unwrap();
        assert!(out.contains("rode through"));
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(run_cli(&["run", "--n", "1"]).is_err());
        assert!(run_cli(&["run", "--algo", "nope"]).is_err());
        assert!(run_cli(&["run", "--topology", "torus"]).is_err());
        assert!(run_cli(&["run", "stray"]).is_err());
        assert!(run_cli(&["trace"]).is_err());
        assert!(run_cli(&["trace", "bogus"]).is_err());
        assert!(run_cli(&["trace", "summary"]).is_err());
        assert!(run_cli(&["trace", "summary", "/no/such/file.jsonl"]).is_err());
    }

    #[test]
    fn trace_record_summary_diff_grep_round_trip() {
        let dir = std::env::temp_dir().join(format!("ocpt_cli_trace_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        let small = |seed: &str, path: &std::path::Path| {
            run_cli(&[
                "run",
                "--n",
                "3",
                "--seed",
                seed,
                "--duration-ms",
                "400",
                "--interval-ms",
                "150",
                "--state-kb",
                "64",
                "--trace-json",
                path.to_str().unwrap(),
            ])
            .unwrap()
        };
        let out = small("42", &a);
        assert!(out.contains("flight-recorder trace written to"));
        small("42", &b);
        // Same seed ⇒ identical traces.
        let d = run_cli(&["trace", "diff", a.to_str().unwrap(), b.to_str().unwrap()]).unwrap();
        assert!(d.contains("traces are identical"), "{d}");
        // Different seed ⇒ headers differ (reported, not an error).
        small("43", &b);
        let d = run_cli(&["trace", "diff", a.to_str().unwrap(), b.to_str().unwrap()]).unwrap();
        assert!(d.contains("headers differ"), "{d}");

        let s = run_cli(&["trace", "summary", a.to_str().unwrap()]).unwrap();
        assert!(s.contains("algo=ocpt n=3 seed=42"), "{s}");
        assert!(s.contains("events by kind:"), "{s}");
        assert!(s.contains("control waves"), "{s}");

        let g = run_cli(&["trace", "grep", a.to_str().unwrap(), "--pid", "0", "--code", "ctrl."])
            .unwrap();
        assert!(g.contains("events matched"), "{g}");
        assert!(g.lines().all(|l| l.contains("P0") || l.ends_with("events matched")), "{g}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_observatory_subcommands() {
        let dir = std::env::temp_dir().join(format!("ocpt_cli_obs_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.jsonl");
        run_cli(&[
            "run",
            "--n",
            "3",
            "--seed",
            "42",
            "--duration-ms",
            "400",
            "--interval-ms",
            "150",
            "--state-kb",
            "64",
            "--trace-json",
            a.to_str().unwrap(),
        ])
        .unwrap();
        let p = a.to_str().unwrap();

        let t = run_cli(&["trace", "timeline", p, "--buckets", "24"]).unwrap();
        assert!(t.contains("timeline: algo=ocpt n=3 seed=42"), "{t}");
        assert!(t.contains("in_flight_app"), "{t}");
        let tj = run_cli(&["trace", "timeline", p, "--json"]).unwrap();
        assert!(tj.starts_with("{\"schema\":\"ocpt-timeline\",\"version\":1,"), "{tj}");

        let c = run_cli(&["trace", "critical-path", p]).unwrap();
        assert!(c.contains("critical path: algo=ocpt"), "{c}");
        assert!(c.contains("longest round:"), "{c}");

        let fl = run_cli(&["trace", "flame", p]).unwrap();
        assert!(fl.lines().count() >= 1, "{fl}");
        assert!(fl.lines().all(|l| l
            .rsplit_once(' ')
            .is_some_and(|(f, v)| { f.starts_with("round#") && v.parse::<u64>().is_ok() })));

        let h = run_cli(&["trace", "health", p]).unwrap();
        assert!(h.contains("health: algo=ocpt n=3 seed=42"), "{h}");
        assert!(h.contains("round latency"), "{h}");
        let hj = run_cli(&["trace", "health", p, "--json"]).unwrap();
        assert!(hj.starts_with("{\"schema\":\"ocpt-health\",\"version\":1,"), "{hj}");

        // --after/--before window flags; identical to --from-ms/--to-ms.
        let w1 = run_cli(&["trace", "grep", p, "--after", "100", "--before", "200"]).unwrap();
        let w2 = run_cli(&["trace", "grep", p, "--from-ms", "100", "--to-ms", "200"]).unwrap();
        assert_eq!(w1, w2);
        assert!(w1.contains("events matched"), "{w1}");

        // Regenerated help and error text list every subcommand.
        let u = usage();
        for sub in ["timeline", "critical-path", "flame", "health"] {
            assert!(u.contains(sub), "usage missing {sub}");
        }
        let e = run_cli(&["trace", "bogus"]).unwrap_err().to_string();
        assert!(e.contains("timeline") && e.contains("health"), "{e}");
        assert!(run_cli(&["trace", "timeline", p, "--buckets", "0"]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diagram_flag() {
        let out = run_cli(&[
            "run",
            "--n",
            "3",
            "--duration-ms",
            "200",
            "--interval-ms",
            "100",
            "--state-kb",
            "64",
            "--diagram",
        ])
        .unwrap();
        assert!(out.contains("legend:"));
    }
}
