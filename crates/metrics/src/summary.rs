//! Streaming summary statistics (count / mean / min / max / variance) using
//! Welford's online algorithm, plus exact quantiles over retained samples.

/// Online mean/variance/min/max without retaining samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact quantiles over a retained sample vector.
#[derive(Clone, Debug, Default)]
pub struct Quantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// An empty sample set.
    pub fn new() -> Self {
        Quantiles::default()
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile by nearest-rank, or `None` when the sample set is
    /// empty or `q` falls outside `[0, 1]` (including NaN).
    pub fn try_quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        Some(self.samples[idx])
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; 0 when empty. Panics
    /// on an out-of-range `q` — use [`Quantiles::try_quantile`] when the
    /// range is not statically guaranteed.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        self.try_quantile(q).unwrap_or(0.0)
    }

    /// Median.
    pub fn p50(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::new();
        a.record(1.0);
        let b = Summary::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Summary::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn try_quantile_edges() {
        let mut q = Quantiles::new();
        assert_eq!(q.try_quantile(0.5), None, "empty sample set");
        q.record(3.0);
        q.record(9.0);
        assert_eq!(q.try_quantile(-0.01), None);
        assert_eq!(q.try_quantile(1.01), None);
        assert_eq!(q.try_quantile(f64::NAN), None);
        assert_eq!(q.try_quantile(0.0), Some(3.0));
        assert_eq!(q.try_quantile(1.0), Some(9.0));
    }

    #[test]
    fn quantiles() {
        let mut q = Quantiles::new();
        for i in (1..=100).rev() {
            q.record(i as f64);
        }
        assert_eq!(q.count(), 100);
        assert_eq!(q.quantile(0.0), 1.0);
        assert_eq!(q.quantile(1.0), 100.0);
        assert!((q.p50() - 50.0).abs() <= 1.0);
        assert!((q.p95() - 95.0).abs() <= 1.0);
    }

    #[test]
    fn quantiles_empty() {
        let mut q = Quantiles::new();
        assert_eq!(q.p50(), 0.0);
    }
}
