//! A log-bucketed histogram for latency-like values.
//!
//! Buckets are powers of two over `u64` values (nanoseconds, bytes, counts),
//! giving ≤ 2× relative error per bucket with 64 fixed buckets and O(1)
//! record cost — good enough for the shape comparisons the experiments make.

/// Power-of-two bucketed histogram over `u64` observations.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    #[inline]
    fn bucket_of(x: u64) -> usize {
        if x == 0 {
            0
        } else {
            64 - x.leading_zeros() as usize
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: u64) {
        self.buckets[Self::bucket_of(x)] += 1;
        self.count += 1;
        self.sum += x as u128;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Approximate `q`-quantile, or `None` when the histogram is empty or
    /// `q` is outside `[0, 1]` (including NaN). The bounds are exact and
    /// saturating: `q = 0` returns `min()` and `q = 1` returns `max()`;
    /// interior quantiles return the containing bucket's upper bound
    /// (≤ 2× the true value), clamped into `[min, max]` so an answer
    /// never lies outside the observed range.
    pub fn try_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        let rank = ((self.count as f64 - 1.0) * q).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                let bound = if i == 0 { 0 } else { 1u64 << (i - 1).min(63) };
                return Some(bound.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Approximate `q`-quantile (see [`Histogram::try_quantile`]); 0 when
    /// empty. Panics when `q` is outside `[0, 1]` — callers that cannot
    /// guarantee the range should use `try_quantile`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        self.try_quantile(q).unwrap_or(0)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        for x in [1u64, 2, 4, 8, 16] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 31);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 16);
        assert!((h.mean() - 6.2).abs() < 1e-9);
    }

    #[test]
    fn bucketing_zero_and_powers() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantile_within_2x() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i);
        }
        let p50 = h.quantile(0.5);
        assert!((250..=1000).contains(&p50), "p50={p50}");
        let p0 = h.quantile(0.0);
        assert!(p0 <= 1);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn try_quantile_empty_and_out_of_range_are_none() {
        let h = Histogram::new();
        assert_eq!(h.try_quantile(0.5), None);
        let mut h = Histogram::new();
        h.record(7);
        assert_eq!(h.try_quantile(-0.1), None);
        assert_eq!(h.try_quantile(1.1), None);
        assert_eq!(h.try_quantile(f64::NAN), None);
        assert_eq!(h.try_quantile(0.5), Some(7));
    }

    #[test]
    fn try_quantile_bounds_are_exact_and_saturating() {
        let mut h = Histogram::new();
        for x in [3u64, 5, 900] {
            h.record(x);
        }
        // p0/p100 are the exact observed extremes, not bucket bounds.
        assert_eq!(h.try_quantile(0.0), Some(3));
        assert_eq!(h.try_quantile(1.0), Some(900));
        // Interior answers saturate into [min, max]: the bucket bound for
        // 3 would be 2 (below the observed minimum) without the clamp.
        for q in [0.01, 0.5, 0.99] {
            let v = h.try_quantile(q).unwrap();
            assert!((3..=900).contains(&v), "q={q} v={v}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::new();
        a.record(42);
        let before = (a.count(), a.min(), a.max(), a.sum());
        a.merge(&Histogram::new());
        assert_eq!((a.count(), a.min(), a.max(), a.sum()), before);
        let mut e = Histogram::new();
        e.merge(&a);
        assert_eq!((e.count(), e.min(), e.max()), (1, 42, 42));
        assert_eq!(e.try_quantile(0.5), Some(42));
    }
}
