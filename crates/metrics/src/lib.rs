//! # ocpt-metrics — measurement primitives for the OCPT reproduction
//!
//! Small, dependency-free building blocks shared by the simulator, the
//! storage model and the experiment harness:
//!
//! * [`Counters`] — named event counts (control messages, forced
//!   checkpoints, …);
//! * [`Summary`] / [`Quantiles`] — streaming statistics over latencies;
//! * [`Histogram`] — log-bucketed distribution sketch;
//! * [`StepSeries`] — piecewise-constant series with peak and
//!   time-weighted-mean queries (concurrent writers at stable storage);
//! * [`Table`] — aligned text / CSV rendering for the experiment binaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counter;
pub mod histogram;
pub mod series;
pub mod summary;
pub mod table;

pub use counter::Counters;
pub use histogram::Histogram;
pub use series::StepSeries;
pub use summary::{Quantiles, Summary};
pub use table::{f2, f3, pct, Table};
