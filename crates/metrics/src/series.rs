//! Step time-series: a value that changes at discrete instants, with
//! peak/time-weighted-average queries. Used to track "number of concurrent
//! writers at the stable storage" over a run — the quantity at the heart of
//! the paper's contention argument.

/// A piecewise-constant series of `(t, value)` steps over `u64` time.
#[derive(Clone, Debug, Default)]
pub struct StepSeries {
    /// (time, new value) change points, time-ordered.
    points: Vec<(u64, i64)>,
    current: i64,
    peak: i64,
}

impl StepSeries {
    /// A series starting at value 0.
    pub fn new() -> Self {
        StepSeries::default()
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.current
    }

    /// Largest value ever reached.
    pub fn peak(&self) -> i64 {
        self.peak
    }

    /// Set the value at time `t` (must be non-decreasing in `t`).
    pub fn set(&mut self, t: u64, v: i64) {
        if let Some(&(last_t, last_v)) = self.points.last() {
            debug_assert!(t >= last_t, "series time went backwards");
            if last_v == v {
                return;
            }
            if last_t == t {
                self.points.pop();
            }
        }
        self.points.push((t, v));
        self.current = v;
        self.peak = self.peak.max(v);
    }

    /// Add `delta` to the value at time `t`.
    pub fn add(&mut self, t: u64, delta: i64) {
        self.set(t, self.current + delta);
    }

    /// Time-weighted mean over `[0, end]`.
    pub fn time_weighted_mean(&self, end: u64) -> f64 {
        if end == 0 || self.points.is_empty() {
            return self.current as f64;
        }
        let mut area = 0i128;
        let mut prev_t = 0u64;
        let mut prev_v = 0i64;
        for &(t, v) in &self.points {
            let t = t.min(end);
            area += (t - prev_t) as i128 * prev_v as i128;
            prev_t = t;
            prev_v = v;
            if t >= end {
                break;
            }
        }
        if prev_t < end {
            area += (end - prev_t) as i128 * prev_v as i128;
        }
        area as f64 / end as f64
    }

    /// Total time the value was ≥ `threshold`, within `[0, end]`.
    pub fn time_at_or_above(&self, threshold: i64, end: u64) -> u64 {
        let mut total = 0u64;
        let mut prev_t = 0u64;
        let mut prev_v = 0i64;
        for &(t, v) in &self.points {
            let t = t.min(end);
            if prev_v >= threshold {
                total += t - prev_t;
            }
            prev_t = t;
            prev_v = v;
            if t >= end {
                break;
            }
        }
        if prev_t < end && prev_v >= threshold {
            total += end - prev_t;
        }
        total
    }

    /// The raw change points (for plotting/export).
    pub fn points(&self) -> &[(u64, i64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let s = StepSeries::new();
        assert_eq!(s.value(), 0);
        assert_eq!(s.peak(), 0);
    }

    #[test]
    fn add_and_peak() {
        let mut s = StepSeries::new();
        s.add(10, 1);
        s.add(20, 1);
        s.add(30, -1);
        s.add(40, 3);
        assert_eq!(s.value(), 4);
        assert_eq!(s.peak(), 4);
    }

    #[test]
    fn time_weighted_mean_simple() {
        let mut s = StepSeries::new();
        // 0 on [0,10), 2 on [10,20), 0 after.
        s.set(10, 2);
        s.set(20, 0);
        let m = s.time_weighted_mean(40);
        assert!((m - 0.5).abs() < 1e-12, "m={m}");
    }

    #[test]
    fn time_at_or_above() {
        let mut s = StepSeries::new();
        s.set(10, 1);
        s.set(30, 2);
        s.set(50, 0);
        assert_eq!(s.time_at_or_above(1, 100), 40); // [10,50)
        assert_eq!(s.time_at_or_above(2, 100), 20); // [30,50)
        assert_eq!(s.time_at_or_above(3, 100), 0);
    }

    #[test]
    fn coalesces_same_time_updates() {
        let mut s = StepSeries::new();
        s.add(5, 1);
        s.add(5, 1);
        s.add(5, -2);
        // Net zero at t=5; mean should be 0 everywhere.
        assert_eq!(s.value(), 0);
        assert!((s.time_weighted_mean(10)).abs() < 1e-12);
        // Peak still observed the transient 2.
        assert_eq!(s.peak(), 2);
    }

    #[test]
    fn mean_with_tail() {
        let mut s = StepSeries::new();
        s.set(0, 4);
        assert!((s.time_weighted_mean(10) - 4.0).abs() < 1e-12);
    }
}
