//! Plain-text table rendering for experiment output.
//!
//! The `exp_*` binaries print the same rows a paper table would contain;
//! this module renders them aligned for terminals and as CSV for plotting.

use std::fmt::Write as _;

/// A simple column-aligned table with a title.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a row of displayable cells.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let v: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&v);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let pad = w - cell.chars().count();
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', pad + 2));
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Format a float with 2 decimals for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a ratio as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_render() {
        let mut t = Table::new("demo", &["alg", "n", "value"]);
        t.row(&["ocpt".into(), "4".into(), "1.25".into()]);
        t.row(&["chandy-lamport".into(), "64".into(), "99.00".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        let lines: Vec<&str> = r.lines().collect();
        // Header columns align with widest row.
        assert!(lines[1].starts_with("alg"));
        assert!(lines[3].starts_with("ocpt"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00"); // banker-ish rounding is fine
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn row_display() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row_display(&[&1u32, &"s"]);
        assert_eq!(t.len(), 1);
    }
}
