//! Named counters grouped in a registry.
//!
//! Protocol drivers bump counters ("ck_bgn_sent", "forced_checkpoints", …)
//! and experiments read them back by name. A `BTreeMap` keeps report output
//! deterministically ordered.

use std::collections::BTreeMap;
use std::fmt;

/// A set of named monotonically increasing counters.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    inner: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Empty registry.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Add `v` to counter `name` (creating it at 0).
    pub fn add(&mut self, name: &'static str, v: u64) {
        *self.inner.entry(name).or_insert(0) += v;
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Read counter `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.get(name).copied().unwrap_or(0)
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.inner.iter().map(|(k, v)| (*k, *v))
    }

    /// Merge another registry into this one (summing matching names).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Sum of counters whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.inner.iter().filter(|(k, _)| k.starts_with(prefix)).map(|(_, v)| *v).sum()
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.inner {
            writeln!(f, "{k:<32} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_add_get() {
        let mut c = Counters::new();
        c.inc("a");
        c.add("a", 4);
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn merge_sums() {
        let mut a = Counters::new();
        let mut b = Counters::new();
        a.inc("x");
        b.add("x", 2);
        b.inc("y");
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 1);
    }

    #[test]
    fn prefix_sum_and_order() {
        let mut c = Counters::new();
        c.add("ctrl.bgn", 1);
        c.add("ctrl.req", 2);
        c.add("app.sent", 7);
        assert_eq!(c.sum_prefix("ctrl."), 3);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["app.sent", "ctrl.bgn", "ctrl.req"]);
    }

    #[test]
    fn display_is_line_per_counter() {
        let mut c = Counters::new();
        c.inc("one");
        assert!(c.to_string().contains("one"));
    }
}
