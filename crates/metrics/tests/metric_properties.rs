//! Property tests for the measurement primitives — the experiment numbers
//! are only as trustworthy as these.

use ocpt_metrics::{Counters, Histogram, Quantiles, StepSeries, Summary};
use proptest::prelude::*;

proptest! {
    /// Welford merge equals sequential accumulation, for any split point.
    #[test]
    fn summary_merge_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        split in any::<prop::sample::Index>(),
    ) {
        let k = split.index(xs.len());
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..k] {
            a.record(x);
        }
        for &x in &xs[k..] {
            b.record(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-3 * (1.0 + whole.variance()));
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
    }

    /// Histogram quantiles stay within the 2× bucket guarantee, and the
    /// merge of two histograms behaves like recording both streams.
    #[test]
    fn histogram_quantile_bounds_and_merge(
        xs in prop::collection::vec(1u64..1_000_000, 1..200),
        ys in prop::collection::vec(1u64..1_000_000, 0..200),
    ) {
        let mut h = Histogram::new();
        let mut both = Histogram::new();
        for &x in &xs {
            h.record(x);
            both.record(x);
        }
        let mut h2 = Histogram::new();
        for &y in &ys {
            h2.record(y);
            both.record(y);
        }
        // Quantile bound: the estimate is within 2× of the true order
        // statistic at the histogram's own rank convention
        // (round((len-1)·q), matching Histogram::quantile).
        let mut sorted = xs.clone();
        sorted.sort();
        let rank = ((sorted.len() as f64 - 1.0) * 0.5).round() as usize;
        let true_median = sorted[rank];
        let est = h.quantile(0.5);
        prop_assert!(est * 2 >= true_median && est <= true_median * 2,
            "median {true_median} est {est}");
        h.merge(&h2);
        prop_assert_eq!(h.count(), both.count());
        prop_assert_eq!(h.sum(), both.sum());
        prop_assert_eq!(h.max(), both.max());
    }

    /// Exact quantiles are order statistics.
    #[test]
    fn quantiles_are_order_statistics(xs in prop::collection::vec(-1e9f64..1e9, 1..100)) {
        let mut q = Quantiles::new();
        for &x in &xs {
            q.record(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(q.quantile(0.0), sorted[0]);
        prop_assert_eq!(q.quantile(1.0), *sorted.last().unwrap());
        let med = q.p50();
        prop_assert!(sorted.contains(&med));
    }

    /// Step-series time-weighted mean equals a brute-force integral.
    #[test]
    fn step_series_mean_matches_integral(
        steps in prop::collection::vec((1u64..1_000, -5i64..6), 1..40),
    ) {
        let mut s = StepSeries::new();
        let mut t = 0u64;
        let mut points = vec![];
        for (dt, dv) in &steps {
            t += dt;
            s.add(t, *dv);
            points.push((t, s.value()));
        }
        let end = t + 100;
        // Brute force integral.
        let mut area = 0i64;
        let mut prev_t = 0u64;
        let mut prev_v = 0i64;
        for (pt, pv) in points {
            area += (pt - prev_t) as i64 * prev_v;
            prev_t = pt;
            prev_v = pv;
        }
        area += (end - prev_t) as i64 * prev_v;
        let expect = area as f64 / end as f64;
        prop_assert!((s.time_weighted_mean(end) - expect).abs() < 1e-9,
            "{} vs {}", s.time_weighted_mean(end), expect);
    }

    /// Counter merge is commutative and preserves totals.
    #[test]
    fn counters_merge_commutes(a in prop::collection::vec(0u64..100, 3), b in prop::collection::vec(0u64..100, 3)) {
        let names = ["x", "y", "z"];
        let mk = |vals: &[u64]| {
            let mut c = Counters::new();
            for (n, v) in names.iter().zip(vals) {
                c.add(n, *v);
            }
            c
        };
        let mut ab = mk(&a);
        ab.merge(&mk(&b));
        let mut ba = mk(&b);
        ba.merge(&mk(&a));
        for n in names {
            prop_assert_eq!(ab.get(n), ba.get(n));
        }
    }
}
