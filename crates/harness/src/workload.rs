//! Synthetic application workloads.
//!
//! The checkpointing algorithms only see *when* messages flow, *between
//! whom*, and *how big* they are — so a workload is exactly that triple:
//! a timing process, a destination pattern over a topology, and a payload
//! size distribution. The patterns cover the communication structures the
//! paper's introduction motivates: general message-passing (uniform mesh),
//! pipelined/neighbour computations (ring, stencil grid), client–server
//! (master–worker, hot-spot) and bursty phase-structured traffic.

use ocpt_sim::{ProcessId, SimDuration, SimRng, Topology};

/// When a process emits its next message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Timing {
    /// Poisson process: exponential inter-send gaps with the given mean.
    Poisson {
        /// Mean inter-send gap.
        mean: SimDuration,
    },
    /// Regular gaps with ±jitter.
    Uniform {
        /// Base gap.
        gap: SimDuration,
        /// Max deviation either way.
        jitter: SimDuration,
    },
    /// Alternating bursts: `burst_len` sends with `fast` gaps, then one
    /// `idle` gap.
    Bursty {
        /// Sends per burst.
        burst_len: u32,
        /// Gap inside a burst.
        fast: SimDuration,
        /// Gap between bursts.
        idle: SimDuration,
    },
}

/// How a destination is picked among the topology's neighbours.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pattern {
    /// Uniform over neighbours.
    Uniform,
    /// With probability `bias`, send to the hot process (if a neighbour);
    /// otherwise uniform.
    HotSpot {
        /// The hot destination.
        hot: ProcessId,
        /// Probability of targeting it.
        bias: f64,
    },
    /// Master–worker: the master round-robins over workers, workers always
    /// answer the master. (Pair with [`Topology::Star`].)
    MasterWorker,
}

/// Payload size distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadSpec {
    /// Every message has this many bytes.
    Fixed(u32),
    /// Uniform in `[lo, hi]`.
    Uniform(u32, u32),
}

/// A complete workload specification.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Who may talk to whom.
    pub topology: Topology,
    /// Destination choice.
    pub pattern: Pattern,
    /// Send timing per process.
    pub timing: Timing,
    /// Payload sizes.
    pub payload: PayloadSpec,
}

impl WorkloadSpec {
    /// A default "general distributed computation": full mesh, uniform
    /// destinations, Poisson sends at the given mean gap, 1 KiB payloads.
    pub fn uniform_mesh(mean_gap: SimDuration) -> Self {
        WorkloadSpec {
            topology: Topology::FullMesh,
            pattern: Pattern::Uniform,
            timing: Timing::Poisson { mean: mean_gap },
            payload: PayloadSpec::Fixed(1024),
        }
    }
}

/// Per-process workload state (burst position etc.).
#[derive(Debug)]
pub struct WorkloadState {
    spec: WorkloadSpec,
    burst_pos: u32,
    rr_next: usize,
    sends: u64,
}

impl WorkloadState {
    /// Fresh state for one process.
    pub fn new(spec: WorkloadSpec) -> Self {
        WorkloadState { spec, burst_pos: 0, rr_next: 0, sends: 0 }
    }

    /// Messages emitted so far.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// The gap before this process's next send.
    pub fn next_gap(&mut self, rng: &mut SimRng) -> SimDuration {
        match self.spec.timing {
            Timing::Poisson { mean } => rng.exp_duration(mean),
            Timing::Uniform { gap, jitter } => rng.jittered(gap, jitter),
            Timing::Bursty { burst_len, fast, idle } => {
                self.burst_pos += 1;
                if self.burst_pos >= burst_len {
                    self.burst_pos = 0;
                    idle
                } else {
                    fast
                }
            }
        }
    }

    /// Pick the destination for `src`'s next message. Returns `None` when
    /// `src` has no neighbours (degenerate topology).
    pub fn next_dst(&mut self, n: usize, src: ProcessId, rng: &mut SimRng) -> Option<ProcessId> {
        // Allocation-free fast path for the dominant (full mesh, uniform)
        // combination: the k-th neighbor of `src` in ascending order is k
        // itself when k < src, else k+1 — the same rng draw and the same
        // pick as indexing the materialized list, without the O(N) Vec per
        // send that dominates at N = 100k.
        if self.spec.topology == Topology::FullMesh && self.spec.pattern == Pattern::Uniform {
            if n < 2 {
                return None;
            }
            self.sends += 1;
            let k = rng.next_usize_below(n - 1) as u64;
            let dst = if k < src.0 as u64 { k } else { k + 1 };
            return Some(ProcessId(dst as u32));
        }
        let nbrs = self.spec.topology.neighbors(n, src);
        if nbrs.is_empty() {
            return None;
        }
        self.sends += 1;
        let dst = match self.spec.pattern {
            Pattern::Uniform => nbrs[rng.next_usize_below(nbrs.len())],
            Pattern::HotSpot { hot, bias } => {
                if hot != src && nbrs.contains(&hot) && rng.chance(bias) {
                    hot
                } else {
                    nbrs[rng.next_usize_below(nbrs.len())]
                }
            }
            Pattern::MasterWorker => {
                if src == ProcessId::P0 {
                    let dst = nbrs[self.rr_next % nbrs.len()];
                    self.rr_next += 1;
                    dst
                } else {
                    ProcessId::P0
                }
            }
        };
        Some(dst)
    }

    /// Sample a payload size.
    pub fn next_payload_len(&mut self, rng: &mut SimRng) -> u32 {
        match self.spec.payload {
            PayloadSpec::Fixed(l) => l,
            PayloadSpec::Uniform(lo, hi) => lo + rng.next_u64_below((hi - lo + 1) as u64) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(77)
    }

    #[test]
    fn poisson_gaps_average_to_mean() {
        let spec = WorkloadSpec::uniform_mesh(SimDuration::from_millis(5));
        let mut ws = WorkloadState::new(spec);
        let mut r = rng();
        let n = 10_000u64;
        let total: u64 = (0..n).map(|_| ws.next_gap(&mut r).as_nanos()).sum();
        let avg = total / n;
        assert!((avg as f64 - 5e6).abs() < 0.1 * 5e6, "avg={avg}");
    }

    #[test]
    fn bursty_alternates() {
        let spec = WorkloadSpec {
            timing: Timing::Bursty {
                burst_len: 3,
                fast: SimDuration::from_micros(1),
                idle: SimDuration::from_millis(1),
            },
            ..WorkloadSpec::uniform_mesh(SimDuration::from_millis(1))
        };
        let mut ws = WorkloadState::new(spec);
        let mut r = rng();
        let gaps: Vec<u64> = (0..6).map(|_| ws.next_gap(&mut r).as_nanos()).collect();
        assert_eq!(gaps, vec![1_000, 1_000, 1_000_000, 1_000, 1_000, 1_000_000]);
    }

    #[test]
    fn uniform_dst_only_neighbors() {
        let spec = WorkloadSpec::uniform_mesh(SimDuration::from_millis(1));
        let mut ws = WorkloadState::new(spec);
        let mut r = rng();
        for _ in 0..100 {
            let d = ws.next_dst(4, ProcessId(2), &mut r).unwrap();
            assert_ne!(d, ProcessId(2));
            assert!(d.index() < 4);
        }
        assert_eq!(ws.sends(), 100);
    }

    #[test]
    fn hotspot_biases_toward_hot() {
        let spec = WorkloadSpec {
            pattern: Pattern::HotSpot { hot: ProcessId(0), bias: 0.9 },
            ..WorkloadSpec::uniform_mesh(SimDuration::from_millis(1))
        };
        let mut ws = WorkloadState::new(spec);
        let mut r = rng();
        let hits = (0..1000)
            .filter(|_| ws.next_dst(8, ProcessId(3), &mut r).unwrap() == ProcessId(0))
            .count();
        assert!(hits > 800, "hits={hits}");
    }

    #[test]
    fn master_worker_round_robin() {
        let spec = WorkloadSpec {
            topology: Topology::Star,
            pattern: Pattern::MasterWorker,
            ..WorkloadSpec::uniform_mesh(SimDuration::from_millis(1))
        };
        let mut ws = WorkloadState::new(spec);
        let mut r = rng();
        let d1 = ws.next_dst(4, ProcessId(0), &mut r).unwrap();
        let d2 = ws.next_dst(4, ProcessId(0), &mut r).unwrap();
        let d3 = ws.next_dst(4, ProcessId(0), &mut r).unwrap();
        let d4 = ws.next_dst(4, ProcessId(0), &mut r).unwrap();
        assert_eq!(
            vec![d1, d2, d3, d4],
            vec![ProcessId(1), ProcessId(2), ProcessId(3), ProcessId(1)]
        );
        // Workers reply to the master.
        assert_eq!(ws.next_dst(4, ProcessId(2), &mut r), Some(ProcessId(0)));
    }

    #[test]
    fn payload_specs() {
        let mut ws = WorkloadState::new(WorkloadSpec {
            payload: PayloadSpec::Uniform(10, 20),
            ..WorkloadSpec::uniform_mesh(SimDuration::from_millis(1))
        });
        let mut r = rng();
        for _ in 0..100 {
            let l = ws.next_payload_len(&mut r);
            assert!((10..=20).contains(&l));
        }
        let mut fixed = WorkloadState::new(WorkloadSpec::uniform_mesh(SimDuration::from_millis(1)));
        assert_eq!(fixed.next_payload_len(&mut r), 1024);
    }
}
