//! The experiment grid engine: expand a parameter sweep into independent
//! cells, execute them across a thread pool, and aggregate the results
//! back — in declaration order — into the [`Table`] the experiment prints.
//!
//! Every cell owns its whole simulation (scheduler, RNG streams, storage
//! server, observer), so a cell's [`RunResult`] is bit-identical whether
//! the grid runs serially or on N workers: parallelism only changes
//! *which OS thread* a cell runs on, never what it computes. That is the
//! property the `--jobs 1` vs `--jobs N` byte-identity tests pin.
//!
//! Replicates: a cell declared with `replicates = R > 1` (via
//! [`GridOptions`]) is executed R times with derived seeds (replicate 0
//! keeps the configured seed; replicate `k` uses
//! `derive_seed(seed, GRID_REPLICATE_STREAM + k)`), and each metric column
//! expands into `mean`/`min`/`max`/`sd` columns over the replicates.
//!
//! The pool is hand-rolled on `std::thread::scope` (no external
//! thread-pool dependency is available offline) with a work-stealing
//! queue: each worker starts with a contiguous chunk of the job list held
//! in a packed-atomic `[lo, hi)` range, pops from the bottom of its own
//! chunk, and — once empty — steals the top half of the fullest victim's
//! range. Long cells therefore never strand a worker idle behind a
//! statically unlucky partition, and because each job writes only its own
//! result slot, the schedule has no effect on the aggregated output.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use ocpt_metrics::{f2, f3, Table};
use ocpt_sim::derive_seed;

use crate::algo::{run_checked, Algo};
use crate::runner::{RunConfig, RunResult};

/// Stream tag separating replicate seeds from every other derived stream.
const GRID_REPLICATE_STREAM: u64 = 0x6772_6964; // "grid"

/// How a metric column renders into table cells.
///
/// `NaN` renders as `"-"` under every format — experiments use it for
/// metrics that do not apply to a cell (e.g. E7's `restored_verified`
/// column for the uncoordinated baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColFmt {
    /// Integer count (rendered without decimals).
    Int,
    /// Two decimal places.
    F2,
    /// Three decimal places.
    F3,
}

impl ColFmt {
    fn render(self, v: f64) -> String {
        if v.is_nan() {
            return "-".into();
        }
        match self {
            ColFmt::Int => format!("{v:.0}"),
            ColFmt::F2 => f2(v),
            ColFmt::F3 => f3(v),
        }
    }

    /// Render a mean/sd (fractional even for integer columns).
    fn render_frac(self, v: f64) -> String {
        if v.is_nan() {
            return "-".into();
        }
        match self {
            ColFmt::Int | ColFmt::F2 => f2(v),
            ColFmt::F3 => f3(v),
        }
    }
}

/// Execution options for a grid: worker count and replicates per cell.
#[derive(Clone, Copy, Debug)]
pub struct GridOptions {
    /// Worker threads (1 = run on the calling thread).
    pub jobs: usize,
    /// Seed-replicates per cell (1 = single run, plain columns).
    pub replicates: usize,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions { jobs: 1, replicates: 1 }
    }
}

impl GridOptions {
    /// Serial, single-replicate execution (the pre-grid behaviour).
    pub fn serial() -> Self {
        Self::default()
    }
}

/// Where a grid writes per-run flight-recorder artifacts (`--trace-out`).
///
/// When a sink is attached, every `(cell, replicate)` job runs with
/// tracing forced on and writes two files into `dir`:
///
/// * `{prefix}_c{cell:03}_r{rep}.trace.jsonl` — the `ocpt-trace` JSONL
///   event stream ([`RunResult::trace_jsonl`]);
/// * `{prefix}_c{cell:03}_r{rep}.metrics.json` — the `ocpt-metrics`
///   snapshot ([`RunResult::metrics_json`]).
///
/// Filenames depend only on the job's grid coordinates, and file bytes
/// only on `(config, seed)` — so the artifact set is byte-identical
/// whichever worker thread runs the job.
#[derive(Clone, Debug)]
pub struct TraceSink {
    dir: PathBuf,
    prefix: String,
}

impl TraceSink {
    /// A sink writing into `dir` with filenames starting `prefix`
    /// (conventionally the experiment name, e.g. `"e1"`). Creates the
    /// directory if needed.
    pub fn new(dir: impl Into<PathBuf>, prefix: impl Into<String>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceSink { dir, prefix: prefix.into() })
    }

    /// The `(trace, metrics)` artifact paths for one `(cell, replicate)`
    /// job.
    pub fn paths(&self, cell: usize, rep: usize) -> (PathBuf, PathBuf) {
        let stem = format!("{}_c{cell:03}_r{rep}", self.prefix);
        (
            self.dir.join(format!("{stem}.trace.jsonl")),
            self.dir.join(format!("{stem}.metrics.json")),
        )
    }

    fn write(&self, cell: usize, rep: usize, result: &RunResult) {
        let (trace_path, metrics_path) = self.paths(cell, rep);
        std::fs::write(&trace_path, result.trace_jsonl())
            .unwrap_or_else(|e| panic!("writing {}: {e}", trace_path.display()));
        std::fs::write(&metrics_path, result.metrics_json())
            .unwrap_or_else(|e| panic!("writing {}: {e}", metrics_path.display()));
    }
}

type MetricFn = Box<dyn Fn(&RunResult) -> Vec<f64> + Send + Sync>;

/// One independent run of the grid: fixed labels, an algorithm, a full
/// run configuration and the metric extractor.
struct GridCell {
    labels: Vec<String>,
    algo: Algo,
    cfg: RunConfig,
    metrics: MetricFn,
}

/// What executing a grid produces: the rendered table plus the engine's
/// self-measurement (wall-clock, total runs, simulator throughput).
#[derive(Debug)]
pub struct GridOutcome {
    /// The aggregated result table, rows in cell-declaration order.
    pub table: Table,
    /// Wall-clock seconds for the whole grid.
    pub wall_secs: f64,
    /// Total simulation runs executed (cells × replicates).
    pub runs: usize,
    /// Simulator events dispatched, summed over all runs.
    pub sim_events: u64,
}

impl GridOutcome {
    /// Aggregate simulator throughput: events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.sim_events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// A declared experiment grid: title, label columns, metric columns and
/// the cells to run.
pub struct RunGrid {
    title: String,
    label_headers: Vec<String>,
    cols: Vec<(String, ColFmt)>,
    cells: Vec<GridCell>,
}

impl RunGrid {
    /// Declare a grid: table title, leading label columns (parameters)
    /// and metric columns with their formats.
    pub fn new(title: impl Into<String>, label_headers: &[&str], cols: &[(&str, ColFmt)]) -> Self {
        RunGrid {
            title: title.into(),
            label_headers: label_headers.iter().map(|s| s.to_string()).collect(),
            cols: cols.iter().map(|(n, f)| (n.to_string(), *f)).collect(),
            cells: Vec::new(),
        }
    }

    /// Declare one cell. `labels` must match the label headers; `metrics`
    /// must return one value per metric column.
    pub fn cell(
        &mut self,
        labels: &[String],
        algo: Algo,
        cfg: RunConfig,
        metrics: impl Fn(&RunResult) -> Vec<f64> + Send + Sync + 'static,
    ) {
        assert_eq!(labels.len(), self.label_headers.len(), "label arity mismatch");
        self.cells.push(GridCell {
            labels: labels.to_vec(),
            algo,
            cfg,
            metrics: Box::new(metrics),
        });
    }

    /// Number of declared cells (= table rows).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Rebind every declared cell to the given scheduler implementation
    /// (used by the byte-identity regression tests to run the same grid on
    /// the timing wheel and on the reference heap).
    pub fn with_scheduler(mut self, kind: ocpt_sim::SchedulerKind) -> Self {
        for cell in &mut self.cells {
            cell.cfg.scheduler = kind;
        }
        self
    }

    /// The configuration a given `(cell, replicate)` actually runs —
    /// exposed so tests can reproduce any grid run directly.
    pub fn replicate_config(&self, cell: usize, rep: usize) -> RunConfig {
        let mut cfg = self.cells[cell].cfg.clone();
        if rep > 0 {
            cfg.sim.seed = derive_seed(cfg.sim.seed, GRID_REPLICATE_STREAM + rep as u64);
        }
        cfg
    }

    /// Execute every `(cell, replicate)` job and return the raw metric
    /// vectors, indexed `[cell][replicate][metric]`. This is the engine
    /// core; [`Self::run`] aggregates it into a table.
    pub fn cell_metrics(&self, opts: &GridOptions) -> (Vec<Vec<Vec<f64>>>, u64) {
        self.cell_metrics_with_sink(opts, None)
    }

    /// [`Self::cell_metrics`], optionally recording every run's flight
    /// data into `sink`. With a sink attached each job runs with tracing
    /// forced on and writes its trace + metrics artifacts from whichever
    /// worker executes it (distinct jobs write distinct files, so the
    /// on-disk result is identical for any `jobs` count).
    pub fn cell_metrics_with_sink(
        &self,
        opts: &GridOptions,
        sink: Option<&TraceSink>,
    ) -> (Vec<Vec<Vec<f64>>>, u64) {
        let reps = opts.replicates.max(1);
        let jobs: Vec<(usize, usize)> =
            (0..self.cells.len()).flat_map(|c| (0..reps).map(move |r| (c, r))).collect();
        // One slot per job; each worker fills only its own slots, so the
        // aggregation below is race-free and order-independent.
        let slots: Vec<OnceLock<(Vec<f64>, u64)>> = jobs.iter().map(|_| OnceLock::new()).collect();
        let run_job = |job: usize| {
            let (c, r) = jobs[job];
            let cell = &self.cells[c];
            let mut cfg = self.replicate_config(c, r);
            if sink.is_some() {
                cfg.trace = true;
            }
            let result = run_checked(&cell.algo, cfg);
            if let Some(sink) = sink {
                sink.write(c, r, &result);
            }
            let vals = (cell.metrics)(&result);
            assert_eq!(vals.len(), self.cols.len(), "metric arity mismatch in {}", self.title);
            slots[job].set((vals, result.sim_events)).expect("job executed twice");
        };
        let workers = opts.jobs.max(1).min(jobs.len().max(1));
        if workers <= 1 {
            for job in 0..jobs.len() {
                run_job(job);
            }
        } else {
            // Work-stealing pool. Worker `w` owns the contiguous chunk
            // `[w·J/W, (w+1)·J/W)` of the job list, held as a packed
            // `(lo, hi)` pair in one atomic word so both claim and steal
            // are single CAS operations. Owners pop from the bottom of
            // their chunk; a worker whose chunk drains steals the top
            // half of the fullest victim's range and installs it as its
            // own, so a handful of slow cells cannot strand the rest of
            // the pool idle. `remaining` counts *completed* jobs — an
            // empty-looking pool may still have work in flight that a
            // thief will re-expose, so workers only exit on zero.
            let total = jobs.len();
            let ranges: Vec<AtomicU64> = (0..workers)
                .map(|w| {
                    AtomicU64::new(pack(
                        (w * total / workers) as u32,
                        ((w + 1) * total / workers) as u32,
                    ))
                })
                .collect();
            let remaining = AtomicUsize::new(total);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let (ranges, remaining, run_job) = (&ranges, &remaining, &run_job);
                    scope.spawn(move || loop {
                        if let Some(job) = pop_own(&ranges[w]) {
                            run_job(job);
                            remaining.fetch_sub(1, Ordering::AcqRel);
                            continue;
                        }
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        if let Some(stolen) = steal(ranges, w) {
                            // A plain store is race-free here: thieves
                            // only CAS ranges they observed non-empty,
                            // and ours is empty until this install.
                            ranges[w].store(stolen, Ordering::Release);
                            continue;
                        }
                        // Work is in flight but nothing is stealable yet;
                        // an install by another thief may change that.
                        std::thread::yield_now();
                    });
                }
            });
        }
        let mut out: Vec<Vec<Vec<f64>>> = (0..self.cells.len()).map(|_| Vec::new()).collect();
        let mut sim_events = 0u64;
        for (job, slot) in jobs.iter().zip(slots) {
            let (vals, events) = slot.into_inner().expect("job not executed");
            out[job.0].push(vals);
            sim_events += events;
        }
        (out, sim_events)
    }

    /// Execute the grid and aggregate into the result table.
    pub fn run(&self, opts: &GridOptions) -> GridOutcome {
        self.run_with_sink(opts, None)
    }

    /// [`Self::run`], optionally recording flight data (see
    /// [`TraceSink`]).
    pub fn run_with_sink(&self, opts: &GridOptions, sink: Option<&TraceSink>) -> GridOutcome {
        // simlint: allow(wall-clock, "wall-clock self-measurement of the grid driver; never feeds simulation state")
        let wall_start = std::time::Instant::now();
        let reps = opts.replicates.max(1);
        let (per_cell, sim_events) = self.cell_metrics_with_sink(opts, sink);
        let mut headers: Vec<&str> = self.label_headers.iter().map(String::as_str).collect();
        let expanded: Vec<String> = if reps > 1 {
            self.cols
                .iter()
                .flat_map(|(name, _)| {
                    ["mean", "min", "max", "sd"].iter().map(move |s| format!("{name}_{s}"))
                })
                .collect()
        } else {
            self.cols.iter().map(|(name, _)| name.clone()).collect()
        };
        headers.extend(expanded.iter().map(String::as_str));
        let mut table = Table::new(self.title.clone(), &headers);
        for (cell, reps_vals) in self.cells.iter().zip(&per_cell) {
            let mut row = cell.labels.clone();
            for (m, (_, fmt)) in self.cols.iter().enumerate() {
                let vals: Vec<f64> = reps_vals.iter().map(|r| r[m]).collect();
                if reps > 1 {
                    let (mean, min, max, sd) = aggregate(&vals);
                    row.push(fmt.render_frac(mean));
                    row.push(fmt.render(min));
                    row.push(fmt.render(max));
                    row.push(fmt.render_frac(sd));
                } else {
                    row.push(fmt.render(vals[0]));
                }
            }
            table.row(&row);
        }
        GridOutcome {
            table,
            wall_secs: wall_start.elapsed().as_secs_f64(),
            runs: self.cells.len() * reps,
            sim_events,
        }
    }

    /// Convenience: execute and return only the table.
    pub fn table(&self, opts: &GridOptions) -> Table {
        self.run(opts).table
    }
}

/// Pack a half-open job range `[lo, hi)` into one atomic word.
fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(lo) << 32) | u64::from(hi)
}

/// Inverse of [`pack`].
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Claim the bottom job of a worker's own range, or `None` if drained.
///
/// The packed CAS is ABA-safe without tags: every job index lives in at
/// most one range at any instant (chunks start disjoint; steals move a
/// sub-range, never duplicate it), so a range value containing
/// already-claimed indices can never be re-installed — the bytes a
/// pending CAS compares against cannot recur with different meaning.
fn pop_own(range: &AtomicU64) -> Option<usize> {
    let mut cur = range.load(Ordering::Acquire);
    loop {
        let (lo, hi) = unpack(cur);
        if lo >= hi {
            return None;
        }
        match range.compare_exchange_weak(
            cur,
            pack(lo + 1, hi),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some(lo as usize),
            Err(seen) => cur = seen,
        }
    }
}

/// Steal the top half (rounded down, minimum one job) of the fullest
/// victim's range. Returns the stolen range packed, ready to install.
fn steal(ranges: &[AtomicU64], me: usize) -> Option<u64> {
    let mut best = None;
    let mut best_size = 0u32;
    for (i, r) in ranges.iter().enumerate() {
        let (lo, hi) = unpack(r.load(Ordering::Acquire));
        let size = hi.saturating_sub(lo);
        if i != me && size > best_size {
            best_size = size;
            best = Some(i);
        }
    }
    let victim = &ranges[best?];
    let mut cur = victim.load(Ordering::Acquire);
    loop {
        let (lo, hi) = unpack(cur);
        if lo >= hi {
            return None;
        }
        // Take from the top so the owner keeps popping its cache-warm
        // bottom; leave the larger half with the owner.
        let k = ((hi - lo) / 2).max(1);
        match victim.compare_exchange_weak(
            cur,
            pack(lo, hi - k),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some(pack(hi - k, hi)),
            Err(seen) => cur = seen,
        }
    }
}

/// Mean/min/max/population-sd over replicate values. Any NaN poisons the
/// whole aggregate (the column renders `"-"`), which is what a metric
/// that "does not apply" should do.
fn aggregate(vals: &[f64]) -> (f64, f64, f64, f64) {
    if vals.iter().any(|v| v.is_nan()) {
        return (f64::NAN, f64::NAN, f64::NAN, f64::NAN);
    }
    let n = vals.len() as f64;
    let mean = vals.iter().sum::<f64>() / n;
    let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, min, max, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;
    use ocpt_sim::SimDuration;

    fn tiny_cfg(n: usize, seed: u64) -> RunConfig {
        let mut cfg = RunConfig::new(n, seed);
        cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(4));
        cfg.checkpoint_interval = SimDuration::from_millis(250);
        cfg.workload_duration = SimDuration::from_millis(600);
        cfg.state_bytes = 128 * 1024;
        cfg
    }

    fn demo_grid() -> RunGrid {
        let mut g = RunGrid::new(
            "demo",
            &["algo", "n"],
            &[("msgs", ColFmt::Int), ("rounds", ColFmt::Int), ("piggy_b", ColFmt::F2)],
        );
        for n in [3usize, 4] {
            for algo in [Algo::ocpt(), Algo::KooToueg] {
                g.cell(
                    &[algo.name().to_string(), n.to_string()],
                    algo.clone(),
                    tiny_cfg(n, 7),
                    |r| {
                        vec![
                            r.app_messages as f64,
                            r.complete_rounds as f64,
                            r.piggyback_bytes as f64,
                        ]
                    },
                );
            }
        }
        g
    }

    #[test]
    fn declaration_order_is_row_order() {
        let g = demo_grid();
        let t = g.table(&GridOptions::serial());
        assert_eq!(t.len(), 4);
        let csv = t.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert!(rows[0].starts_with("ocpt,3"));
        assert!(rows[1].starts_with("koo-toueg,3"));
        assert!(rows[2].starts_with("ocpt,4"));
        assert!(rows[3].starts_with("koo-toueg,4"));
    }

    #[test]
    fn parallel_output_is_byte_identical_to_serial() {
        let g = demo_grid();
        let serial = g.run(&GridOptions { jobs: 1, replicates: 1 });
        let parallel = g.run(&GridOptions { jobs: 8, replicates: 1 });
        assert_eq!(serial.table.render(), parallel.table.render());
        assert_eq!(serial.table.to_csv(), parallel.table.to_csv());
        assert_eq!(serial.sim_events, parallel.sim_events);
        assert_eq!(serial.runs, 4);
    }

    #[test]
    fn cell_runs_match_direct_execution() {
        let g = demo_grid();
        let (metrics, _) = g.cell_metrics(&GridOptions { jobs: 4, replicates: 2 });
        // Every (cell, replicate) must equal a direct run_checked of the
        // same derived configuration.
        for (c, reps) in metrics.iter().enumerate() {
            assert_eq!(reps.len(), 2);
            for (r, vals) in reps.iter().enumerate() {
                let direct = run_checked(&g.cells[c].algo, g.replicate_config(c, r));
                let expect = (g.cells[c].metrics)(&direct);
                assert_eq!(vals, &expect, "cell {c} replicate {r} diverged");
            }
        }
    }

    #[test]
    fn replicates_expand_columns_and_derive_seeds() {
        let g = demo_grid();
        let t = g.table(&GridOptions { jobs: 2, replicates: 3 });
        let header = t.to_csv().lines().next().unwrap().to_string();
        assert!(header.contains("msgs_mean"));
        assert!(header.contains("msgs_min"));
        assert!(header.contains("msgs_max"));
        assert!(header.contains("msgs_sd"));
        // Replicate 0 keeps the configured seed; later replicates differ.
        assert_eq!(g.replicate_config(0, 0).sim.seed, 7);
        assert_ne!(g.replicate_config(0, 1).sim.seed, 7);
        assert_ne!(g.replicate_config(0, 1).sim.seed, g.replicate_config(0, 2).sim.seed);
    }

    #[test]
    fn nan_renders_as_dash() {
        assert_eq!(ColFmt::Int.render(f64::NAN), "-");
        assert_eq!(ColFmt::F2.render_frac(f64::NAN), "-");
        let (m, lo, hi, sd) = aggregate(&[1.0, f64::NAN]);
        assert!(m.is_nan() && lo.is_nan() && hi.is_nan() && sd.is_nan());
    }

    #[test]
    fn sink_writes_parseable_artifacts_identically_across_jobs() {
        let dir = std::env::temp_dir().join(format!("ocpt_grid_sink_{}", std::process::id()));
        let g = demo_grid();
        let serial = TraceSink::new(dir.join("serial"), "demo").unwrap();
        let parallel = TraceSink::new(dir.join("parallel"), "demo").unwrap();
        g.run_with_sink(&GridOptions { jobs: 1, replicates: 1 }, Some(&serial));
        g.run_with_sink(&GridOptions { jobs: 8, replicates: 1 }, Some(&parallel));
        for c in 0..g.cell_count() {
            let (t1, m1) = serial.paths(c, 0);
            let (t8, m8) = parallel.paths(c, 0);
            let trace = std::fs::read_to_string(&t1).unwrap();
            // Schema-valid, and byte-identical whichever thread ran the job.
            let parsed = ocpt_telemetry::parse_jsonl(&trace).unwrap();
            assert!(!parsed.recs.is_empty(), "cell {c} traced no events");
            assert_eq!(trace, std::fs::read_to_string(&t8).unwrap(), "cell {c} trace");
            let metrics = std::fs::read_to_string(&m1).unwrap();
            assert!(metrics.starts_with("{\"schema\":\"ocpt-metrics\""));
            assert_eq!(metrics, std::fs::read_to_string(&m8).unwrap(), "cell {c} metrics");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn packed_range_roundtrips() {
        for (lo, hi) in [(0u32, 0u32), (0, 7), (3, 3), (100, u32::MAX)] {
            assert_eq!(unpack(pack(lo, hi)), (lo, hi));
        }
    }

    #[test]
    fn pop_own_drains_bottom_up() {
        let r = AtomicU64::new(pack(2, 5));
        assert_eq!(pop_own(&r), Some(2));
        assert_eq!(pop_own(&r), Some(3));
        assert_eq!(pop_own(&r), Some(4));
        assert_eq!(pop_own(&r), None);
        assert_eq!(pop_own(&r), None, "empty range stays empty");
    }

    #[test]
    fn steal_takes_top_half_of_fullest_victim() {
        let ranges = vec![
            AtomicU64::new(pack(0, 0)),   // me (empty)
            AtomicU64::new(pack(0, 2)),   // small victim
            AtomicU64::new(pack(10, 20)), // fullest victim
        ];
        let stolen = steal(&ranges, 0).expect("work available");
        assert_eq!(unpack(stolen), (15, 20), "top half of the fullest range");
        assert_eq!(unpack(ranges[2].load(Ordering::Relaxed)), (10, 15), "owner keeps the bottom");
        // A single-job victim is still stealable (k is at least one).
        ranges[2].store(pack(0, 0), Ordering::Relaxed);
        ranges[1].store(pack(4, 5), Ordering::Relaxed);
        assert_eq!(unpack(steal(&ranges, 0).expect("one job left")), (4, 5));
        assert_eq!(steal(&ranges, 0), None, "nothing left anywhere");
    }

    #[test]
    fn stealing_pool_runs_every_job_exactly_once() {
        // Skewed per-job cost so static chunking alone would leave
        // workers idle — the schedule must still cover each job once.
        let total = 97usize;
        let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        let workers = 7usize;
        let ranges: Vec<AtomicU64> = (0..workers)
            .map(|w| {
                AtomicU64::new(pack(
                    (w * total / workers) as u32,
                    ((w + 1) * total / workers) as u32,
                ))
            })
            .collect();
        let remaining = AtomicUsize::new(total);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let (ranges, remaining, hits) = (&ranges, &remaining, &hits);
                scope.spawn(move || loop {
                    if let Some(job) = pop_own(&ranges[w]) {
                        if job % 13 == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        hits[job].fetch_add(1, Ordering::Relaxed);
                        remaining.fetch_sub(1, Ordering::AcqRel);
                        continue;
                    }
                    if remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    if let Some(stolen) = steal(ranges, w) {
                        ranges[w].store(stolen, Ordering::Release);
                        continue;
                    }
                    std::thread::yield_now();
                });
            }
        });
        for (job, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "job {job} ran a wrong number of times");
        }
    }

    #[test]
    fn outcome_reports_throughput() {
        let g = demo_grid();
        let out = g.run(&GridOptions::serial());
        assert!(out.sim_events > 0);
        assert!(out.wall_secs > 0.0);
        assert!(out.events_per_sec() > 0.0);
    }
}
