//! Algorithm selection and run dispatch.
//!
//! Experiments pick algorithms by value from this enum; `run` monomorphises
//! a [`Runner`] per variant so each protocol runs with zero dynamic
//! dispatch in the hot loop.

use ocpt_baselines::{ChandyLamport, Cic, KooToueg, OcptAdapter, Staggered, Uncoordinated};
use ocpt_core::{LoggingKind, OcptConfig, WritePolicy};
use ocpt_sim::ProcessId;

use crate::runner::{RunConfig, RunResult, Runner};

/// A runnable checkpointing algorithm.
#[derive(Clone, Debug)]
pub enum Algo {
    /// The paper's algorithm with an explicit configuration.
    Ocpt(OcptConfig),
    /// Chandy–Lamport iterated snapshots.
    ChandyLamport,
    /// Koo–Toueg blocking coordinated checkpointing.
    KooToueg,
    /// Vaidya-style staggered checkpointing.
    Staggered,
    /// Index-based communication-induced checkpointing.
    Cic,
    /// Uncoordinated periodic checkpointing.
    Uncoordinated,
}

impl Algo {
    /// The paper's algorithm with default settings.
    pub fn ocpt() -> Self {
        Algo::Ocpt(OcptConfig::default())
    }

    /// The paper's algorithm with the unoptimized control layer (A1).
    pub fn ocpt_naive() -> Self {
        Algo::Ocpt(OcptConfig::naive_control())
    }

    /// The paper's basic algorithm without control messages (may fail to
    /// converge — used to demonstrate the convergence problem).
    pub fn ocpt_basic() -> Self {
        Algo::Ocpt(OcptConfig::basic_only())
    }

    /// The paper's algorithm with an alternative message-logging strategy
    /// (E10's axis; `LoggingKind::Selective` is `Algo::ocpt()` itself).
    pub fn ocpt_logging(kind: LoggingKind) -> Self {
        Algo::Ocpt(OcptConfig { logging: kind, ..OcptConfig::default() })
    }

    /// Display name (matches `RunResult::algo` for the plain variants).
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Ocpt(c) if !c.control_messages => "ocpt-basic",
            Algo::Ocpt(c) if !c.optimize_ck_bgn => "ocpt-naive",
            Algo::Ocpt(c) if c.logging != LoggingKind::Selective => match c.logging {
                LoggingKind::Selective => unreachable!(),
                LoggingKind::SenderBased => "ocpt-sender",
                LoggingKind::ReceiverBased => "ocpt-receiver",
                LoggingKind::CausalCompressed => "ocpt-causal",
            },
            Algo::Ocpt(_) => "ocpt",
            Algo::ChandyLamport => "chandy-lamport",
            Algo::KooToueg => "koo-toueg",
            Algo::Staggered => "staggered",
            Algo::Cic => "cic",
            Algo::Uncoordinated => "uncoordinated",
        }
    }

    /// All comparison algorithms (the paper's + every baseline).
    pub fn comparison_set() -> Vec<Algo> {
        vec![
            Algo::ocpt(),
            Algo::ChandyLamport,
            Algo::KooToueg,
            Algo::Staggered,
            Algo::Cic,
            Algo::Uncoordinated,
        ]
    }
}

/// Run `algo` under `cfg` and collect the results.
pub fn run(algo: &Algo, cfg: RunConfig) -> RunResult {
    let state_bytes = cfg.state_bytes;
    match algo {
        Algo::Ocpt(ocfg) => {
            let mut ocfg =
                OcptConfig { state_bytes, checkpoint_interval: cfg.checkpoint_interval, ..*ocfg };
            // Size the deferred-write spread for this run: wide enough that
            // consecutive offsets exceed one write's service time (or the
            // cascade re-creates the contention it exists to avoid), but
            // never past ~half the interval so writes drain before the
            // next round. The configured window acts as a lower bound for
            // explicit ablations.
            let write_s = state_bytes as f64 / cfg.storage.bandwidth_bps
                + cfg.storage.per_request_overhead.as_secs_f64();
            let needed = ocpt_sim::SimDuration::from_secs_f64(write_s * cfg.sim.n as f64 * 1.25);
            let half = cfg.checkpoint_interval.mul_f64(0.45);
            ocfg.finalize_write = match ocfg.finalize_write {
                WritePolicy::Jittered { window } => {
                    WritePolicy::Jittered { window: window.max(needed).min(half) }
                }
                WritePolicy::Phased { window } => {
                    WritePolicy::Phased { window: window.max(needed).min(half) }
                }
                w => w,
            };
            let mut result =
                Runner::new(cfg, move |pid, n, seed| OcptAdapter::new(pid, n, ocfg, seed)).run();
            // Distinguish the variants in reports.
            if !ocfg.control_messages {
                result.algo = "ocpt-basic";
            } else if !ocfg.optimize_ck_bgn {
                result.algo = "ocpt-naive";
            } else if ocfg.logging != LoggingKind::Selective {
                result.algo = Algo::Ocpt(ocfg).name();
            }
            result
        }
        Algo::ChandyLamport => {
            Runner::new(cfg, move |pid, n, _| ChandyLamport::new(pid, n, state_bytes)).run()
        }
        Algo::KooToueg => Runner::new(cfg, |pid, n, _| KooToueg::new(pid, n)).run(),
        Algo::Staggered => Runner::new(cfg, |pid, n, _| Staggered::new(pid, n)).run(),
        Algo::Cic => Runner::new(cfg, |pid, _, _| Cic::new(pid)).run(),
        Algo::Uncoordinated => Runner::new(cfg, |pid, _, _| Uncoordinated::new(pid)).run(),
    }
}

/// Convenience used all over the tests: run and assert the run was clean
/// (no protocol error) and, when the observer is on, fully consistent.
pub fn run_checked(algo: &Algo, cfg: RunConfig) -> RunResult {
    let observing = cfg.observe;
    let result = run(algo, cfg);
    assert!(
        result.protocol_error.is_none(),
        "{}: protocol error: {:?}",
        result.algo,
        result.protocol_error
    );
    // Uncoordinated checkpointing makes no consistency promise — that is
    // precisely its failure mode (domino effect); everyone else must
    // produce only consistent global checkpoints.
    if observing && result.crash.is_none() && result.algo != "uncoordinated" {
        result.verify_consistency().unwrap_or_else(|e| panic!("{}: {e}", result.algo));
    }
    result
}

/// The coordinator process id (re-export for experiment code readability).
pub const COORDINATOR: ProcessId = ProcessId::P0;
