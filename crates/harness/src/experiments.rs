//! The reconstructed evaluation (DESIGN.md §4): one function per
//! experiment, each returning the [`Table`] its `exp_*` binary prints.
//!
//! The paper omitted its performance-evaluation section for space; these
//! experiments test the paper's *claims* (§Abstract, §1, §3.5.1) on the
//! simulated substrate, against the comparators of §4. Absolute numbers
//! are properties of the substrate parameters; the *shapes* — who
//! contends, whose control traffic vanishes, who blocks, who dominoes —
//! are the reproduction targets recorded in `EXPERIMENTS.md`.

use ocpt_metrics::{f2, f3, Table};
use ocpt_sim::{FaultPlan, ProcessId, SimDuration, SimTime};

use crate::algo::{run_checked, Algo};
use crate::analysis::{coordinated_rollback, domino_rollback, verify_restored_states};
use crate::runner::RunConfig;
use crate::workload::WorkloadSpec;

/// Common experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExpParams {
    /// System size.
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// Virtual seconds of workload per run.
    pub workload_ms: u64,
    /// Mean inter-send gap per process.
    pub msg_gap: SimDuration,
    /// Checkpoint initiation interval.
    pub ckpt_interval: SimDuration,
    /// Process image size in bytes.
    pub state_bytes: u64,
}

impl Default for ExpParams {
    fn default() -> Self {
        ExpParams {
            n: 8,
            seed: 42,
            workload_ms: 3_000,
            msg_gap: SimDuration::from_millis(5),
            ckpt_interval: SimDuration::from_millis(500),
            state_bytes: 1024 * 1024,
        }
    }
}

impl ExpParams {
    /// Build the base run configuration.
    pub fn config(&self) -> RunConfig {
        let mut cfg = RunConfig::new(self.n, self.seed);
        cfg.workload = WorkloadSpec::uniform_mesh(self.msg_gap);
        cfg.checkpoint_interval = self.ckpt_interval;
        cfg.state_bytes = self.state_bytes;
        cfg.workload_duration = SimDuration::from_millis(self.workload_ms);
        cfg.sim = cfg
            .sim
            .with_horizon(SimDuration::from_millis(self.workload_ms) + SimDuration::from_secs(30));
        cfg
    }
}

fn ms(d: SimDuration) -> String {
    f2(d.as_secs_f64() * 1e3)
}

/// State size that keeps storage utilisation `n·state/(interval·BW)` at a
/// fixed ~25% for the default 50 MB/s server. Contention experiments sweep
/// N at *constant utilisation*: past ρ = 1 the server saturates and every
/// algorithm contends by necessity, which measures overload, not write
/// scheduling.
pub fn scaled_state_bytes(n: usize, interval: SimDuration) -> u64 {
    let bw = 50.0 * 1024.0 * 1024.0;
    ((0.25 * bw * interval.as_secs_f64()) / n as f64) as u64
}

/// **E1 — stable-storage contention.** The paper's headline claim:
/// "prevents contention for network storage at the file server".
/// Sweeps N over every algorithm; reports peak and mean concurrent
/// writers, contended time and total stall.
pub fn e1_contention(ns: &[usize], base: ExpParams) -> Table {
    let mut t = Table::new(
        "E1: stable-storage contention vs N (peak/mean concurrent writers, stall)",
        &["algo", "n", "peak_writers", "mean_writers", "contended_ms", "stall_ms", "write_lat_ms"],
    );
    for &n in ns {
        for algo in Algo::comparison_set() {
            let p = ExpParams {
                n,
                state_bytes: scaled_state_bytes(n, base.ckpt_interval),
                ..base
            };
            let r = run_checked(&algo, p.config());
            t.row(&[
                r.algo.into(),
                n.to_string(),
                r.storage.peak_writers.to_string(),
                f3(r.storage.mean_writers),
                ms(r.storage.contended_time),
                ms(r.storage.total_stall),
                f2(r.storage.write_latency_mean * 1e3),
            ]);
        }
    }
    t
}

/// **E2 — checkpointing overhead.** "reduces the checkpointing overhead":
/// blocked application time (Koo–Toueg), forced pre-processing delay
/// (CIC), storage stall, and checkpoint-round latency, per algorithm.
pub fn e2_overhead(intervals: &[SimDuration], base: ExpParams) -> Table {
    let mut t = Table::new(
        "E2: checkpointing overhead components per algorithm",
        &[
            "algo",
            "interval_ms",
            "rounds",
            "blocked_ms",
            "forced_ms",
            "stall_ms",
            "round_latency_ms",
        ],
    );
    for &iv in intervals {
        for algo in Algo::comparison_set() {
            let p = ExpParams {
                ckpt_interval: iv,
                state_bytes: base.state_bytes.min(scaled_state_bytes(base.n, iv)),
                ..base
            };
            let r = run_checked(&algo, p.config());
            t.row(&[
                r.algo.into(),
                ms(iv),
                r.complete_rounds.to_string(),
                ms(r.blocked_time),
                ms(r.forced_delay),
                ms(r.storage.total_stall),
                f2(r.ckpt_latency.mean() * 1e3),
            ]);
        }
    }
    t
}

/// **E3 / A1 — control-message cost.** "limited amount of control
/// messages are generated only when necessary": CK_BGN/CK_REQ/CK_END per
/// completed round as the application message rate varies, for the
/// optimized and naive control layers.
pub fn e3_control_messages(gaps: &[SimDuration], base: ExpParams) -> Table {
    let mut t = Table::new(
        "E3/A1: OCPT control messages per completed round vs app message rate",
        &["variant", "msg_gap_ms", "rounds", "bgn/rnd", "req/rnd", "end/rnd", "timer_exp/rnd"],
    );
    for &gap in gaps {
        for algo in [Algo::ocpt(), Algo::ocpt_naive()] {
            let p = ExpParams { msg_gap: gap, ..base };
            // Aligned initiation: all processes take the tentative
            // checkpoint concurrently, so convergence genuinely depends on
            // knowledge spreading — the regime the control layer exists
            // for (with staggered phases, the initiator is effectively a
            // coordinator and CK_BGN is never needed).
            let mut cfg = p.config();
            cfg.stagger_initiation = false;
            let r = run_checked(&algo, cfg);
            let rounds = r.complete_rounds.max(1) as f64;
            t.row(&[
                r.algo.into(),
                ms(gap),
                r.complete_rounds.to_string(),
                f2(r.counters.get("ctrl.bgn_sent") as f64 / rounds),
                f2(r.counters.get("ctrl.req_sent") as f64 / rounds),
                f2(r.counters.get("ctrl.end_sent") as f64 / rounds),
                f2(r.counters.get("timer.expired") as f64 / rounds),
            ]);
        }
    }
    t
}

/// **E4 / A3 — convergence latency.** Theorem 1 made quantitative: time
/// from a round's first tentative checkpoint to its last finalization, as
/// the message rate and the convergence timeout vary.
pub fn e4_convergence(
    gaps: &[SimDuration],
    timeouts: &[SimDuration],
    base: ExpParams,
) -> Table {
    let mut t = Table::new(
        "E4/A3: convergence latency vs app rate and timer",
        &["msg_gap_ms", "timeout_ms", "rounds", "latency_mean_ms", "latency_max_ms", "timer_exp/rnd"],
    );
    for &gap in gaps {
        for &to in timeouts {
            let mut cfg = ocpt_core::OcptConfig { convergence_timeout: to, ..Default::default() };
            cfg.checkpoint_interval = base.ckpt_interval;
            let p = ExpParams { msg_gap: gap, ..base };
            let r = run_checked(&Algo::Ocpt(cfg), p.config());
            let rounds = r.complete_rounds.max(1) as f64;
            t.row(&[
                ms(gap),
                ms(to),
                r.complete_rounds.to_string(),
                f2(r.ckpt_latency.mean() * 1e3),
                f2(r.ckpt_latency.max() * 1e3),
                f2(r.counters.get("timer.expired") as f64 / rounds),
            ]);
        }
    }
    t
}

/// **E5 — selective-logging cost.** Bytes and messages logged per
/// checkpoint vs an always-log-everything scheme (classic message
/// logging), plus the volatile staging footprint.
pub fn e5_logging(gaps: &[SimDuration], base: ExpParams) -> Table {
    let mut t = Table::new(
        "E5: selective message logging vs full logging",
        &[
            "msg_gap_ms",
            "rounds",
            "logged_msgs/rnd",
            "logged_kb/rnd",
            "full_log_kb/rnd",
            "selective_share",
            "staging_peak_mb",
        ],
    );
    for &gap in gaps {
        let p = ExpParams { msg_gap: gap, ..base };
        let r = run_checked(&Algo::ocpt(), p.config());
        let rounds = r.complete_rounds.max(1) as f64;
        let logged_bytes = r.counters.get("log.flushed_bytes") as f64;
        // Full logging would persist every message (payload + metadata),
        // counted on both the sender and receiver side, as OCPT does
        // within its windows.
        let meta = ocpt_core::log::ENTRY_META_BYTES as f64;
        let full =
            2.0 * (r.app_payload_bytes as f64 + r.app_messages as f64 * meta);
        t.row(&[
            ms(gap),
            r.complete_rounds.to_string(),
            f2(r.counters.get("log.flushed_msgs") as f64 / rounds),
            f2(logged_bytes / rounds / 1024.0),
            f2(full / rounds / 1024.0),
            f3(logged_bytes / full.max(1.0)),
            f2(r.staging_peak as f64 / (1024.0 * 1024.0)),
        ]);
    }
    t
}

/// **E6 — piggyback overhead.** `tentSet` is `⌈N/8⌉` bytes: measured
/// piggyback bytes per application message vs N, and the share of total
/// traffic it represents.
pub fn e6_piggyback(ns: &[usize], base: ExpParams) -> Table {
    let mut t = Table::new(
        "E6: piggyback overhead vs N",
        &["n", "piggy_B/msg", "theory_B/msg", "piggy_share_of_traffic"],
    );
    for &n in ns {
        let p = ExpParams { n, ..base };
        let r = run_checked(&Algo::ocpt(), p.config());
        let per_msg = r.piggyback_bytes as f64 / r.app_messages.max(1) as f64;
        let theory = ocpt_core::Piggyback::wire_bytes_for(n) as f64;
        let share = r.piggyback_bytes as f64
            / (r.app_payload_bytes + r.piggyback_bytes + r.ctrl_bytes).max(1) as f64;
        t.row(&[n.to_string(), f2(per_msg), f2(theory), f3(share)]);
    }
    t
}

/// **E7 — recovery and the domino effect.** Crash one process mid-run;
/// compare work lost under OCPT's coordinated rollback to `S_k` against
/// uncoordinated checkpointing's rollback-propagation fixpoint. Also
/// verifies OCPT's restored states byte-for-byte (CT + log replay).
pub fn e7_recovery(base: ExpParams, crash_ms: u64) -> Table {
    let mut t = Table::new(
        "E7: rollback after a crash (domino effect)",
        &[
            "algo",
            "events_total",
            "events_lost",
            "procs_rolled_back",
            "to_initial",
            "cascade_rounds",
            "restored_verified",
        ],
    );
    let victim = ProcessId((base.n / 2) as u16);
    let faults = FaultPlan::single(
        victim,
        SimTime::from_millis(crash_ms),
        SimDuration::from_millis(10),
    );
    for algo in [Algo::ocpt(), Algo::Uncoordinated] {
        let mut cfg = base.config();
        cfg.faults = faults.clone();
        cfg.stop_on_crash = true;
        let r = run_checked(&algo, cfg);
        let obs = r.observer.as_ref().expect("observer required for E7");
        let total: u64 = obs.positions().iter().sum();
        let (report, verified) = match algo {
            Algo::Ocpt(_) => {
                let line = r.recovery_line;
                let v = verify_restored_states(&r, line)
                    .unwrap_or_else(|e| panic!("restore verification failed: {e}"));
                (coordinated_rollback(obs, line), v.to_string())
            }
            _ => (domino_rollback(obs, victim), "-".into()),
        };
        t.row(&[
            r.algo.into(),
            total.to_string(),
            report.events_lost.to_string(),
            report.processes_rolled_back.to_string(),
            report.rolled_to_initial.to_string(),
            report.cascade_rounds.to_string(),
            verified,
        ]);
    }
    t
}

/// **E8 — message response time.** "no checkpoint needs to be taken
/// before processing any received message": forced pre-processing
/// checkpoints and the delay they add, OCPT vs CIC.
pub fn e8_response_time(gaps: &[SimDuration], base: ExpParams) -> Table {
    let mut t = Table::new(
        "E8: forced checkpoints before message processing (response-time penalty)",
        &["algo", "msg_gap_ms", "delivered", "forced_ckpts", "forced_delay_ms", "avg_penalty_us/msg"],
    );
    for &gap in gaps {
        for algo in [Algo::ocpt(), Algo::Cic] {
            let p = ExpParams { msg_gap: gap, ..base };
            let r = run_checked(&algo, p.config());
            let delivered = r.counters.get("app.delivered").max(1);
            t.row(&[
                r.algo.into(),
                ms(gap),
                delivered.to_string(),
                r.counters.get("ckpt.forced_before_processing").to_string(),
                ms(r.forced_delay),
                f2(r.forced_delay.as_secs_f64() * 1e6 / delivered as f64),
            ]);
        }
    }
    t
}

/// **A2 — storage write placement ablation.** The paper's contention
/// claim hinges on *when* checkpoints are written, not when they are
/// decided: eager/immediate placements recreate synchronous clustering;
/// jittered and pid-phased placements de-cluster it for free. The price
/// is recovery-line lag, which the table reports alongside.
pub fn a2_flush_policy(base: ExpParams) -> Table {
    use ocpt_core::{FlushPolicy, WritePolicy};
    let mut t = Table::new(
        "A2: OCPT write-placement ablation (tentative flush × finalize write)",
        &[
            "policy",
            "peak_writers",
            "contended_ms",
            "stall_ms",
            "round_latency_ms",
            "recovery_line",
            "rounds",
            "staging_peak_mb",
        ],
    );
    let window = SimDuration::from_millis(400.min(base.ckpt_interval.as_nanos() / 2_000_000));
    let policies: [(&str, FlushPolicy, WritePolicy); 4] = [
        ("eager+immediate", FlushPolicy::Eager, WritePolicy::Immediate),
        ("lazy+immediate", FlushPolicy::Lazy, WritePolicy::Immediate),
        ("lazy+jittered", FlushPolicy::Lazy, WritePolicy::Jittered { window }),
        ("lazy+phased", FlushPolicy::Lazy, WritePolicy::Phased { window }),
    ];
    for (name, flush, write) in policies {
        let cfg = ocpt_core::OcptConfig {
            flush_policy: flush,
            finalize_write: write,
            ..Default::default()
        };
        let r = run_checked(&Algo::Ocpt(cfg), base.config());
        t.row(&[
            name.into(),
            r.storage.peak_writers.to_string(),
            ms(r.storage.contended_time),
            ms(r.storage.total_stall),
            f2(r.ckpt_latency.mean() * 1e3),
            r.recovery_line.to_string(),
            r.complete_rounds.to_string(),
            f2(r.staging_peak as f64 / (1024.0 * 1024.0)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpParams {
        ExpParams {
            n: 4,
            workload_ms: 800,
            msg_gap: SimDuration::from_millis(4),
            ckpt_interval: SimDuration::from_millis(250),
            state_bytes: 256 * 1024,
            ..Default::default()
        }
    }

    #[test]
    fn e1_produces_all_rows() {
        let t = e1_contention(&[4], quick());
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn e3_rows_for_both_variants() {
        let t = e3_control_messages(&[SimDuration::from_millis(4)], quick());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn e6_rows() {
        let t = e6_piggyback(&[4, 8], quick());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn e7_rows() {
        let t = e7_recovery(quick(), 600);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn a2_rows() {
        let t = a2_flush_policy(quick());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn e2_rows() {
        let t = e2_overhead(&[SimDuration::from_millis(250)], quick());
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn e4_rows() {
        let t = e4_convergence(
            &[SimDuration::from_millis(4)],
            &[SimDuration::from_millis(100), SimDuration::from_millis(300)],
            quick(),
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn e5_rows() {
        let t = e5_logging(&[SimDuration::from_millis(4)], quick());
        assert_eq!(t.len(), 1);
        assert!(t.to_csv().contains("selective_share"));
    }

    #[test]
    fn e8_rows() {
        let t = e8_response_time(&[SimDuration::from_millis(4)], quick());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn scaled_state_keeps_utilisation_constant() {
        let iv = SimDuration::from_secs(1);
        for n in [4usize, 8, 32, 128] {
            let s = scaled_state_bytes(n, iv);
            let rho = n as f64 * s as f64 / (iv.as_secs_f64() * 50.0 * 1024.0 * 1024.0);
            assert!((rho - 0.25).abs() < 0.01, "n={n}: rho={rho}");
        }
    }
}
