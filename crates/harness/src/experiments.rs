//! The reconstructed evaluation (DESIGN.md §4): one function per
//! experiment, each declaring the [`RunGrid`] its `exp_*` binary executes
//! and prints.
//!
//! The paper omitted its performance-evaluation section for space; these
//! experiments test the paper's *claims* (§Abstract, §1, §3.5.1) on the
//! simulated substrate, against the comparators of §4. Absolute numbers
//! are properties of the substrate parameters; the *shapes* — who
//! contends, whose control traffic vanishes, who blocks, who dominoes —
//! are the reproduction targets recorded in `EXPERIMENTS.md`.
//!
//! Every function returns a [`RunGrid`] rather than a finished table:
//! cells are declared in row order and executed by the grid engine with
//! whatever `--jobs`/`--replicates` the caller picks, and the output is
//! bit-identical however many workers run it (see `grid`).

use ocpt_core::LoggingKind;
use ocpt_metrics::Table;
use ocpt_sim::{Fault, FaultPlan, ProcessId, SimDuration, SimTime};

use crate::algo::Algo;
use crate::analysis::{
    coordinated_rollback, domino_rollback, log_recovery_report, verify_restored_states,
};
use crate::grid::{ColFmt, GridOptions, RunGrid};
use crate::runner::RunConfig;
use crate::workload::WorkloadSpec;

use ColFmt::{Int, F2, F3};

/// Common experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExpParams {
    /// System size.
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// Virtual seconds of workload per run.
    pub workload_ms: u64,
    /// Mean inter-send gap per process.
    pub msg_gap: SimDuration,
    /// Checkpoint initiation interval.
    pub ckpt_interval: SimDuration,
    /// Process image size in bytes.
    pub state_bytes: u64,
}

impl Default for ExpParams {
    fn default() -> Self {
        ExpParams {
            n: 8,
            seed: 42,
            workload_ms: 3_000,
            msg_gap: SimDuration::from_millis(5),
            ckpt_interval: SimDuration::from_millis(500),
            state_bytes: 1024 * 1024,
        }
    }
}

impl ExpParams {
    /// Build the base run configuration.
    pub fn config(&self) -> RunConfig {
        let mut cfg = RunConfig::new(self.n, self.seed);
        cfg.workload = WorkloadSpec::uniform_mesh(self.msg_gap);
        cfg.checkpoint_interval = self.ckpt_interval;
        cfg.state_bytes = self.state_bytes;
        cfg.workload_duration = SimDuration::from_millis(self.workload_ms);
        cfg.sim = cfg
            .sim
            .with_horizon(SimDuration::from_millis(self.workload_ms) + SimDuration::from_secs(30));
        cfg
    }
}

fn ms_label(d: SimDuration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn to_ms(d: SimDuration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// State size that keeps storage utilisation `n·state/(interval·BW)` at a
/// fixed ~25% for the default 50 MB/s server. Contention experiments sweep
/// N at *constant utilisation*: past ρ = 1 the server saturates and every
/// algorithm contends by necessity, which measures overload, not write
/// scheduling.
pub fn scaled_state_bytes(n: usize, interval: SimDuration) -> u64 {
    let bw = 50.0 * 1024.0 * 1024.0;
    ((0.25 * bw * interval.as_secs_f64()) / n as f64) as u64
}

/// **E1 — stable-storage contention.** The paper's headline claim:
/// "prevents contention for network storage at the file server".
/// Sweeps N over every algorithm; reports peak and mean concurrent
/// writers, contended time and total stall.
pub fn e1_contention(ns: &[usize], base: ExpParams) -> RunGrid {
    let mut g = RunGrid::new(
        "E1: stable-storage contention vs N (peak/mean concurrent writers, stall)",
        &["algo", "n"],
        &[
            ("peak_writers", Int),
            ("mean_writers", F3),
            ("contended_ms", F2),
            ("stall_ms", F2),
            ("write_lat_ms", F2),
        ],
    );
    for &n in ns {
        for algo in Algo::comparison_set() {
            let p = ExpParams { n, state_bytes: scaled_state_bytes(n, base.ckpt_interval), ..base };
            g.cell(&[algo.name().into(), n.to_string()], algo, p.config(), |r| {
                vec![
                    r.storage.peak_writers as f64,
                    r.storage.mean_writers,
                    to_ms(r.storage.contended_time),
                    to_ms(r.storage.total_stall),
                    r.storage.write_latency_mean * 1e3,
                ]
            });
        }
    }
    g
}

/// **E2 — checkpointing overhead.** "reduces the checkpointing overhead":
/// blocked application time (Koo–Toueg), forced pre-processing delay
/// (CIC), storage stall, and checkpoint-round latency, per algorithm.
pub fn e2_overhead(intervals: &[SimDuration], base: ExpParams) -> RunGrid {
    let mut g = RunGrid::new(
        "E2: checkpointing overhead components per algorithm",
        &["algo", "interval_ms"],
        &[
            ("rounds", Int),
            ("blocked_ms", F2),
            ("forced_ms", F2),
            ("stall_ms", F2),
            ("round_latency_ms", F2),
        ],
    );
    for &iv in intervals {
        for algo in Algo::comparison_set() {
            let p = ExpParams {
                ckpt_interval: iv,
                state_bytes: base.state_bytes.min(scaled_state_bytes(base.n, iv)),
                ..base
            };
            g.cell(&[algo.name().into(), ms_label(iv)], algo, p.config(), |r| {
                vec![
                    r.complete_rounds as f64,
                    to_ms(r.blocked_time),
                    to_ms(r.forced_delay),
                    to_ms(r.storage.total_stall),
                    r.ckpt_latency.mean() * 1e3,
                ]
            });
        }
    }
    g
}

/// **E3 / A1 — control-message cost.** "limited amount of control
/// messages are generated only when necessary": CK_BGN/CK_REQ/CK_END per
/// completed round as the application message rate varies, for the
/// optimized and naive control layers.
pub fn e3_control_messages(gaps: &[SimDuration], base: ExpParams) -> RunGrid {
    let mut g = RunGrid::new(
        "E3/A1: OCPT control messages per completed round vs app message rate",
        &["variant", "msg_gap_ms"],
        &[
            ("rounds", Int),
            ("bgn/rnd", F2),
            ("req/rnd", F2),
            ("end/rnd", F2),
            ("timer_exp/rnd", F2),
        ],
    );
    for &gap in gaps {
        for algo in [Algo::ocpt(), Algo::ocpt_naive()] {
            let p = ExpParams { msg_gap: gap, ..base };
            // Aligned initiation: all processes take the tentative
            // checkpoint concurrently, so convergence genuinely depends on
            // knowledge spreading — the regime the control layer exists
            // for (with staggered phases, the initiator is effectively a
            // coordinator and CK_BGN is never needed).
            let mut cfg = p.config();
            cfg.stagger_initiation = false;
            g.cell(&[algo.name().into(), ms_label(gap)], algo, cfg, |r| {
                let rounds = r.complete_rounds.max(1) as f64;
                vec![
                    r.complete_rounds as f64,
                    r.counters.get("ctrl.bgn_sent") as f64 / rounds,
                    r.counters.get("ctrl.req_sent") as f64 / rounds,
                    r.counters.get("ctrl.end_sent") as f64 / rounds,
                    r.counters.get("timer.expired") as f64 / rounds,
                ]
            });
        }
    }
    g
}

/// **E4 / A3 — convergence latency.** Theorem 1 made quantitative: time
/// from a round's first tentative checkpoint to its last finalization, as
/// the message rate and the convergence timeout vary.
pub fn e4_convergence(gaps: &[SimDuration], timeouts: &[SimDuration], base: ExpParams) -> RunGrid {
    let mut g = RunGrid::new(
        "E4/A3: convergence latency vs app rate and timer",
        &["msg_gap_ms", "timeout_ms"],
        &[("rounds", Int), ("latency_mean_ms", F2), ("latency_max_ms", F2), ("timer_exp/rnd", F2)],
    );
    for &gap in gaps {
        for &to in timeouts {
            let mut ocfg = ocpt_core::OcptConfig { convergence_timeout: to, ..Default::default() };
            ocfg.checkpoint_interval = base.ckpt_interval;
            let p = ExpParams { msg_gap: gap, ..base };
            g.cell(&[ms_label(gap), ms_label(to)], Algo::Ocpt(ocfg), p.config(), |r| {
                let rounds = r.complete_rounds.max(1) as f64;
                vec![
                    r.complete_rounds as f64,
                    r.ckpt_latency.mean() * 1e3,
                    r.ckpt_latency.max() * 1e3,
                    r.counters.get("timer.expired") as f64 / rounds,
                ]
            });
        }
    }
    g
}

/// **E5 — selective-logging cost.** Bytes and messages logged per
/// checkpoint vs an always-log-everything scheme (classic message
/// logging), plus the volatile staging footprint.
pub fn e5_logging(gaps: &[SimDuration], base: ExpParams) -> RunGrid {
    let mut g = RunGrid::new(
        "E5: selective message logging vs full logging",
        &["msg_gap_ms"],
        &[
            ("rounds", Int),
            ("logged_msgs/rnd", F2),
            ("logged_kb/rnd", F2),
            ("full_log_kb/rnd", F2),
            ("selective_share", F3),
            ("staging_peak_mb", F2),
        ],
    );
    for &gap in gaps {
        let p = ExpParams { msg_gap: gap, ..base };
        g.cell(&[ms_label(gap)], Algo::ocpt(), p.config(), |r| {
            let rounds = r.complete_rounds.max(1) as f64;
            let logged_bytes = r.counters.get("log.flushed_bytes") as f64;
            // Full logging would persist every message (payload + metadata),
            // counted on both the sender and receiver side, as OCPT does
            // within its windows.
            let meta = ocpt_core::log::ENTRY_META_BYTES as f64;
            let full = 2.0 * (r.app_payload_bytes as f64 + r.app_messages as f64 * meta);
            vec![
                r.complete_rounds as f64,
                r.counters.get("log.flushed_msgs") as f64 / rounds,
                logged_bytes / rounds / 1024.0,
                full / rounds / 1024.0,
                logged_bytes / full.max(1.0),
                r.staging_peak as f64 / (1024.0 * 1024.0),
            ]
        });
    }
    g
}

/// **E6 — piggyback overhead.** Measured piggyback bytes per application
/// message vs N (the adaptive encoding: sparse id-list / interval runs /
/// dense bitmap, whichever is smallest), against the dense-bitmap formula
/// `8 + 1 + ⌈N/8⌉` a fixed encoding would pay, and the share of total
/// traffic the piggyback represents.
pub fn e6_piggyback(ns: &[usize], base: ExpParams) -> RunGrid {
    let mut g = RunGrid::new(
        "E6: piggyback overhead vs N",
        &["n"],
        &[("piggy_B/msg", F2), ("dense_B/msg", F2), ("piggy_share_of_traffic", F3)],
    );
    for &n in ns {
        let p = ExpParams { n, ..base };
        g.cell(&[n.to_string()], Algo::ocpt(), p.config(), move |r| {
            let per_msg = r.piggyback_bytes as f64 / r.app_messages.max(1) as f64;
            let theory = ocpt_core::Piggyback::dense_wire_bytes_for(n) as f64;
            let share = r.piggyback_bytes as f64
                / (r.app_payload_bytes + r.piggyback_bytes + r.ctrl_bytes).max(1) as f64;
            vec![per_msg, theory, share]
        });
    }
    g
}

/// **E7 — recovery and the domino effect.** Crash one process mid-run;
/// compare work lost under OCPT's coordinated rollback to `S_k` against
/// uncoordinated checkpointing's rollback-propagation fixpoint. Also
/// verifies OCPT's restored states byte-for-byte (CT + log replay);
/// `restored_verified` is `-` for baselines that make no such promise.
pub fn e7_recovery(base: ExpParams, crash_ms: u64) -> RunGrid {
    let mut g = RunGrid::new(
        "E7: rollback after a crash (domino effect)",
        &["algo"],
        &[
            ("events_total", Int),
            ("events_lost", Int),
            ("procs_rolled_back", Int),
            ("to_initial", Int),
            ("cascade_rounds", Int),
            ("restored_verified", Int),
        ],
    );
    let victim = ProcessId((base.n / 2) as u32);
    let faults =
        FaultPlan::single(victim, SimTime::from_millis(crash_ms), SimDuration::from_millis(10));
    for algo in [Algo::ocpt(), Algo::Uncoordinated] {
        let mut cfg = base.config();
        cfg.faults = faults.clone();
        cfg.stop_on_crash = true;
        let coordinated = matches!(algo, Algo::Ocpt(_));
        g.cell(&[algo.name().into()], algo, cfg, move |r| {
            let obs = r.observer.as_ref().expect("observer required for E7");
            let total: u64 = obs.positions().iter().sum();
            let (report, verified) = if coordinated {
                let line = r.recovery_line;
                let v = verify_restored_states(r, line)
                    .unwrap_or_else(|e| panic!("restore verification failed: {e}"));
                (coordinated_rollback(obs, line), v as f64)
            } else {
                (domino_rollback(obs, victim), f64::NAN)
            };
            vec![
                total as f64,
                report.events_lost as f64,
                report.processes_rolled_back as f64,
                report.rolled_to_initial as f64,
                report.cascade_rounds as f64,
                verified,
            ]
        });
    }
    g
}

/// **E8 — message response time.** "no checkpoint needs to be taken
/// before processing any received message": forced pre-processing
/// checkpoints and the delay they add, OCPT vs CIC.
pub fn e8_response_time(gaps: &[SimDuration], base: ExpParams) -> RunGrid {
    let mut g = RunGrid::new(
        "E8: forced checkpoints before message processing (response-time penalty)",
        &["algo", "msg_gap_ms"],
        &[
            ("delivered", Int),
            ("forced_ckpts", Int),
            ("forced_delay_ms", F2),
            ("avg_penalty_us/msg", F2),
        ],
    );
    for &gap in gaps {
        for algo in [Algo::ocpt(), Algo::Cic] {
            let p = ExpParams { msg_gap: gap, ..base };
            g.cell(&[algo.name().into(), ms_label(gap)], algo, p.config(), |r| {
                let delivered = r.counters.get("app.delivered").max(1);
                vec![
                    delivered as f64,
                    r.counters.get("ckpt.forced_before_processing") as f64,
                    to_ms(r.forced_delay),
                    r.forced_delay.as_secs_f64() * 1e6 / delivered as f64,
                ]
            });
        }
    }
    g
}

/// **A2 — storage write placement ablation.** The paper's contention
/// claim hinges on *when* checkpoints are written, not when they are
/// decided: eager/immediate placements recreate synchronous clustering;
/// jittered and pid-phased placements de-cluster it for free. The price
/// is recovery-line lag, which the table reports alongside.
pub fn a2_flush_policy(base: ExpParams) -> RunGrid {
    use ocpt_core::{FlushPolicy, WritePolicy};
    let mut g = RunGrid::new(
        "A2: OCPT write-placement ablation (tentative flush × finalize write)",
        &["policy"],
        &[
            ("peak_writers", Int),
            ("contended_ms", F2),
            ("stall_ms", F2),
            ("round_latency_ms", F2),
            ("recovery_line", Int),
            ("rounds", Int),
            ("staging_peak_mb", F2),
        ],
    );
    let window = SimDuration::from_millis(400.min(base.ckpt_interval.as_nanos() / 2_000_000));
    let policies: [(&str, FlushPolicy, WritePolicy); 4] = [
        ("eager+immediate", FlushPolicy::Eager, WritePolicy::Immediate),
        ("lazy+immediate", FlushPolicy::Lazy, WritePolicy::Immediate),
        ("lazy+jittered", FlushPolicy::Lazy, WritePolicy::Jittered { window }),
        ("lazy+phased", FlushPolicy::Lazy, WritePolicy::Phased { window }),
    ];
    for (name, flush, write) in policies {
        let ocfg = ocpt_core::OcptConfig {
            flush_policy: flush,
            finalize_write: write,
            ..Default::default()
        };
        g.cell(&[name.into()], Algo::Ocpt(ocfg), base.config(), |r| {
            vec![
                r.storage.peak_writers as f64,
                to_ms(r.storage.contended_time),
                to_ms(r.storage.total_stall),
                r.ckpt_latency.mean() * 1e3,
                r.recovery_line as f64,
                r.complete_rounds as f64,
                r.staging_peak as f64 / (1024.0 * 1024.0),
            ]
        });
    }
    g
}

/// The three E10 fault patterns, shared by the grid builder and the
/// `exp_log` binary's direct per-cell runs (so `BENCH_log.json` measures
/// exactly the schedules the printed table shows): a **single** mid-run
/// crash of `P_{n/2}`, a **correlated** crash of three neighbours at the
/// same instant, and a crash **during-finalize** — just past the next
/// checkpoint-interval boundary, while the round's phased finalize writes
/// are still in flight and the durable line lags.
pub fn e10_fault_patterns(base: &ExpParams, crash_ms: u64) -> Vec<(&'static str, FaultPlan)> {
    let n = base.n;
    let down = SimDuration::from_millis(10);
    let victim = |k: usize| ProcessId(((n / 2 + k) % n) as u32);
    let single = FaultPlan::single(victim(0), SimTime::from_millis(crash_ms), down);
    // Three processes die at the same instant — a rack failure. The line
    // and the analysis are unchanged mechanics; what moves is how much of
    // the durable log the strategies can still use.
    let correlated = (0..3).fold(FaultPlan::none(), |p, k| {
        p.with(Fault { pid: victim(k), at: SimTime::from_millis(crash_ms), down_for: Some(down) })
    });
    let iv_ms = base.ckpt_interval.as_nanos() / 1_000_000;
    let boundary_ms = (crash_ms / iv_ms + 1) * iv_ms + iv_ms / 20;
    let during_finalize = FaultPlan::single(victim(0), SimTime::from_millis(boundary_ms), down);
    vec![("single", single), ("correlated", correlated), ("during-finalize", during_finalize)]
}

/// **E10 — logging-strategy × fault-pattern matrix.** The four
/// [`ocpt_core::LoggingKind`]s under three fault shapes: a single mid-run
/// crash, a correlated three-node crash (same instant), and a crash landed
/// just inside the finalize write window (when the new round's writes are
/// still in flight, so the durable line lags a full round). Per cell: the
/// durable log footprint at the recovery line and the modeled replay cost
/// — locally replayed events, peer fetches, orphaned determinants and
/// in-transit losses (see [`crate::analysis::log_recovery_report`]).
///
/// The expected shape: *selective* pays a small windowed log with zero
/// gaps; *sender* buys in-transit immunity with a continuous log;
/// *receiver* logs the most bytes yet is the only one that loses
/// in-transit messages; *causal* shrinks the window to determinants and
/// pays for it in fetch round-trips and (when a send predates the window)
/// orphans.
///
/// `only` restricts the grid to a single strategy (the `--strategy` flag
/// of `exp_log`); `None` runs the full matrix.
pub fn e10_log_matrix(base: ExpParams, crash_ms: u64, only: Option<LoggingKind>) -> RunGrid {
    let mut g = RunGrid::new(
        "E10: logging strategy × fault pattern (durable log bytes vs replay cost)",
        &["strategy", "fault"],
        &[
            ("line", Int),
            ("log_kb", F2),
            ("replay_ms", F3),
            ("replayed", Int),
            ("fetched", Int),
            ("orphans", Int),
            ("lost_in_transit", Int),
        ],
    );
    let patterns = e10_fault_patterns(&base, crash_ms);
    for kind in LoggingKind::ALL {
        if only.is_some_and(|o| o != kind) {
            continue;
        }
        for (fault_name, faults) in &patterns {
            let mut cfg = base.config();
            cfg.faults = faults.clone();
            cfg.stop_on_crash = true;
            g.cell(
                &[kind.name().into(), (*fault_name).into()],
                Algo::ocpt_logging(kind),
                cfg,
                |r| {
                    let rep = log_recovery_report(r)
                        .unwrap_or_else(|e| panic!("log recovery analysis failed: {e}"));
                    vec![
                        rep.line as f64,
                        rep.log_bytes as f64 / 1024.0,
                        rep.replay_time.as_secs_f64() * 1e3,
                        rep.replayed_local as f64,
                        rep.fetched as f64,
                        rep.orphans as f64,
                        rep.lost_in_transit as f64,
                    ]
                },
            );
        }
    }
    g
}

/// One cell of the **E9 scale sweep**: system size `n` with traffic,
/// horizon and state size scaled so a run stays within a few hundred
/// thousand simulator events at any N — the sweep measures *per-process
/// protocol cost*, not raw event throughput.
///
/// The omniscient consistency observer costs O(N²)-ish memory and is the
/// one component that cannot reach N = 100k; it stays on at the small
/// sizes (where it verifies every collected checkpoint) and off above
/// 1 000 — the protocol code paths are identical either way, and the
/// flat-vs-grouped differential tests cover the large-N topology.
pub fn scale_config(n: usize, seed: u64) -> RunConfig {
    let (gap_ms, dur_ms) = match n {
        0..=1_000 => (10, 1_500),
        1_001..=20_000 => (50, 800),
        _ => (400, 400),
    };
    let mut cfg = RunConfig::new(n, seed);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(gap_ms));
    cfg.checkpoint_interval = SimDuration::from_millis(200);
    cfg.workload_duration = SimDuration::from_millis(dur_ms);
    cfg.state_bytes = 1024;
    cfg.observe = n <= 1_000;
    cfg.sim = cfg.sim.with_horizon(SimDuration::from_secs(30));
    cfg
}

/// **E9 — protocol scaling.** Piggyback bytes per application message
/// under the adaptive tentSet encoding vs the dense `⌈N/8⌉` formula, and
/// control messages per collected round under the (Auto-selected)
/// topology: the flat ring up to 512 processes, `⌈√N⌉` groups beyond.
pub fn exp_scale(ns: &[usize], seed: u64) -> RunGrid {
    let mut g = RunGrid::new(
        "E9: scaling — adaptive piggyback + hierarchical control waves",
        &["n"],
        &[
            ("piggy_B/msg", F2),
            ("dense_B/msg", F2),
            ("savings_x", F2),
            ("ctrl/round", F2),
            ("rounds", Int),
        ],
    );
    for &n in ns {
        g.cell(&[n.to_string()], Algo::ocpt(), scale_config(n, seed), move |r| {
            let per_msg = r.piggyback_bytes as f64 / r.app_messages.max(1) as f64;
            let dense = ocpt_core::Piggyback::dense_wire_bytes_for(n) as f64;
            let rounds = r.complete_rounds.max(1) as f64;
            vec![
                per_msg,
                dense,
                dense / per_msg.max(1.0),
                r.ctrl_messages as f64 / rounds,
                r.complete_rounds as f64,
            ]
        });
    }
    g
}

/// Serial convenience used by tests and examples: run a grid with one
/// worker and one replicate.
pub fn run_serial(grid: &RunGrid) -> Table {
    grid.table(&GridOptions::serial())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpParams {
        ExpParams {
            n: 4,
            workload_ms: 800,
            msg_gap: SimDuration::from_millis(4),
            ckpt_interval: SimDuration::from_millis(250),
            state_bytes: 256 * 1024,
            ..Default::default()
        }
    }

    #[test]
    fn e1_produces_all_rows() {
        let t = run_serial(&e1_contention(&[4], quick()));
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn e3_rows_for_both_variants() {
        let t = run_serial(&e3_control_messages(&[SimDuration::from_millis(4)], quick()));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn e6_rows() {
        let t = run_serial(&e6_piggyback(&[4, 8], quick()));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn e7_rows() {
        let t = run_serial(&e7_recovery(quick(), 600));
        assert_eq!(t.len(), 2);
        // Uncoordinated makes no restore promise: its verified column is -.
        assert!(t.to_csv().lines().last().unwrap().ends_with(",-"));
    }

    #[test]
    fn a2_rows() {
        let t = run_serial(&a2_flush_policy(quick()));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn e2_rows() {
        let t = run_serial(&e2_overhead(&[SimDuration::from_millis(250)], quick()));
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn e4_rows() {
        let t = run_serial(&e4_convergence(
            &[SimDuration::from_millis(4)],
            &[SimDuration::from_millis(100), SimDuration::from_millis(300)],
            quick(),
        ));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn e5_rows() {
        let t = run_serial(&e5_logging(&[SimDuration::from_millis(4)], quick()));
        assert_eq!(t.len(), 1);
        assert!(t.to_csv().contains("selective_share"));
    }

    #[test]
    fn e10_covers_the_full_matrix() {
        let t = run_serial(&e10_log_matrix(quick(), 600, None));
        assert_eq!(t.len(), 4 * 3);
        let csv = t.to_csv();
        for s in ["selective", "sender", "receiver", "causal"] {
            assert!(csv.contains(s), "missing strategy {s}");
        }
        for f in ["single", "correlated", "during-finalize"] {
            assert!(csv.contains(f), "missing fault pattern {f}");
        }
    }

    #[test]
    fn e10_strategy_filter_restricts_rows() {
        let t = run_serial(&e10_log_matrix(quick(), 600, Some(LoggingKind::SenderBased)));
        assert_eq!(t.len(), 3);
        assert!(!t.to_csv().contains("receiver"));
    }

    #[test]
    fn e8_rows() {
        let t = run_serial(&e8_response_time(&[SimDuration::from_millis(4)], quick()));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn scaled_state_keeps_utilisation_constant() {
        let iv = SimDuration::from_secs(1);
        for n in [4usize, 8, 32, 128] {
            let s = scaled_state_bytes(n, iv);
            let rho = n as f64 * s as f64 / (iv.as_secs_f64() * 50.0 * 1024.0 * 1024.0);
            assert!((rho - 0.25).abs() < 0.01, "n={n}: rho={rho}");
        }
    }

    /// The acceptance property for the whole engine: an experiment grid
    /// renders byte-identically under 1 worker and many.
    #[test]
    fn e1_parallel_matches_serial_byte_for_byte() {
        let g = e1_contention(&[4], quick());
        let serial = g.run(&GridOptions { jobs: 1, replicates: 1 });
        let parallel = g.run(&GridOptions { jobs: 8, replicates: 1 });
        assert_eq!(serial.table.render(), parallel.table.render());
        assert_eq!(serial.table.to_csv(), parallel.table.to_csv());
    }
}
