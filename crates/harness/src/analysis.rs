//! Offline recovery analysis: rollback lines, the domino effect, and
//! restored-state verification.
//!
//! Given a completed run (its observer record and durable checkpoint
//! store), this module answers the recovery questions of experiment E7:
//!
//! * **Coordinated rollback** (OCPT and friends): everyone rolls back to
//!   the durable recovery line `S_k`; work lost is the sum of events past
//!   each process's cut.
//! * **Uncoordinated rollback**: the failed process rolls back to its
//!   latest checkpoint, and the classic rollback-propagation fixpoint runs:
//!   any message sent after a sender's rollback point but received before
//!   the receiver's forces the receiver further back — possibly cascading
//!   (the *domino effect*, paper §1) all the way to the initial states.
//! * **Restored-state verification**: for OCPT, decode `CT + logSet` from
//!   the durable blobs, replay, and compare against the ground-truth state
//!   the driver captured at the finalization cut.

use ocpt_causality::GlobalObserver;
use ocpt_core::{plan_recovery, EntryKind, MessageLog, ReplayPlan};
use ocpt_sim::{ProcessId, SimDuration};

use crate::runner::RunResult;

/// Outcome of a rollback computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RollbackReport {
    /// Final rollback position (local event index) per process.
    pub positions: Vec<u64>,
    /// Events executed beyond the rollback line, summed over processes —
    /// the work lost to the failure.
    pub events_lost: u64,
    /// Processes that had to roll back at all.
    pub processes_rolled_back: usize,
    /// Processes that fell all the way back to their initial state.
    pub rolled_to_initial: usize,
    /// Fixpoint iterations (1 = no cascade; each extra iteration is one
    /// wave of domino propagation).
    pub cascade_rounds: u32,
}

/// Coordinated rollback to the global checkpoint `S_k`: every process
/// resumes from its recorded cut position. Panics if some process lacks a
/// cut for `k` (use the durable recovery line).
pub fn coordinated_rollback(obs: &GlobalObserver, k: u64) -> RollbackReport {
    let n = obs.n();
    let current = obs.positions();
    let mut positions = Vec::with_capacity(n);
    for pid in ProcessId::all(n) {
        let pos = obs
            .checkpoints_of(pid)
            .iter()
            .find(|(csn, _)| *csn == k)
            .map(|(_, pos)| *pos)
            .unwrap_or(0);
        positions.push(pos);
    }
    summarize(&current, positions, 1)
}

/// Uncoordinated rollback after `failed` crashes: latest checkpoint for the
/// failed process, then the rollback-propagation fixpoint.
pub fn domino_rollback(obs: &GlobalObserver, failed: ProcessId) -> RollbackReport {
    let n = obs.n();
    let current = obs.positions();
    // Candidate rollback points per process: initial state plus every
    // recorded checkpoint position.
    let candidates: Vec<Vec<u64>> = ProcessId::all(n)
        .map(|pid| {
            let mut v: Vec<u64> = std::iter::once(0)
                .chain(obs.checkpoints_of(pid).into_iter().map(|(_, pos)| pos))
                .collect();
            v.sort();
            v.dedup();
            v
        })
        .collect();
    let mut positions = current.clone();
    // The failed process loses its volatile state: back to its latest
    // durable checkpoint.
    positions[failed.index()] = *candidates[failed.index()].last().unwrap_or(&0);

    let msgs = obs.messages();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let mut changed = false;
        for (_, send, recv) in &msgs {
            let Some(recv) = recv else { continue };
            // Orphan w.r.t. the current line: received inside, sent outside.
            if recv.idx < positions[recv.pid.index()] && send.idx >= positions[send.pid.index()] {
                // Receiver must roll back to its latest candidate ≤ recv.idx
                // (cutting the receive out).
                let cand = candidates[recv.pid.index()]
                    .iter()
                    .rev()
                    .find(|&&c| c <= recv.idx)
                    .copied()
                    .unwrap_or(0);
                debug_assert!(cand < positions[recv.pid.index()]);
                positions[recv.pid.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        assert!(rounds < 10_000, "domino fixpoint failed to converge");
    }
    summarize(&current, positions, rounds)
}

fn summarize(current: &[u64], positions: Vec<u64>, cascade_rounds: u32) -> RollbackReport {
    let events_lost = current.iter().zip(&positions).map(|(c, p)| c - p).sum();
    let processes_rolled_back = current.iter().zip(&positions).filter(|(c, p)| c > p).count();
    let rolled_to_initial =
        current.iter().zip(&positions).filter(|(c, p)| **p == 0 && **c > 0).count();
    RollbackReport {
        positions,
        events_lost,
        processes_rolled_back,
        rolled_to_initial,
        cascade_rounds,
    }
}

/// Verify that every durable OCPT checkpoint on the recovery line restores
/// exactly the state the process had at its finalization cut: decode the
/// blobs, replay the log, compare digests. Returns the number of processes
/// verified.
pub fn verify_restored_states(result: &RunResult, k: u64) -> Result<usize, String> {
    if k == 0 {
        return Ok(0);
    }
    let mut verified = 0;
    for pid in ProcessId::all(result.n) {
        let ckpt =
            result.store.get(pid, k).ok_or_else(|| format!("{pid}: no durable checkpoint {k}"))?;
        let plan = plan_recovery(k, ckpt.state.clone(), ckpt.log.clone())
            .map_err(|e| format!("{pid}: {e}"))?;
        let expected = result
            .cut_states
            .get(&(pid.0, k))
            .ok_or_else(|| format!("{pid}: no ground-truth cut state for {k}"))?;
        if plan.restored != *expected {
            return Err(format!(
                "{pid}: restored state {:?} != ground truth {:?} at S_{k}",
                plan.restored, expected
            ));
        }
        verified += 1;
    }
    Ok(verified)
}

/// Modeled cost of a log-driven recovery from the durable line — the
/// numbers E10 tabulates per logging strategy.
///
/// Replay time uses a simple analytic model (recovery runs in parallel, so
/// the slowest process bounds it): reading the durable log at
/// [`REPLAY_READ_BPS`], [`REPLAY_EVENT_OVERHEAD`] of CPU per replayed
/// event, and one [`FETCH_RTT`] round-trip per determinant whose payload
/// must come from a peer's durable log. Orphaned determinants (no peer
/// holds the payload) and lost in-transit messages are counted, not
/// charged — they are correctness gaps, not time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecoveryReport {
    /// The durable recovery line the report is about.
    pub line: u64,
    /// Durable log bytes across all processes at the line (exact
    /// [`MessageLog::encode`] framing).
    pub log_bytes: u64,
    /// Received events replayable from local payload bytes.
    pub replayed_local: u64,
    /// Received determinants whose payload exists in some peer's durable
    /// log (replayable after one fetch round-trip each).
    pub fetched: u64,
    /// Received determinants with **no** durable payload anywhere — the
    /// replay gap a determinant-only window leaves when the matching send
    /// predates the sender's log window.
    pub orphans: u64,
    /// Observer-judged in-transit messages whose sender log cannot
    /// regenerate them (no payload entry) — lost on recovery.
    pub lost_in_transit: u64,
    /// Modeled wall-clock replay time (max over processes).
    pub replay_time: SimDuration,
}

/// CPU cost to re-apply one logged event during replay.
pub const REPLAY_EVENT_OVERHEAD: SimDuration = SimDuration::from_micros(5);
/// One round-trip to fetch a determinant's payload from a peer.
pub const FETCH_RTT: SimDuration = SimDuration::from_micros(200);
/// Sequential read bandwidth for the durable log, bytes/second.
pub const REPLAY_READ_BPS: f64 = 1.0e9;

/// Analyze recovery from `result`'s durable line under whatever logging
/// strategy produced the logs. Requires the observer (for the in-transit
/// judgement); returns an all-zero report when the line is 0.
pub fn log_recovery_report(result: &RunResult) -> Result<LogRecoveryReport, String> {
    let line = result.recovery_line;
    let mut report = LogRecoveryReport {
        line,
        log_bytes: 0,
        replayed_local: 0,
        fetched: 0,
        orphans: 0,
        lost_in_transit: 0,
        replay_time: SimDuration::ZERO,
    };
    if line == 0 {
        return Ok(report);
    }
    let obs = result.observer.as_ref().ok_or("log recovery analysis needs the observer")?;
    let cut = obs.judge(line).ok_or("recovery line not judged")?;

    // Decode every process's durable log at the line, and index which
    // sends have durable payload bytes anywhere at csn ≤ line — the fetch
    // targets for determinant replay and the re-send sources for
    // in-transit messages.
    let mut logs = Vec::with_capacity(result.n);
    let mut durable_sent_payloads = std::collections::BTreeSet::new();
    for pid in ProcessId::all(result.n) {
        for csn in 1..=line {
            let Some(ckpt) = result.store.get(pid, csn) else { continue };
            if ckpt.log.is_empty() {
                continue;
            }
            let log = MessageLog::decode(ckpt.log.clone()).ok_or("corrupt durable log")?;
            for e in log.sent().filter(|e| e.kind == EntryKind::Payload) {
                durable_sent_payloads.insert(e.msg_id.0);
            }
            if csn == line {
                report.log_bytes += log.encoded_len();
                logs.push(log);
                continue;
            }
        }
        if logs.len() < pid.index() + 1 {
            logs.push(MessageLog::new());
        }
    }

    for log in &logs {
        let plan = ReplayPlan::for_log(log);
        let mut fetches = 0u64;
        for e in &plan.fetch {
            if durable_sent_payloads.contains(&e.msg_id.0) {
                fetches += 1;
            } else {
                report.orphans += 1;
            }
        }
        let local = plan.replay.len() as u64 - plan.fetch.len() as u64;
        report.replayed_local += local;
        report.fetched += fetches;
        let secs = log.encoded_len() as f64 / REPLAY_READ_BPS
            + plan.replay.len() as f64 * REPLAY_EVENT_OVERHEAD.as_secs_f64()
            + fetches as f64 * FETCH_RTT.as_secs_f64();
        report.replay_time = report.replay_time.max(SimDuration::from_secs_f64(secs));
    }

    for t in &cut.in_transit {
        if !durable_sent_payloads.contains(&t.msg.0) {
            report.lost_in_transit += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocpt_sim::{MsgId, SimTime};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    /// Hand-built scenario: P0 checkpoints, then sends M to P1; P1
    /// receives M, then checkpoints. P1 fails. Its rollback (to its
    /// checkpoint, which contains the receive) orphans nothing... but P0
    /// failing after sending forces P1 below its checkpoint — domino.
    #[test]
    fn domino_cascade_detected() {
        let mut o = GlobalObserver::new(2);
        // P0: ckpt A at pos 0, then send M1.
        o.on_finalize(p(0), 1, 0, SimTime::ZERO);
        o.on_send(p(0), MsgId(1));
        // P1: recv M1 (pos 0), then ckpt B at pos 1, then one more event.
        o.on_recv(p(1), MsgId(1));
        o.on_finalize(p(1), 1, 1, SimTime::ZERO);
        o.on_send(p(1), MsgId(2));

        // P0 fails: rolls to pos 0 (its ckpt). M1 becomes orphan for P1
        // (received at 0 < 1, sent at 0 >= 0): P1 must fall below the
        // receive — to its initial state, losing both its events.
        let r = domino_rollback(&o, p(0));
        assert_eq!(r.positions, vec![0, 0]);
        assert_eq!(r.processes_rolled_back, 2);
        assert_eq!(r.rolled_to_initial, 2);
        assert!(r.cascade_rounds >= 2);
        assert_eq!(r.events_lost, 1 + 2);
    }

    #[test]
    fn no_cascade_when_line_consistent() {
        let mut o = GlobalObserver::new(2);
        o.on_send(p(0), MsgId(1));
        o.on_recv(p(1), MsgId(1));
        // Both checkpoint after the exchange: consistent.
        o.on_finalize(p(0), 1, 1, SimTime::ZERO);
        o.on_finalize(p(1), 1, 1, SimTime::ZERO);
        // More work afterwards.
        o.on_send(p(0), MsgId(2));
        o.on_recv(p(1), MsgId(2));

        let r = domino_rollback(&o, p(1));
        // P1 rolls to its checkpoint (pos 1); M2 was sent by P0 at pos 1
        // (>= its line? P0 keeps pos 2) — M2 received at pos 1 < ... wait:
        // P1's line is 1, receive of M2 is at idx 1, not < 1 → no orphan.
        assert_eq!(r.positions[1], 1);
        assert_eq!(r.positions[0], 2, "sender unaffected");
        assert_eq!(r.cascade_rounds, 1);
    }

    #[test]
    fn coordinated_rollback_counts_lost_events() {
        let mut o = GlobalObserver::new(2);
        o.on_send(p(0), MsgId(1));
        o.on_recv(p(1), MsgId(1));
        o.on_finalize(p(0), 1, 1, SimTime::ZERO);
        o.on_finalize(p(1), 1, 1, SimTime::ZERO);
        o.on_send(p(0), MsgId(2));
        o.on_send(p(0), MsgId(3));
        let r = coordinated_rollback(&o, 1);
        assert_eq!(r.positions, vec![1, 1]);
        assert_eq!(r.events_lost, 2);
        assert_eq!(r.processes_rolled_back, 1);
        assert_eq!(r.cascade_rounds, 1);
    }
}
