//! The simulation driver: runs any [`CheckpointProtocol`] over the
//! deterministic DES kernel, the stable-storage model and a workload,
//! collecting every metric the experiments report.
//!
//! One `Runner` = one run = one (algorithm, workload, seed) triple. The
//! driver owns everything the protocol must not see: the virtual clock,
//! the network, application state, the storage server and the omniscient
//! consistency observer.

use std::collections::{BTreeMap, HashMap};

use ocpt_baselines::api::{wire_cost, CheckpointProtocol, ProtoAction};
use ocpt_causality::GlobalObserver;
use ocpt_core::AppSnapshot;
use ocpt_metrics::{Counters, Summary};
use ocpt_sim::{
    Event, FaultPlan, MsgId, Network, ProcessId, Scheduler, SchedulerKind, SimConfig, SimDuration,
    SimRng, SimTime, StorageReqId, TimerId, Trace, TraceKind,
};
use ocpt_storage::{CheckpointStore, StorageConfig, StorageServer, StoredCheckpoint};

use crate::workload::{WorkloadSpec, WorkloadState};

/// Tick discriminators.
const TICK_SEND: u64 = 1;
const TICK_CKPT: u64 = 2;

/// Simulated memory bandwidth for state capture (bytes/sec); used to charge
/// the latency of taking a snapshot (and of CIC's forced checkpoints before
/// message processing).
const CAPTURE_BW_BPS: f64 = 4.0e9;

/// Configuration of one run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// System size, seed, delays, FIFO-ness, horizon.
    pub sim: SimConfig,
    /// Application traffic.
    pub workload: WorkloadSpec,
    /// Period of driver-triggered checkpoint initiations;
    /// `SimDuration::MAX` disables checkpointing entirely.
    pub checkpoint_interval: SimDuration,
    /// Offset each process's initiation phase by `i/n` of the interval
    /// (used for uncoordinated checkpointing; coordinated algorithms
    /// ignore non-coordinator ticks anyway).
    pub stagger_initiation: bool,
    /// Stable-storage server parameters.
    pub storage: StorageConfig,
    /// Declared size of a process state image.
    pub state_bytes: u64,
    /// Workload generation stops at this virtual time; the run then
    /// quiesces (protocol timers and control traffic may continue).
    pub workload_duration: SimDuration,
    /// Injected failures.
    pub faults: FaultPlan,
    /// Stop the run at the first crash (recovery analysed offline).
    pub stop_on_crash: bool,
    /// Garbage-collect durable checkpoints older than the recovery line
    /// (the paper: "all checkpoints taken before the latest committed
    /// global checkpoint can be deleted to save space"). Off by default so
    /// post-run analysis can inspect the full history.
    pub gc_old_checkpoints: bool,
    /// Record a trace (event-by-event; for tests and examples).
    pub trace: bool,
    /// Feed the consistency observer (costs memory proportional to the
    /// message count; on for tests, off for the largest benches).
    pub observe: bool,
    /// Which event-queue implementation drives the run (the timing wheel
    /// by default; the reference heap exists for differential testing —
    /// both produce byte-identical runs).
    pub scheduler: SchedulerKind,
}

impl RunConfig {
    /// A reasonable default run: given size and seed, uniform-mesh
    /// workload, 1 s checkpoint interval, 5 s of workload.
    pub fn new(n: usize, seed: u64) -> Self {
        RunConfig {
            sim: SimConfig::new(n, seed).with_horizon(SimDuration::from_secs(60)),
            workload: WorkloadSpec::uniform_mesh(SimDuration::from_millis(5)),
            checkpoint_interval: SimDuration::from_secs(1),
            // Decentralized algorithms have no synchronized clocks, so the
            // realistic default offsets each process's initiation phase by
            // i/n of the interval. Coordinator-based algorithms only act on
            // the coordinator's tick (phase 0), so this is harmless there.
            stagger_initiation: true,
            storage: StorageConfig::default_nfs(),
            state_bytes: 4 * 1024 * 1024,
            workload_duration: SimDuration::from_secs(5),
            faults: FaultPlan::none(),
            stop_on_crash: true,
            gc_old_checkpoints: false,
            trace: false,
            observe: true,
            scheduler: SchedulerKind::default(),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WriteKind {
    State,
    Extra,
}

/// Run-loop control flow returned by event dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flow {
    Continue,
    Break,
}

#[derive(Debug)]
struct PendingWrite {
    pid: ProcessId,
    seq: u64,
    kind: WriteKind,
    blob: bytes::Bytes,
    bytes: u64,
}

#[derive(Debug, Default)]
struct CkptProgress {
    snapshot: Option<AppSnapshot>,
    state_issued: bool,
    state_durable: bool,
    extra_issued: bool,
    extra_durable: bool,
    completed: bool,
    durable_recorded: bool,
    storage_done_notified: bool,
    state_blob: Option<bytes::Bytes>,
    log_blob: Option<bytes::Bytes>,
}

impl CkptProgress {
    fn writes_durable(&self) -> bool {
        (!self.state_issued || self.state_durable) && (!self.extra_issued || self.extra_durable)
    }
    fn fully_durable(&self) -> bool {
        self.completed && self.state_issued && self.writes_durable()
    }
}

/// Storage-side results of a run.
#[derive(Clone, Copy, Debug)]
pub struct StorageReport {
    /// Peak concurrent writers at the stable storage — the paper's
    /// headline contention number.
    pub peak_writers: i64,
    /// Time-weighted mean concurrent writers.
    pub mean_writers: f64,
    /// Total time ≥ 2 writers were active.
    pub contended_time: SimDuration,
    /// Sum over writes of (actual − contention-free) latency.
    pub total_stall: SimDuration,
    /// Mean write latency in seconds.
    pub write_latency_mean: f64,
    /// Max write latency in seconds.
    pub write_latency_max: f64,
    /// Total bytes written.
    pub total_bytes: u64,
    /// Total write requests.
    pub total_requests: u64,
}

/// Per-round completion statistics, one entry per checkpoint round the
/// run observed (surviving recovery rollback: rounds discarded by a
/// rollback past them are dropped with the rest of their bookkeeping).
/// The observatory's health reports build their round-latency
/// percentiles from these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundStat {
    /// Checkpoint round (CSN).
    pub seq: u64,
    /// Virtual time of the first tentative snapshot of the round.
    pub first_snapshot_ns: u64,
    /// Virtual time of the last per-process completion seen.
    pub last_complete_ns: u64,
    /// Processes that completed the round (== n when globally complete).
    pub completes: usize,
}

impl RoundStat {
    /// First snapshot → last completion, nanoseconds (0 when the clocks
    /// are inconsistent, which a correct run never produces).
    pub fn latency_ns(&self) -> u64 {
        self.last_complete_ns.saturating_sub(self.first_snapshot_ns)
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunResult {
    /// Algorithm name.
    pub algo: &'static str,
    /// Number of processes.
    pub n: usize,
    /// The seed the run was driven by (trace/metrics provenance).
    pub seed: u64,
    /// The event-queue implementation that drove the run.
    pub scheduler: SchedulerKind,
    /// Driver counters merged with per-process protocol counters.
    pub counters: Counters,
    /// Application messages sent.
    pub app_messages: u64,
    /// Application payload bytes sent.
    pub app_payload_bytes: u64,
    /// Bytes added to application messages by piggybacks.
    pub piggyback_bytes: u64,
    /// Protocol (control) messages sent.
    pub ctrl_messages: u64,
    /// Bytes of control traffic.
    pub ctrl_bytes: u64,
    /// Virtual time when the run quiesced.
    pub makespan: SimTime,
    /// Total time application sends were blocked by the protocol.
    pub blocked_time: SimDuration,
    /// Total pre-processing delay from forced checkpoints.
    pub forced_delay: SimDuration,
    /// Checkpoint completion latency (first snapshot of round → last
    /// completion of round), seconds, over complete rounds.
    pub ckpt_latency: Summary,
    /// Per-round completion statistics, ascending by `seq` (the raw
    /// material `ckpt_latency` summarizes, kept per round for the
    /// observatory's percentile reports).
    pub round_stats: Vec<RoundStat>,
    /// Rounds completed by every process.
    pub complete_rounds: u64,
    /// Greatest sequence number durable on all processes.
    pub recovery_line: u64,
    /// Peak bytes staged in volatile memory.
    pub staging_peak: u64,
    /// Storage metrics.
    pub storage: StorageReport,
    /// The consistency oracle (when `observe` was on).
    pub observer: Option<GlobalObserver>,
    /// Durable checkpoint store (blobs for recovery analysis).
    pub store: CheckpointStore,
    /// Final application state per process.
    pub app_final: Vec<AppSnapshot>,
    /// Ground-truth application state at each checkpoint's cut,
    /// keyed by `(pid, seq)` — what a correct recovery must restore.
    /// Ordered map: consumers may iterate it straight into reports.
    pub cut_states: BTreeMap<(u32, u64), AppSnapshot>,
    /// Live protocol instances' snapshot of checkpoint counts etc. is in
    /// `counters`; the trace is here when enabled.
    pub trace: Trace,
    /// First crash, if any was injected.
    pub crash: Option<(ProcessId, SimTime)>,
    /// Fatal protocol error (impossible paper sub-case reached) — tests
    /// assert this is `None`.
    pub protocol_error: Option<String>,
    /// Simulator events dispatched over the whole run.
    pub sim_events: u64,
    /// Peak in-flight event population (high-water mark of the
    /// scheduler's pending count). Kind-independent: both scheduler
    /// implementations observe the same pending count at every step.
    pub peak_pending: u64,
    /// High-water mark of the timing wheel's payload-arena occupancy —
    /// peak physical slots, including tombstoned corpses awaiting lazy
    /// reclamation. Implementation telemetry: 0 under the reference
    /// heap, and `>= peak_pending` under the wheel.
    pub arena_hwm: u64,
    /// Events scheduled into the past and clamped to `now` (release-build
    /// timing-model bug detector; always 0 in debug builds, which panic).
    pub clamped_events: u64,
    /// In-flight message deliveries discarded because their destination
    /// crashed (fail-stop) before they arrived.
    pub messages_lost_at_crash: u64,
    /// Wall-clock seconds the run took (self-measurement, not sim time).
    pub wall_secs: f64,
}

impl RunResult {
    /// Simulator throughput: events dispatched per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.sim_events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Serialize the recorded trace as versioned `ocpt-trace` JSONL
    /// (DESIGN.md §8). With tracing disabled this is a header declaring
    /// zero events. Byte-deterministic: a pure function of
    /// `(config, seed)`, regardless of `--jobs` or [`SchedulerKind`].
    pub fn trace_jsonl(&self) -> String {
        let meta =
            ocpt_telemetry::TraceMeta { algo: self.algo.to_string(), n: self.n, seed: self.seed };
        ocpt_telemetry::to_jsonl(&meta, self.trace.events())
    }

    /// The run's metrics snapshot as one deterministic JSON object:
    /// headline numbers, the storage report, checkpoint-latency summary
    /// and every counter. Wall-clock self-measurements (`wall_secs`,
    /// events/sec) are deliberately excluded so the snapshot, like the
    /// trace, is a pure function of `(config, seed)` — except the
    /// `scheduler` stamp and `arena_hwm`, which identify (and are
    /// telemetry of) the event-queue implementation that drove the run.
    pub fn metrics_json(&self) -> String {
        use ocpt_telemetry::json::Obj;
        let mut counters = Obj::new();
        for (k, v) in self.counters.iter() {
            counters = counters.u64(k, v);
        }
        let latency = Obj::new()
            .u64("count", self.ckpt_latency.count())
            .f64("mean_s", self.ckpt_latency.mean())
            .f64("min_s", self.ckpt_latency.min())
            .f64("max_s", self.ckpt_latency.max())
            .f64("stddev_s", self.ckpt_latency.stddev())
            .finish();
        let storage = Obj::new()
            .u64("peak_writers", self.storage.peak_writers.max(0) as u64)
            .f64("mean_writers", self.storage.mean_writers)
            .f64("contended_s", self.storage.contended_time.as_secs_f64())
            .f64("total_stall_s", self.storage.total_stall.as_secs_f64())
            .f64("write_latency_mean_s", self.storage.write_latency_mean)
            .f64("write_latency_max_s", self.storage.write_latency_max)
            .u64("total_bytes", self.storage.total_bytes)
            .u64("total_requests", self.storage.total_requests)
            .finish();
        Obj::new()
            .str("schema", "ocpt-metrics")
            .u64("version", 2)
            .str("algo", self.algo)
            .u64("n", self.n as u64)
            .u64("seed", self.seed)
            .str("scheduler", self.scheduler.name())
            .u64("makespan_ns", self.makespan.as_nanos())
            .u64("app_messages", self.app_messages)
            .u64("app_payload_bytes", self.app_payload_bytes)
            .u64("piggyback_bytes", self.piggyback_bytes)
            .u64("ctrl_messages", self.ctrl_messages)
            .u64("ctrl_bytes", self.ctrl_bytes)
            .f64("blocked_s", self.blocked_time.as_secs_f64())
            .f64("forced_delay_s", self.forced_delay.as_secs_f64())
            .u64("complete_rounds", self.complete_rounds)
            .u64("recovery_line", self.recovery_line)
            .u64("staging_peak", self.staging_peak)
            .u64("sim_events", self.sim_events)
            .u64("peak_pending", self.peak_pending)
            .u64("arena_hwm", self.arena_hwm)
            .raw("ckpt_latency", &latency)
            .raw("storage", &storage)
            .raw("counters", &counters.finish())
            .finish()
            + "\n"
    }

    /// Check every complete global checkpoint for consistency against both
    /// oracles. Returns the number of checkpoints verified.
    pub fn verify_consistency(&self) -> Result<u64, String> {
        let obs = self.observer.as_ref().ok_or("run had observe=false")?;
        let mut checked = 0;
        for csn in obs.complete_csns() {
            let report = obs.judge(csn).expect("complete csn must judge");
            if !report.is_consistent() {
                return Err(format!(
                    "S_{csn} inconsistent: {} orphan(s), e.g. {:?}",
                    report.orphans.len(),
                    report.orphans.first()
                ));
            }
            if obs.vclock_consistent(csn) != Some(true) {
                return Err(format!("S_{csn}: vclock oracle disagrees"));
            }
            checked += 1;
        }
        Ok(checked)
    }
}

/// The driver.
pub struct Runner<P: CheckpointProtocol> {
    cfg: RunConfig,
    procs: Vec<P>,
    app: Vec<AppSnapshot>,
    /// App state before each process's most recent event (for cuts that
    /// step one event back).
    prev_app: Vec<AppSnapshot>,
    /// App state at each checkpoint's consistency cut — the ground truth
    /// the recovery tests compare restored states against.
    cut_states: BTreeMap<(u32, u64), AppSnapshot>,
    crashed: Vec<bool>,
    sched: Scheduler<P::Env>,
    net: Network,
    server: StorageServer,
    store: CheckpointStore,
    observer: Option<GlobalObserver>,
    trace: Trace,
    wl: Vec<WorkloadState>,
    wl_rng: Vec<SimRng>,
    next_msg: u64,
    next_req: u64,
    timers: Vec<HashMap<u64, TimerId>>,
    pending_writes: HashMap<StorageReqId, PendingWrite>,
    /// Each process writes over one connection: at most one of its
    /// requests is at the server; the rest wait here in FIFO order.
    write_queue: Vec<std::collections::VecDeque<PendingWrite>>,
    write_busy: Vec<bool>,
    /// Per-checkpoint write progress. Iterated (`retain`) during recovery
    /// rollback, so ordered — `timers`/`pending_writes` above stay hashed
    /// because they are only ever point-accessed by key.
    progress: BTreeMap<(u32, u64), CkptProgress>,
    counters: Counters,
    blocked_since: Vec<Option<SimTime>>,
    blocked_time: SimDuration,
    forced_delay: SimDuration,
    /// Round-latency bookkeeping. `complete_count` is *iterated* in
    /// `finish` and `ckpt_latency` folds floats in that order, so these
    /// must be ordered maps for byte-identical reports.
    first_snapshot_at: BTreeMap<u64, SimTime>,
    last_complete_at: BTreeMap<u64, SimTime>,
    complete_count: BTreeMap<u64, usize>,
    staged_now: u64,
    staging_peak: u64,
    app_payload_bytes: u64,
    piggyback_bytes: u64,
    ctrl_messages: u64,
    ctrl_bytes: u64,
    crash: Option<(ProcessId, SimTime)>,
    protocol_error: Option<String>,
    algo: &'static str,
    /// Reusable action buffer: every protocol callback fills it and
    /// `execute` drains it, so the dispatch loop allocates nothing at
    /// steady state (callbacks never nest — actions only schedule).
    scratch: Vec<ProtoAction<P::Env>>,
}

impl<P: CheckpointProtocol> Runner<P> {
    /// Build a runner; `make` constructs the protocol instance per process.
    pub fn new(cfg: RunConfig, make: impl Fn(ProcessId, usize, u64) -> P) -> Self {
        cfg.sim.validate().expect("invalid sim config");
        cfg.faults.validate(cfg.sim.n).expect("invalid fault plan");
        let n = cfg.sim.n;
        let seed = cfg.sim.seed;
        let procs: Vec<P> = ProcessId::all(n).map(|p| make(p, n, seed)).collect();
        let fifo_needed = procs.iter().any(|p| p.needs_fifo());
        let fifo = cfg.sim.fifo || fifo_needed;
        let algo = procs[0].name();
        Runner {
            app: ProcessId::all(n)
                .map(|p| AppSnapshot::initial(p.0 as u64, cfg.state_bytes))
                .collect(),
            prev_app: ProcessId::all(n)
                .map(|p| AppSnapshot::initial(p.0 as u64, cfg.state_bytes))
                .collect(),
            cut_states: BTreeMap::new(),
            crashed: vec![false; n],
            sched: Scheduler::with_kind(cfg.scheduler),
            net: Network::new(n, cfg.sim.delay, fifo, seed),
            server: StorageServer::new(cfg.storage),
            store: CheckpointStore::new(n),
            observer: cfg.observe.then(|| GlobalObserver::new(n)),
            trace: if cfg.trace { Trace::enabled() } else { Trace::disabled() },
            wl: (0..n).map(|_| WorkloadState::new(cfg.workload)).collect(),
            wl_rng: (0..n).map(|i| SimRng::derive(seed, 0x574C ^ (i as u64) << 8)).collect(),
            next_msg: 0,
            next_req: 0,
            timers: vec![HashMap::new(); n],
            pending_writes: HashMap::new(),
            write_queue: (0..n).map(|_| std::collections::VecDeque::new()).collect(),
            write_busy: vec![false; n],
            progress: BTreeMap::new(),
            counters: Counters::new(),
            blocked_since: vec![None; n],
            blocked_time: SimDuration::ZERO,
            forced_delay: SimDuration::ZERO,
            first_snapshot_at: BTreeMap::new(),
            last_complete_at: BTreeMap::new(),
            complete_count: BTreeMap::new(),
            staged_now: 0,
            staging_peak: 0,
            app_payload_bytes: 0,
            piggyback_bytes: 0,
            ctrl_messages: 0,
            ctrl_bytes: 0,
            crash: None,
            protocol_error: None,
            procs,
            cfg,
            algo,
            scratch: Vec::new(),
        }
    }

    fn capture_delay(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.cfg.state_bytes as f64 / CAPTURE_BW_BPS)
    }

    /// Execute the whole run.
    pub fn run(mut self) -> RunResult {
        // simlint: allow(wall-clock, "wall-clock self-measurement of the runner; never feeds simulation state")
        let wall_start = std::time::Instant::now();
        let n = self.cfg.sim.n;
        // Faults.
        for f in self.cfg.faults.faults() {
            self.sched.schedule_at(f.at, Event::Crash { pid: f.pid });
            if let Some(d) = f.down_for {
                self.sched.schedule_at(f.at + d, Event::Recover { pid: f.pid });
            }
        }
        // First workload sends.
        for pid in ProcessId::all(n) {
            let gap = self.wl[pid.index()].next_gap(&mut self.wl_rng[pid.index()]);
            self.sched.schedule_after(gap, Event::Tick { pid, kind: TICK_SEND });
        }
        // Checkpoint initiations.
        if self.cfg.checkpoint_interval != SimDuration::MAX {
            for pid in ProcessId::all(n) {
                let phase = if self.cfg.stagger_initiation {
                    self.cfg.checkpoint_interval * pid.0 as u64 / n as u64
                } else {
                    SimDuration::ZERO
                };
                self.sched.schedule_after(
                    self.cfg.checkpoint_interval + phase,
                    Event::Tick { pid, kind: TICK_CKPT },
                );
            }
        }

        let hard_stop = SimTime::ZERO + self.cfg.sim.horizon;
        // Batched delivery windows: every pop opens a `(now, target)`
        // window, and `pop_matching` drains every further event of the
        // same instant and process as one batch — one trip through the
        // loop preamble per window instead of per event. Only the front
        // event can ever match, so the `(at, seq)` dispatch order (and
        // with it every trace byte) is untouched. Faults dispatch alone:
        // they mutate `crashed`/purge the queue, which must not happen
        // mid-window.
        'run: while let Some((now, ev)) = self.sched.pop() {
            if now > hard_stop {
                self.counters.inc("run.hit_horizon");
                break;
            }
            if self.protocol_error.is_some() {
                break;
            }
            let window = (!ev.is_fault()).then(|| ev.target());
            if self.dispatch(now, ev) == Flow::Break {
                break;
            }
            if let Some(pid) = window {
                while self.protocol_error.is_none() {
                    let Some(ev) = self.sched.pop_matching(now, pid) else {
                        break;
                    };
                    if self.dispatch(now, ev) == Flow::Break {
                        break 'run;
                    }
                }
            }
        }
        self.finish(wall_start)
    }

    /// Dispatch one popped event. Returns [`Flow::Break`] when the run
    /// loop must stop (crash with `stop_on_crash`, failed recovery).
    fn dispatch(&mut self, now: SimTime, ev: Event<P::Env>) -> Flow {
        match ev {
            Event::Tick { pid, kind: TICK_SEND } => self.on_send_tick(now, pid),
            Event::Tick { pid, kind: TICK_CKPT } => self.on_ckpt_tick(now, pid),
            Event::Tick { .. } => unreachable!("unknown tick"),
            Event::Deliver { src, dst, msg_id, msg } => self.on_deliver(now, src, dst, msg_id, msg),
            Event::Timer { pid, tag, .. } => {
                if self.crashed[pid.index()] {
                    return Flow::Continue;
                }
                self.timers[pid.index()].remove(&tag);
                let mut out = std::mem::take(&mut self.scratch);
                self.procs[pid.index()].on_timer(tag, &mut out);
                self.execute(now, pid, &mut out);
                self.scratch = out;
            }
            Event::StorageDone { .. } => self.pump_storage(now),
            Event::Crash { pid } => {
                self.counters.inc("fault.crashes");
                self.crashed[pid.index()] = true;
                self.crash.get_or_insert((pid, now));
                self.trace.record(now, pid, TraceKind::Crash, "fail-stop");
                // Volatile state (unfinalized tentative checkpoints and
                // in-memory logs) is lost.
                self.sched.drop_events_for(pid);
                if self.cfg.stop_on_crash {
                    return Flow::Break;
                }
            }
            Event::Recover { pid } => {
                self.counters.inc("fault.recover_events");
                self.trace.record(now, pid, TraceKind::Recover, "system rollback");
                if let Err(e) = self.perform_system_recovery(now, pid) {
                    self.protocol_error = Some(e);
                    return Flow::Break;
                }
            }
        }
        Flow::Continue
    }

    fn on_send_tick(&mut self, now: SimTime, pid: ProcessId) {
        if self.crashed[pid.index()] {
            return;
        }
        let workload_end = SimTime::ZERO + self.cfg.workload_duration;
        if now >= workload_end {
            return;
        }
        if !self.procs[pid.index()].can_send_app() {
            // Blocked by the protocol (Koo–Toueg phase 1): retry shortly
            // and account the delay.
            if self.blocked_since[pid.index()].is_none() {
                self.blocked_since[pid.index()] = Some(now);
            }
            self.counters.inc("app.send_deferred");
            self.sched.schedule_after(
                SimDuration::from_micros(200),
                Event::Tick { pid, kind: TICK_SEND },
            );
            return;
        }
        if let Some(t0) = self.blocked_since[pid.index()].take() {
            self.blocked_time += now - t0;
        }
        let n = self.cfg.sim.n;
        let rng = &mut self.wl_rng[pid.index()];
        let Some(dst) = self.wl[pid.index()].next_dst(n, pid, rng) else {
            return;
        };
        let len = self.wl[pid.index()].next_payload_len(rng);
        let msg_id = MsgId(self.next_msg);
        self.next_msg += 1;
        let payload = ocpt_core::AppPayload { id: msg_id.0, len };
        let mut out = std::mem::take(&mut self.scratch);
        let env = self.procs[pid.index()].wrap_app(dst, msg_id, payload, &mut out);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_send(pid, msg_id);
        }
        self.prev_app[pid.index()] = self.app[pid.index()];
        self.app[pid.index()].apply_send(payload);
        let bytes = self.procs[pid.index()].env_wire_bytes(&env);
        self.app_payload_bytes += len as u64;
        self.piggyback_bytes += bytes - wire_cost::app(len, 0);
        self.counters.inc("app.messages");
        let at = self.net.send(now, pid, dst, bytes);
        if self.trace.is_enabled() {
            let tel = self.procs[pid.index()].env_telemetry(&env);
            self.trace.record_coded(
                now,
                pid,
                TraceKind::AppSend,
                TraceKind::AppSend.default_code(),
                tel.seq,
                format!("M{} -> {dst}", msg_id.0),
            );
        }
        self.sched.schedule_at(at, Event::Deliver { src: pid, dst, msg_id, msg: env });
        self.execute(now, pid, &mut out);
        self.scratch = out;
        // Draw the next send.
        let gap = self.wl[pid.index()].next_gap(&mut self.wl_rng[pid.index()]);
        self.sched.schedule_after(gap, Event::Tick { pid, kind: TICK_SEND });
    }

    fn on_ckpt_tick(&mut self, now: SimTime, pid: ProcessId) {
        if self.crashed[pid.index()] {
            return;
        }
        // Initiate only while at least one more interval of application
        // traffic remains, so no round is forced to converge in silence
        // (the convergence-in-silence behaviour has dedicated tests).
        let workload_end = SimTime::ZERO + self.cfg.workload_duration;
        if now + self.cfg.checkpoint_interval <= workload_end {
            let mut out = std::mem::take(&mut self.scratch);
            self.procs[pid.index()].initiate(&mut out);
            self.execute(now, pid, &mut out);
            self.scratch = out;
            self.sched
                .schedule_after(self.cfg.checkpoint_interval, Event::Tick { pid, kind: TICK_CKPT });
        }
    }

    fn on_deliver(
        &mut self,
        now: SimTime,
        src: ProcessId,
        dst: ProcessId,
        msg_id: MsgId,
        env: P::Env,
    ) {
        if self.crashed[dst.index()] {
            self.counters.inc("net.dropped_to_crashed");
            return;
        }
        let tel = if self.trace.is_enabled() {
            self.procs[dst.index()].env_telemetry(&env)
        } else {
            ocpt_baselines::api::EnvTelemetry::default()
        };
        let mut out = std::mem::take(&mut self.scratch);
        let res = self.procs[dst.index()].on_arrival(src, msg_id, env, &mut out);
        let delivered = match res {
            Ok(d) => d,
            Err(e) => {
                self.protocol_error = Some(e);
                out.clear();
                self.scratch = out;
                return;
            }
        };
        self.execute(now, dst, &mut out);
        if let Some(payload) = delivered {
            if let Some(obs) = self.observer.as_mut() {
                obs.on_recv(dst, msg_id);
            }
            self.prev_app[dst.index()] = self.app[dst.index()];
            self.app[dst.index()].apply_recv(payload);
            self.counters.inc("app.delivered");
            self.trace.record_coded_with(
                now,
                dst,
                TraceKind::AppRecv,
                TraceKind::AppRecv.default_code(),
                tel.seq,
                || format!("M{} <- {src}", msg_id.0),
            );
            if let Err(e) = self.procs[dst.index()].after_delivery(src, msg_id, payload, &mut out) {
                self.protocol_error = Some(e);
                out.clear();
                self.scratch = out;
                return;
            }
            self.execute(now, dst, &mut out);
        } else {
            self.trace.record_coded_with(
                now,
                dst,
                TraceKind::CtrlRecv,
                tel.code.unwrap_or(TraceKind::CtrlRecv.default_code()),
                tel.seq,
                || format!("from {src}"),
            );
        }
        self.scratch = out;
    }

    /// Full-system rollback recovery: every process restores the state of
    /// the durable recovery line `S_line`, in-flight messages are flushed,
    /// in-transit messages across the line are re-injected from the
    /// durable sender logs, and the workload resumes. The paper's model:
    /// finalized checkpoints with equal sequence number form a consistent
    /// global checkpoint (Theorem 2), so `S_line` is a correct restart
    /// point and rollback never cascades.
    fn perform_system_recovery(
        &mut self,
        now: SimTime,
        recovered: ProcessId,
    ) -> Result<(), String> {
        let n = self.cfg.sim.n;
        let line = self.store.recovery_line();
        self.trace.note(now, recovered, "recovery.line", format!("S_{line}"));
        self.counters.inc("recovery.performed");
        self.crashed[recovered.index()] = false;

        // Protocol support check first: algorithms without live recovery
        // fail fast here, before any state is touched.
        for pid in ProcessId::all(n) {
            self.procs[pid.index()].restore_from_line(line)?;
        }

        // The observer's pre-crash record is consumed here (to find the
        // in-transit messages), then replaced with a fresh epoch: events
        // beyond the rollback line are erased from history.
        let resend: Vec<(ProcessId, ProcessId, ocpt_core::AppPayload)> = if line > 0 {
            if let Some(obs) = self.observer.as_ref() {
                let report = obs.judge(line).ok_or("recovery line not judged")?;
                if !report.is_consistent() {
                    return Err(format!("recovery line S_{line} inconsistent?!"));
                }
                let mut v = Vec::new();
                for pid in ProcessId::all(n) {
                    let ckpt = self
                        .store
                        .get(pid, line)
                        .ok_or_else(|| format!("{pid}: no durable checkpoint {line}"))?;
                    let log = if ckpt.log.is_empty() {
                        ocpt_core::MessageLog::new()
                    } else {
                        ocpt_core::MessageLog::decode(ckpt.log.clone())
                            .ok_or("corrupt durable log")?
                    };
                    for e in log.sent() {
                        let crosses_line = report.in_transit.iter().any(|t| t.msg.0 == e.msg_id.0);
                        if !crosses_line {
                            continue;
                        }
                        // Only payload-carrying entries can regenerate the
                        // message. A determinant-only sender log (the
                        // receiver-based strategy) knows the send happened
                        // but has no bytes to re-inject — that in-transit
                        // message is lost, which is exactly what E10's
                        // `lost_in_transit` column counts.
                        if e.kind == ocpt_core::EntryKind::Payload {
                            v.push((pid, e.peer, e.payload));
                        } else {
                            self.counters.inc("recovery.resend_unavailable");
                            self.trace.record_coded(
                                now,
                                pid,
                                TraceKind::AppSend,
                                "recovery.resend_unavailable",
                                None,
                                format!("M{}", e.payload.id),
                            );
                        }
                    }
                }
                v.sort_by_key(|(src, dst, p)| (src.0, dst.0, p.id));
                v
            } else {
                Vec::new()
            }
        } else {
            Vec::new()
        };

        // Flush channels, timers and ticks; keep only future faults.
        self.sched.clear_except_faults();
        for t in &mut self.timers {
            t.clear();
        }
        // Obsolete in-flight storage work and post-line durable records.
        self.pending_writes.clear();
        for q in &mut self.write_queue {
            q.clear();
        }
        self.write_busy.iter_mut().for_each(|b| *b = false);
        let dropped = self.store.truncate_above(line);
        self.counters.add("recovery.checkpoints_invalidated", dropped as u64);
        self.progress.retain(|&(_, seq), _| seq <= line);
        self.cut_states.retain(|&(_, seq), _| seq <= line);
        self.first_snapshot_at.retain(|&seq, _| seq <= line);
        self.last_complete_at.retain(|&seq, _| seq <= line);
        self.complete_count.retain(|&seq, _| seq <= line);
        self.staged_now = 0;

        // Restore every process's application state.
        let mut lost_events = 0u64;
        for pid in ProcessId::all(n) {
            let restored = if line > 0 {
                let ckpt = self.store.get(pid, line).expect("checked above");
                let plan = ocpt_core::plan_recovery(line, ckpt.state.clone(), ckpt.log.clone())
                    .map_err(|e| format!("{pid}: {e}"))?;
                plan.restored
            } else {
                AppSnapshot::initial(pid.0 as u64, self.cfg.state_bytes)
            };
            lost_events +=
                self.app[pid.index()].counter - restored.counter.min(self.app[pid.index()].counter);
            self.app[pid.index()] = restored;
            self.prev_app[pid.index()] = restored;
            self.crashed[pid.index()] = false;
        }
        self.counters.add("recovery.events_lost", lost_events);

        // Fresh observation epoch.
        if self.observer.is_some() {
            self.observer = Some(GlobalObserver::new(n));
        }

        // Re-inject in-transit messages from the durable sender logs: the
        // send is already part of the restored sender state, so only the
        // network and the receiver see the message again.
        for (src, dst, payload) in resend {
            let Some(env) = self.procs[src.index()].replay_envelope(payload) else {
                continue;
            };
            let msg_id = MsgId(self.next_msg);
            self.next_msg += 1;
            if let Some(obs) = self.observer.as_mut() {
                obs.on_send(src, msg_id);
            }
            let bytes = self.procs[src.index()].env_wire_bytes(&env);
            let at = self.net.send(now, src, dst, bytes);
            self.sched.schedule_at(at, Event::Deliver { src, dst, msg_id, msg: env });
            self.counters.inc("recovery.resent_msgs");
            self.trace.record_coded(
                now,
                src,
                TraceKind::AppSend,
                "recovery.resend",
                None,
                format!("M{}", payload.id),
            );
        }

        // Resume: workload ticks and checkpoint ticks for everyone.
        for pid in ProcessId::all(n) {
            let gap = self.wl[pid.index()].next_gap(&mut self.wl_rng[pid.index()]);
            self.sched.schedule_after(gap, Event::Tick { pid, kind: TICK_SEND });
            if self.cfg.checkpoint_interval != SimDuration::MAX {
                self.sched.schedule_after(
                    self.cfg.checkpoint_interval,
                    Event::Tick { pid, kind: TICK_CKPT },
                );
            }
        }
        Ok(())
    }

    fn stage(&mut self, bytes: u64) {
        self.staged_now += bytes;
        self.staging_peak = self.staging_peak.max(self.staged_now);
    }

    fn unstage(&mut self, bytes: u64) {
        self.staged_now = self.staged_now.saturating_sub(bytes);
    }

    /// Apply every queued protocol action, draining (but not freeing)
    /// the buffer so callers can recycle it through `self.scratch`.
    fn execute(&mut self, now: SimTime, pid: ProcessId, actions: &mut Vec<ProtoAction<P::Env>>) {
        for a in actions.drain(..) {
            match a {
                ProtoAction::Snapshot { seq } => {
                    let snap = self.app[pid.index()];
                    self.progress.entry((pid.0, seq)).or_default().snapshot = Some(snap);
                    self.stage(self.cfg.state_bytes);
                    self.counters.inc("ckpt.snapshots");
                    self.first_snapshot_at.entry(seq).or_insert(now);
                    self.trace.record_seq_with(now, pid, TraceKind::TentativeCkpt, seq, || {
                        format!("CT({seq})")
                    });
                }
                ProtoAction::MarkCut { seq, back } => {
                    if let Some(obs) = self.observer.as_mut() {
                        let pos = obs.positions()[pid.index()] - back as u64;
                        obs.on_finalize(pid, seq, pos, now);
                    }
                    let state =
                        if back == 0 { self.app[pid.index()] } else { self.prev_app[pid.index()] };
                    self.cut_states.insert((pid.0, seq), state);
                }
                ProtoAction::FlushState { seq } => {
                    let blob = {
                        let p = self.progress.entry((pid.0, seq)).or_default();
                        p.state_issued = true;
                        p.snapshot.expect("FlushState before Snapshot").encode()
                    };
                    self.submit_write(now, pid, seq, WriteKind::State, blob, self.cfg.state_bytes);
                }
                ProtoAction::FlushExtra { seq, bytes, log } => {
                    let blob = log.map(|l| l.encode()).unwrap_or_default();
                    self.progress.entry((pid.0, seq)).or_default().extra_issued = true;
                    self.stage(bytes);
                    self.submit_write(now, pid, seq, WriteKind::Extra, blob, bytes);
                }
                ProtoAction::Complete { seq } => {
                    let newly = {
                        let p = self.progress.entry((pid.0, seq)).or_default();
                        let newly = !p.completed;
                        p.completed = true;
                        newly
                    };
                    if newly {
                        let t = self.last_complete_at.get(&seq).copied().unwrap_or(now).max(now);
                        self.last_complete_at.insert(seq, t);
                        *self.complete_count.entry(seq).or_insert(0) += 1;
                        self.counters.inc("ckpt.completes");
                        self.trace.record_seq_with(now, pid, TraceKind::FinalizeCkpt, seq, || {
                            format!("C({seq})")
                        });
                        self.maybe_durable(now, pid, seq);
                    }
                }
                ProtoAction::Send { dst, env } => {
                    let bytes = self.procs[pid.index()].env_wire_bytes(&env);
                    self.ctrl_messages += 1;
                    self.ctrl_bytes += bytes;
                    let msg_id = MsgId(self.next_msg);
                    self.next_msg += 1;
                    let at = self.net.send(now, pid, dst, bytes);
                    if self.trace.is_enabled() {
                        let tel = self.procs[pid.index()].env_telemetry(&env);
                        self.trace.record_coded(
                            now,
                            pid,
                            TraceKind::CtrlSend,
                            tel.code.unwrap_or(TraceKind::CtrlSend.default_code()),
                            tel.seq,
                            format!("-> {dst}"),
                        );
                    }
                    self.sched.schedule_at(at, Event::Deliver { src: pid, dst, msg_id, msg: env });
                }
                ProtoAction::SetTimer { tag, delay } => {
                    let id = self.sched.set_timer(pid, delay, tag);
                    if let Some(old) = self.timers[pid.index()].insert(tag, id) {
                        self.sched.cancel_timer(old);
                    }
                }
                ProtoAction::CancelTimer { tag } => {
                    if let Some(id) = self.timers[pid.index()].remove(&tag) {
                        self.sched.cancel_timer(id);
                    }
                }
                ProtoAction::ForcedBeforeProcessing { .. } => {
                    self.counters.inc("ckpt.forced_before_processing");
                    self.forced_delay += self.capture_delay();
                }
            }
        }
    }

    fn submit_write(
        &mut self,
        now: SimTime,
        pid: ProcessId,
        seq: u64,
        kind: WriteKind,
        blob: bytes::Bytes,
        bytes: u64,
    ) {
        let w = PendingWrite { pid, seq, kind, blob, bytes };
        if self.write_busy[pid.index()] {
            // One connection per process: queue behind the in-flight write.
            self.write_queue[pid.index()].push_back(w);
            self.counters.inc("storage.writes_queued");
            return;
        }
        self.start_write(now, w);
    }

    fn start_write(&mut self, now: SimTime, w: PendingWrite) {
        let pid = w.pid;
        self.write_busy[pid.index()] = true;
        let req = StorageReqId(self.next_req);
        self.next_req += 1;
        self.server.submit(now, pid, req, w.bytes);
        self.counters.inc("storage.writes");
        // `in_flight()` is sampled right after submit, so the detail
        // records the concurrent-writer count *including* this write —
        // the contention signal the paper's E1 is about.
        let writers = self.server.in_flight();
        self.trace.record_coded_with(
            now,
            pid,
            TraceKind::StorageStart,
            TraceKind::StorageStart.default_code(),
            Some(w.seq),
            || format!("{:?} {}B writers={writers}", w.kind, w.bytes),
        );
        self.pending_writes.insert(req, w);
        self.schedule_storage_wakeup(now);
    }

    fn pump_storage(&mut self, now: SimTime) {
        self.server.advance(now);
        let completions = self.server.take_completed();
        for c in completions {
            let Some(w) = self.pending_writes.remove(&c.req) else {
                continue;
            };
            let released = match w.kind {
                WriteKind::State => self.cfg.state_bytes,
                WriteKind::Extra => w.bytes,
            };
            self.unstage(released);
            self.trace.record_seq_with(c.at, w.pid, TraceKind::StorageDone, w.seq, || {
                format!("{:?} {}B", w.kind, w.bytes)
            });
            let notify = {
                let p = self.progress.entry((w.pid.0, w.seq)).or_default();
                match w.kind {
                    WriteKind::State => {
                        p.state_durable = true;
                        p.state_blob = Some(w.blob);
                    }
                    WriteKind::Extra => {
                        p.extra_durable = true;
                        p.log_blob = Some(w.blob);
                    }
                }
                let notify = p.writes_durable() && !p.storage_done_notified;
                if notify {
                    p.storage_done_notified = true;
                }
                notify
            };
            if notify {
                let mut out = std::mem::take(&mut self.scratch);
                self.procs[w.pid.index()].on_storage_done(w.seq, &mut out);
                self.execute(now, w.pid, &mut out);
                self.scratch = out;
            }
            self.maybe_durable(now, w.pid, w.seq);
            // Free the connection and start the next queued write.
            self.write_busy[w.pid.index()] = false;
            if let Some(next) = self.write_queue[w.pid.index()].pop_front() {
                self.start_write(now, next);
            }
        }
        if self.server.in_flight() > 0 {
            self.schedule_storage_wakeup(now);
        }
    }

    /// Schedule the next storage wakeup. The completion estimate comes from
    /// floating-point bandwidth math, so it can round to an instant a hair
    /// *before* the write actually finishes; a +1ns margin (and never in
    /// the past) guarantees forward progress.
    fn schedule_storage_wakeup(&mut self, now: SimTime) {
        if let Some(t) = self.server.next_completion() {
            let at = (t + SimDuration::from_nanos(1)).max(now + SimDuration::from_nanos(1));
            self.sched.schedule_at(
                at,
                Event::StorageDone { pid: ProcessId::P0, req: StorageReqId(u64::MAX) },
            );
        }
    }

    fn maybe_durable(&mut self, now: SimTime, pid: ProcessId, seq: u64) {
        let blobs = {
            let p = self.progress.entry((pid.0, seq)).or_default();
            if p.fully_durable() && !p.durable_recorded {
                p.durable_recorded = true;
                Some((
                    p.state_blob.clone().unwrap_or_default(),
                    p.log_blob.clone().unwrap_or_default(),
                ))
            } else {
                None
            }
        };
        if let Some((state, log)) = blobs {
            self.store.put(StoredCheckpoint { pid, csn: seq, state, log, durable_at: now });
            self.counters.inc("ckpt.durable");
            if self.cfg.gc_old_checkpoints {
                let line = self.store.recovery_line();
                if line > 0 {
                    let dropped = self.store.gc_below(line);
                    self.counters.add("storage.gc_reclaimed", dropped as u64);
                }
            }
        }
    }

    // simlint: allow(wall-clock, "carries the runner's own wall-clock start; never feeds simulation state")
    fn finish(mut self, wall_start: std::time::Instant) -> RunResult {
        // Let any still-active storage writes complete "after the end" so
        // durability accounting is complete.
        while self.server.in_flight() > 0 {
            let t = self.server.next_completion().expect("in-flight implies completion");
            self.pump_storage(t + SimDuration::from_nanos(1));
        }
        let makespan = self.sched.now();
        let n = self.cfg.sim.n;
        let sim_events = self.sched.events_dispatched();
        let peak_pending = self.sched.peak_pending();
        let arena_hwm = self.sched.arena_stats().hwm;
        let clamped_events = self.sched.clamped_events();
        let messages_lost_at_crash = self.sched.messages_lost_at_crash();
        let mut counters = self.counters;
        if clamped_events > 0 {
            counters.add("sched.clamped_events", clamped_events);
        }
        if messages_lost_at_crash > 0 {
            counters.add("sched.messages_lost_at_crash", messages_lost_at_crash);
        }
        for p in &self.procs {
            counters.merge(p.stats());
        }
        let mut ckpt_latency = Summary::new();
        let mut complete_rounds = 0;
        let mut round_stats = Vec::with_capacity(self.first_snapshot_at.len());
        for (&seq, first) in &self.first_snapshot_at {
            round_stats.push(RoundStat {
                seq,
                first_snapshot_ns: first.as_nanos(),
                last_complete_ns: self
                    .last_complete_at
                    .get(&seq)
                    .map_or(first.as_nanos(), |t| t.as_nanos()),
                completes: self.complete_count.get(&seq).copied().unwrap_or(0),
            });
        }
        for (seq, &cnt) in &self.complete_count {
            if cnt == n {
                complete_rounds += 1;
                if let (Some(a), Some(b)) =
                    (self.first_snapshot_at.get(seq), self.last_complete_at.get(seq))
                {
                    ckpt_latency.record(b.saturating_since(*a).as_secs_f64());
                }
            }
        }
        let storage = StorageReport {
            peak_writers: self.server.peak_writers(),
            mean_writers: self.server.mean_writers(makespan),
            contended_time: self.server.contended_time(makespan),
            total_stall: self.server.total_stall(),
            write_latency_mean: self.server.latency().mean(),
            write_latency_max: self.server.latency().max(),
            total_bytes: self.server.total_bytes(),
            total_requests: self.server.total_requests(),
        };
        RunResult {
            algo: self.algo,
            n,
            seed: self.cfg.sim.seed,
            scheduler: self.cfg.scheduler,
            counters,
            app_messages: self.next_msg - self.ctrl_messages,
            app_payload_bytes: self.app_payload_bytes,
            piggyback_bytes: self.piggyback_bytes,
            ctrl_messages: self.ctrl_messages,
            ctrl_bytes: self.ctrl_bytes,
            makespan,
            blocked_time: self.blocked_time,
            forced_delay: self.forced_delay,
            ckpt_latency,
            round_stats,
            complete_rounds,
            recovery_line: self.store.recovery_line(),
            staging_peak: self.staging_peak,
            storage,
            observer: self.observer,
            store: self.store,
            app_final: self.app,
            cut_states: self.cut_states,
            trace: self.trace,
            crash: self.crash,
            protocol_error: self.protocol_error,
            sim_events,
            peak_pending,
            arena_hwm,
            clamped_events,
            messages_lost_at_crash,
            wall_secs: wall_start.elapsed().as_secs_f64(),
        }
    }
}
