//! # ocpt-harness — drive any checkpointing protocol over the simulator
//!
//! The glue between the sans-io protocol crates (`ocpt-core`,
//! `ocpt-baselines`) and the substrates (`ocpt-sim`, `ocpt-storage`,
//! `ocpt-causality`):
//!
//! * [`workload`] — synthetic application traffic (topology × pattern ×
//!   timing × payload);
//! * [`runner`] — the deterministic driver: one [`runner::Runner`] per
//!   (algorithm, workload, seed), producing a [`runner::RunResult`] with
//!   every metric the experiments report;
//! * [`algo`] — algorithm selection and checked dispatch;
//! * [`analysis`] — offline recovery analysis: coordinated rollback,
//!   domino-effect fixpoint, restored-state verification;
//! * [`grid`] — the experiment grid engine: expand sweeps into
//!   independent cells, run them across a thread pool, aggregate in
//!   declaration order (bit-identical to serial execution);
//! * [`experiments`] — one function per reconstructed experiment
//!   (E1–E8, A1–A3 in `DESIGN.md`), each returning the table its `exp_*`
//!   binary prints.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algo;
pub mod analysis;
pub mod experiments;
pub mod grid;
pub mod runner;
pub mod workload;

pub use algo::{run, run_checked, Algo};
pub use analysis::{
    coordinated_rollback, domino_rollback, log_recovery_report, verify_restored_states,
    LogRecoveryReport, RollbackReport,
};
pub use grid::{ColFmt, GridOptions, GridOutcome, RunGrid, TraceSink};
pub use runner::{RoundStat, RunConfig, RunResult, Runner, StorageReport};
pub use workload::{Pattern, PayloadSpec, Timing, WorkloadSpec, WorkloadState};
