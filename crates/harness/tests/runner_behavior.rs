//! Behavioural tests of the simulation driver itself: write serialization,
//! blocking accounting, garbage collection, horizon safety, workload
//! accounting — the plumbing the experiments' numbers stand on.

use ocpt_harness::workload::{Pattern, PayloadSpec, Timing};
use ocpt_harness::{run, run_checked, Algo, RunConfig, WorkloadSpec};
use ocpt_sim::{DelayModel, ProcessId, SimDuration, Topology};

fn base(n: usize, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::new(n, seed);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(4));
    cfg.checkpoint_interval = SimDuration::from_millis(300);
    cfg.workload_duration = SimDuration::from_millis(1200);
    cfg.state_bytes = 256 * 1024;
    cfg
}

#[test]
fn app_message_accounting_balances() {
    let r = run_checked(&Algo::ocpt(), base(5, 1));
    // Every sent message is eventually delivered (reliable channels, no
    // crash): sends == deliveries.
    assert_eq!(r.counters.get("app.messages"), r.counters.get("app.delivered"));
    assert_eq!(r.app_messages, r.counters.get("app.messages"));
    assert!(r.app_payload_bytes >= r.app_messages * 1024, "1 KiB fixed payloads");
}

#[test]
fn storage_write_accounting_balances() {
    let r = run_checked(&Algo::ocpt(), base(5, 2));
    // Writes issued == durable records × writes-per-checkpoint components;
    // at quiescence nothing is left in flight, so total requests at the
    // server equals issued writes.
    let issued = r.counters.get("storage.writes");
    assert_eq!(r.storage.total_requests, issued);
    // Each durable checkpoint wrote state + log.
    assert_eq!(issued, r.counters.get("ckpt.durable") * 2);
}

#[test]
fn per_process_write_serialization() {
    // With one connection per process, a single process can never have two
    // requests at the server, so peak_writers ≤ n even when state+log are
    // issued together.
    let mut cfg = base(4, 3);
    // Force worst clustering: immediate writes.
    let ocfg = ocpt_core::OcptConfig {
        flush_policy: ocpt_core::FlushPolicy::Eager,
        finalize_write: ocpt_core::WritePolicy::Immediate,
        ..Default::default()
    };
    let r = run_checked(&Algo::Ocpt(ocfg), cfg.clone());
    assert!(r.storage.peak_writers <= 4, "peak {} > n", r.storage.peak_writers);
    // And some queueing actually happened (state+log pairs).
    assert!(r.counters.get("storage.writes_queued") > 0);
    cfg.sim.seed += 1;
}

#[test]
fn gc_keeps_only_recent_checkpoints() {
    let mut with_gc = base(4, 4);
    with_gc.gc_old_checkpoints = true;
    let r = run_checked(&Algo::ocpt(), with_gc);
    assert!(r.counters.get("storage.gc_reclaimed") > 0, "nothing reclaimed");
    // Only the line (and anything newer) remains.
    let line = r.recovery_line;
    assert!(line >= 2);
    for pid in ProcessId::all(4) {
        assert!(r.store.get(pid, line).is_some());
        assert!(r.store.get(pid, line.saturating_sub(1)).is_none(), "old ckpt survived GC");
    }

    let without = base(4, 4);
    let r2 = run_checked(&Algo::ocpt(), without);
    assert!(r2.store.len() > r.store.len(), "GC did not shrink the store");
}

#[test]
fn horizon_stops_runaway_runs() {
    let mut cfg = base(3, 5);
    // A pathological configuration: retries forever because Koo–Toueg
    // blocks and the commit never comes (coordinator crashed).
    cfg.sim = cfg.sim.with_horizon(SimDuration::from_millis(1500));
    cfg.faults = ocpt_sim::FaultPlan::single(
        ProcessId(0), // the coordinator
        ocpt_sim::SimTime::from_millis(100),
        SimDuration::from_millis(1),
    );
    cfg.stop_on_crash = false;
    let r = run(&Algo::KooToueg, cfg);
    // The run ends (horizon or error) instead of spinning forever.
    assert!(r.makespan <= ocpt_sim::SimTime::from_millis(1500) + SimDuration::from_millis(1));
}

#[test]
fn blocked_time_measured_for_koo_toueg_under_slow_storage() {
    let mut cfg = base(6, 6);
    // Dense traffic guarantees sends land inside every blocking window
    // (the window itself is control-RTT-bound, so only traffic density —
    // not storage speed — decides how much blocking is observable).
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_micros(500));
    // Slow storage stretches phase 1, lengthening the blocking window.
    cfg.storage = ocpt_storage::StorageConfig {
        bandwidth_bps: 4.0 * 1024.0 * 1024.0,
        per_request_overhead: SimDuration::from_millis(5),
    };
    let r = run_checked(&Algo::KooToueg, cfg);
    assert!(r.blocked_time > SimDuration::from_millis(1), "blocking not captured");
    assert!(r.counters.get("app.send_deferred") > 0);
}

#[test]
fn fifo_forced_for_marker_algorithms() {
    // Chandy–Lamport on explicitly non-FIFO config must still run FIFO
    // (the runner honours needs_fifo), otherwise markers would error.
    let mut cfg = base(4, 7);
    cfg.sim = cfg
        .sim
        .with_fifo(false)
        .with_delay(DelayModel::Uniform(SimDuration::from_micros(10), SimDuration::from_millis(3)));
    let r = run_checked(&Algo::ChandyLamport, cfg);
    assert!(r.complete_rounds >= 1);
}

#[test]
fn ring_topology_still_converges() {
    let mut cfg = base(6, 8);
    cfg.workload = WorkloadSpec {
        topology: Topology::Ring,
        pattern: Pattern::Uniform,
        timing: Timing::Poisson { mean: SimDuration::from_millis(4) },
        payload: PayloadSpec::Fixed(512),
    };
    let r = run_checked(&Algo::ocpt(), cfg);
    assert!(r.complete_rounds >= 2);
    assert_eq!(r.counters.get("ckpt.finalized"), r.counters.get("ckpt.tentative"));
}

#[test]
fn master_worker_star_converges() {
    let mut cfg = base(5, 9);
    cfg.workload = WorkloadSpec {
        topology: Topology::Star,
        pattern: Pattern::MasterWorker,
        timing: Timing::Uniform {
            gap: SimDuration::from_millis(3),
            jitter: SimDuration::from_micros(500),
        },
        payload: PayloadSpec::Uniform(64, 2048),
    };
    let r = run_checked(&Algo::ocpt(), cfg);
    assert!(r.complete_rounds >= 2);
}

#[test]
fn bursty_traffic_converges() {
    let mut cfg = base(4, 10);
    cfg.workload = WorkloadSpec {
        topology: Topology::FullMesh,
        pattern: Pattern::HotSpot { hot: ProcessId(0), bias: 0.5 },
        timing: Timing::Bursty {
            burst_len: 10,
            fast: SimDuration::from_micros(300),
            idle: SimDuration::from_millis(40),
        },
        payload: PayloadSpec::Fixed(256),
    };
    let r = run_checked(&Algo::ocpt(), cfg);
    assert!(r.complete_rounds >= 2);
}

#[test]
fn no_checkpointing_baseline_run() {
    // interval = MAX disables checkpointing entirely: useful as the E2
    // reference; nothing must be written or completed.
    let mut cfg = base(4, 11);
    cfg.checkpoint_interval = SimDuration::MAX;
    let r = run(&Algo::ocpt(), cfg);
    assert_eq!(r.complete_rounds, 0);
    assert_eq!(r.storage.total_requests, 0);
    assert_eq!(r.counters.get("ckpt.tentative"), 0);
    assert!(r.app_messages > 0);
}

#[test]
fn piggyback_and_ctrl_byte_accounting() {
    let r = run_checked(&Algo::ocpt(), base(4, 12));
    let per_msg = r.piggyback_bytes / r.app_messages;
    // At N = 4 the dense bitmap is always the smallest encoding, so every
    // piggyback costs exactly the dense formula.
    assert_eq!(per_msg as usize, ocpt_core::Piggyback::dense_wire_bytes_for(4));
    if r.ctrl_messages > 0 {
        assert_eq!(r.ctrl_bytes, r.ctrl_messages * 15, "ctrl messages are 15 B");
    }
}
