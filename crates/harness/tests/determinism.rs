//! Bit-identical replay regression: the repo's headline claim is that a
//! run is a pure function of (config, seed). The fault/recovery path is
//! the part most tempted to drift — it tears down per-process timer
//! tables (a `Vec` of hash maps) and replays logged messages — so this
//! pins a crash-and-recover run end to end: two in-process executions of
//! the same config must produce identical results, and a different seed
//! must not.

use ocpt_harness::{run_checked, Algo, RunConfig, RunResult, WorkloadSpec};
use ocpt_sim::{FaultPlan, ProcessId, SimDuration, SimTime};

fn faulty(seed: u64) -> RunConfig {
    let mut cfg = RunConfig::new(5, seed);
    cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(4));
    cfg.checkpoint_interval = SimDuration::from_millis(300);
    cfg.workload_duration = SimDuration::from_millis(1500);
    cfg.state_bytes = 64 * 1024;
    cfg.faults =
        FaultPlan::single(ProcessId(2), SimTime::from_millis(700), SimDuration::from_millis(20));
    cfg.stop_on_crash = false;
    cfg
}

/// Everything deterministic a run produces, flattened to one comparable
/// string (wall-clock self-measurement excluded, obviously).
fn fingerprint(r: &RunResult) -> String {
    format!(
        "counters={:?} app={}/{} pb={} ctrl={}/{} makespan={:?} blocked={:?} rounds={} \
         line={} staging={} final={:?} cuts={:?} crash={:?} events={} lost={}",
        r.counters,
        r.app_messages,
        r.app_payload_bytes,
        r.piggyback_bytes,
        r.ctrl_messages,
        r.ctrl_bytes,
        r.makespan,
        r.blocked_time,
        r.complete_rounds,
        r.recovery_line,
        r.staging_peak,
        r.app_final,
        r.cut_states,
        r.crash,
        r.sim_events,
        r.messages_lost_at_crash,
    )
}

#[test]
fn fault_recovery_run_replays_bit_identically() {
    let a = run_checked(&Algo::ocpt(), faulty(11));
    assert!(a.crash.is_some(), "the planned fault must actually fire");
    let b = run_checked(&Algo::ocpt(), faulty(11));
    assert_eq!(fingerprint(&a), fingerprint(&b), "same (config, seed) diverged");
    // The fingerprint is discriminating, not vacuous: a different seed
    // produces a different run.
    let c = run_checked(&Algo::ocpt(), faulty(12));
    assert_ne!(fingerprint(&a), fingerprint(&c), "seed change must change the run");
}
