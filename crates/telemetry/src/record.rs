//! The owned record types a trace file is made of.

use ocpt_sim::TraceEvent;

/// Run provenance carried in a trace file's header line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Algorithm name (`"ocpt"`, `"chandy-lamport"`, …).
    pub algo: String,
    /// Number of processes.
    pub n: usize,
    /// The seed the run was driven by.
    pub seed: u64,
}

/// One trace event, owned (decoupled from the in-memory
/// [`ocpt_sim::TraceEvent`] so parsed files and live traces share every
/// analysis below).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rec {
    /// Virtual time, nanoseconds since the run started.
    pub at: u64,
    /// Process index.
    pub pid: u32,
    /// Schema kind name (see [`ocpt_sim::TraceKind::name`]).
    pub kind: String,
    /// Stable machine-readable event code (e.g. `"ctrl.ck_bgn"`).
    pub code: String,
    /// Checkpoint round the event belongs to, when it belongs to one.
    pub seq: Option<u64>,
    /// Free-form human-oriented detail; never parsed.
    pub detail: String,
}

impl Rec {
    /// Convert a live in-memory trace event.
    pub fn from_event(e: &TraceEvent) -> Rec {
        Rec {
            at: e.at.as_nanos(),
            pid: e.pid.0,
            kind: e.kind.name().to_string(),
            code: e.code.to_string(),
            seq: e.seq,
            detail: e.detail.clone(),
        }
    }
}

/// A parsed (or about-to-be-written) trace: header + events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceFile {
    /// Run provenance.
    pub meta: TraceMeta,
    /// Events, in virtual-time order.
    pub recs: Vec<Rec>,
}

#[cfg(test)]
mod tests {
    use ocpt_sim::{ProcessId, SimTime, Trace, TraceKind};

    use super::*;

    #[test]
    fn rec_mirrors_event() {
        let mut t = Trace::enabled();
        t.record_seq(SimTime::from_millis(3), ProcessId(2), TraceKind::FinalizeCkpt, 5, "C(5)");
        let r = Rec::from_event(&t.events()[0]);
        assert_eq!(r.at, 3_000_000);
        assert_eq!(r.pid, 2);
        assert_eq!(r.kind, "finalize_ckpt");
        assert_eq!(r.code, "ckpt.finalize");
        assert_eq!(r.seq, Some(5));
        assert_eq!(r.detail, "C(5)");
    }
}
