//! A minimal JSON writer and object parser.
//!
//! The `ocpt-trace` schema uses flat objects whose values are strings or
//! unsigned integers; the `ocpt-metrics` schema adds non-negative floats,
//! one level of nested objects and `null` (the writer's spelling of a
//! non-finite float). This module implements exactly that subset —
//! deliberately, not as a stopgap: a ~200-line parser we own is auditable
//! against the byte-determinism guarantee, and the build environment has
//! no crates.io access anyway. Negative numbers, booleans and arrays are
//! rejected because no exporter emits them.

use std::fmt::Write as _;

/// A value in a schema object.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A JSON string (unescaped).
    Str(String),
    /// A non-negative JSON integer.
    UInt(u64),
    /// A finite JSON number with a fraction or exponent part.
    F64(f64),
    /// A nested object, fields in document order.
    Obj(Vec<(String, Value)>),
    /// JSON `null` (how [`Obj::f64`] writes a non-finite value).
    Null,
}

impl Value {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer, if this is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The numeric value, if this is any number (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(u) => Some(*u as f64),
            Value::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// The nested fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Look up a field by key in a nested object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Escape `s` into a JSON string literal body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An in-order JSON object writer. Field order is the call order, which
/// is what makes the exported schema byte-stable.
#[derive(Debug)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    /// Start an object (`{`).
    pub fn new() -> Self {
        Obj { buf: String::from("{"), first: true }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    /// Append a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Append an unsigned-integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Append a float field. Rust's shortest-round-trip `Display` is
    /// deterministic, so this is safe for byte-stable reports; non-finite
    /// values (JSON has none) are written as `null`.
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Append a pre-rendered JSON value (e.g. a nested object).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Close the object (`}`) and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Obj::new()
    }
}

/// Parse one JSON object into its fields, in document order. Errors
/// carry a human-readable reason; positions are byte offsets into
/// `line`.
pub fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let b = line.as_bytes();
    let (fields, next) = parse_object_at(line, skip_ws(b, 0))?;
    let i = skip_ws(b, next);
    if i != b.len() {
        return Err(format!("trailing content at byte {i}"));
    }
    Ok(fields)
}

/// Parse an object starting at the `{` at byte `i`; returns the fields
/// and the index just past the closing `}`.
fn parse_object_at(line: &str, mut i: usize) -> Result<(Vec<(String, Value)>, usize), String> {
    let b = line.as_bytes();
    if b.get(i) != Some(&b'{') {
        return Err(format!("expected '{{' at byte {i}"));
    }
    i = skip_ws(b, i + 1);
    let mut fields = Vec::new();
    if b.get(i) == Some(&b'}') {
        return Ok((fields, i + 1));
    }
    loop {
        let (key, next) = parse_string(line, i)?;
        i = skip_ws(b, next);
        if b.get(i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i}"));
        }
        i = skip_ws(b, i + 1);
        let (value, next) = parse_value(line, i)?;
        fields.push((key, value));
        i = skip_ws(b, next);
        match b.get(i) {
            Some(b',') => i = skip_ws(b, i + 1),
            Some(b'}') => return Ok((fields, i + 1)),
            _ => return Err(format!("expected ',' or '}}' at byte {i}")),
        }
    }
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while matches!(b.get(i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
        i += 1;
    }
    i
}

fn parse_value(line: &str, i: usize) -> Result<(Value, usize), String> {
    let b = line.as_bytes();
    match b.get(i) {
        Some(b'"') => parse_string(line, i).map(|(s, n)| (Value::Str(s), n)),
        Some(b'{') => parse_object_at(line, i).map(|(f, n)| (Value::Obj(f), n)),
        Some(b'n') if line[i..].starts_with("null") => Ok((Value::Null, i + 4)),
        Some(c) if c.is_ascii_digit() => parse_number(line, i),
        _ => Err(format!("expected string, number, object or null at byte {i}")),
    }
}

/// Parse a non-negative JSON number. A bare digit run is a `UInt`; a
/// fraction or exponent part makes it an `F64` (Rust's `parse::<f64>`
/// accepts exactly the forms the shortest-round-trip `Display` emits, so
/// writer output always round-trips).
fn parse_number(line: &str, i: usize) -> Result<(Value, usize), String> {
    let b = line.as_bytes();
    let mut j = i;
    while matches!(b.get(j), Some(c) if c.is_ascii_digit()) {
        j += 1;
    }
    let mut float = false;
    if b.get(j) == Some(&b'.') {
        float = true;
        j += 1;
        if !matches!(b.get(j), Some(c) if c.is_ascii_digit()) {
            return Err(format!("digit must follow '.' at byte {j}"));
        }
        while matches!(b.get(j), Some(c) if c.is_ascii_digit()) {
            j += 1;
        }
    }
    if matches!(b.get(j), Some(b'e' | b'E')) {
        float = true;
        j += 1;
        if matches!(b.get(j), Some(b'+' | b'-')) {
            j += 1;
        }
        if !matches!(b.get(j), Some(c) if c.is_ascii_digit()) {
            return Err(format!("digit must follow exponent at byte {j}"));
        }
        while matches!(b.get(j), Some(c) if c.is_ascii_digit()) {
            j += 1;
        }
    }
    if float {
        let num: f64 = line[i..j].parse().map_err(|_| format!("bad number at byte {i}"))?;
        if !num.is_finite() {
            return Err(format!("non-finite number at byte {i}"));
        }
        Ok((Value::F64(num), j))
    } else {
        let num: u64 =
            line[i..j].parse().map_err(|_| format!("integer out of range at byte {i}"))?;
        Ok((Value::UInt(num), j))
    }
}

/// Parse a JSON string literal starting at the opening quote; returns the
/// unescaped content and the index just past the closing quote.
fn parse_string(line: &str, i: usize) -> Result<(String, usize), String> {
    let b = line.as_bytes();
    if b.get(i) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {i}"));
    }
    let mut out = String::new();
    let mut j = i + 1;
    loop {
        match b.get(j) {
            None => return Err(format!("unterminated string starting at byte {i}")),
            Some(b'"') => return Ok((out, j + 1)),
            Some(b'\\') => {
                j += 1;
                match b.get(j) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = line
                            .get(j + 1..j + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {j}"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {j}"))?;
                        // Surrogates never appear in our own output;
                        // reject rather than guess.
                        let c = char::from_u32(cp)
                            .ok_or_else(|| format!("non-scalar \\u escape at byte {j}"))?;
                        out.push(c);
                        j += 4;
                    }
                    _ => return Err(format!("bad escape at byte {j}")),
                }
                j += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 character.
                let c = line[j..].chars().next().ok_or("utf-8 boundary error")?;
                out.push(c);
                j += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_orders_fields_and_escapes() {
        let s = Obj::new().str("a", "x\"y\n").u64("b", 7).finish();
        assert_eq!(s, "{\"a\":\"x\\\"y\\n\",\"b\":7}");
    }

    #[test]
    fn floats_use_shortest_roundtrip_display() {
        let s = Obj::new().f64("x", 0.1).f64("bad", f64::NAN).finish();
        assert_eq!(s, "{\"x\":0.1,\"bad\":null}");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let line = Obj::new().str("kind", "app_send").u64("at", 123).str("d", "a\\b\t").finish();
        let fields = parse_object(&line).unwrap();
        assert_eq!(fields[0], ("kind".into(), Value::Str("app_send".into())));
        assert_eq!(fields[1], ("at".into(), Value::UInt(123)));
        assert_eq!(fields[2], ("d".into(), Value::Str("a\\b\t".into())));
    }

    #[test]
    fn parse_accepts_whitespace_and_empty() {
        assert!(parse_object(" { } ").unwrap().is_empty());
        let f = parse_object("{ \"a\" : 1 , \"b\" : \"c\" }").unwrap();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "{", "{\"a\"}", "{\"a\":}", "{\"a\":1,}", "{\"a\":1}x", "[1]", "{\"a\":-1}"]
        {
            assert!(parse_object(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn floats_nested_objects_and_null_parse() {
        let line = Obj::new()
            .f64("mean_s", 0.007738017)
            .f64("tiny", 3.5e-9)
            .raw("inner", &Obj::new().u64("count", 2).f64("sd", 0.25).finish())
            .f64("nan", f64::NAN)
            .finish();
        let f = parse_object(&line).expect("writer output parses");
        assert_eq!(f[0].1, Value::F64(0.007738017));
        assert_eq!(f[1].1, Value::F64(3.5e-9));
        assert_eq!(f[2].1.get("count").and_then(Value::as_u64), Some(2));
        assert_eq!(f[2].1.get("sd").and_then(Value::as_f64), Some(0.25));
        assert_eq!(f[3].1, Value::Null);
        // Integers widen through as_f64; strings do not.
        assert_eq!(Value::UInt(7).as_f64(), Some(7.0));
        assert_eq!(Value::Str("7".into()).as_f64(), None);
    }

    #[test]
    fn number_edge_cases_reject() {
        for bad in ["{\"a\":1.}", "{\"a\":1e}", "{\"a\":.5}", "{\"a\":1e+}", "{\"a\":nul}"] {
            assert!(parse_object(bad).is_err(), "{bad:?} should fail");
        }
        // Whitespace inside nested objects is fine; unclosed ones are not.
        assert!(parse_object("{\"a\": { \"b\" : 1 } }").is_ok());
        assert!(parse_object("{\"a\":{\"b\":1}").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let f = parse_object("{\"a\":\"\\u00e9\\u0041\"}").unwrap();
        assert_eq!(f[0].1, Value::Str("éA".into()));
        assert!(parse_object("{\"a\":\"\\ud800\"}").is_err(), "lone surrogate rejected");
    }
}
