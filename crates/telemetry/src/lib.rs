//! The flight recorder: structured, machine-readable run telemetry.
//!
//! Every simulated run can record a [`ocpt_sim::Trace`] — a time-ordered
//! stream of structured events (checkpoints, control messages, storage
//! writes, faults). This crate turns that stream into artifacts:
//!
//! * [`export`] — the versioned **`ocpt-trace` JSONL schema** (one JSON
//!   object per line, field order fixed) and its parser. For a fixed
//!   `(config, seed)` the exported bytes are identical across thread
//!   counts and scheduler implementations; `tests/trace_determinism.rs`
//!   at the workspace root pins this the same way `grid_determinism`
//!   pins report bytes.
//! * [`span`] — **causal spans** derived from the flat event stream:
//!   checkpoint rounds, control waves (`CK_BGN` → convergence),
//!   per-process checkpoint intervals, stable-storage writes and
//!   crash/recovery outages, each with a parent link.
//! * [`analyze`] — `summary` / `diff` / `grep` over parsed traces; the
//!   `ocpt trace` subcommand is a thin wrapper around these.
//! * [`mod@timeline`] — the observatory's sim-time series: any v1 trace
//!   folded into fixed-bucket gauges (in-flight messages, open
//!   checkpoints, wave depth, …) with a sparkline rendering and a
//!   versioned `ocpt-timeline` JSON document.
//! * [`critpath`] — per-round critical paths over the span layer:
//!   trigger → wave → storage → finalize phase budgets, plus a
//!   folded-stack "flame" text for inferno / speedscope.
//! * [`mod@health`] — the `ocpt-health` v1 report: round-latency
//!   percentiles, control fan-out, and dangling-state (gap) counters,
//!   as JSON and as a human page.
//! * [`json`] — the zero-dependency JSON writer/parser the schema is
//!   built on (kept tiny and auditable; the build has no crates.io
//!   access by design).
//!
//! The span model, the field-by-field schema and its compatibility rules
//! are documented in `DESIGN.md` §8.
//!
//! # Example
//!
//! ```
//! use ocpt_sim::{ProcessId, SimTime, Trace, TraceKind};
//! use ocpt_telemetry::{analyze, export, span, TraceMeta};
//!
//! let mut t = Trace::enabled();
//! t.record_seq(SimTime::from_millis(1), ProcessId(0), TraceKind::TentativeCkpt, 1, "CT(1)");
//! t.record_seq(SimTime::from_millis(9), ProcessId(0), TraceKind::FinalizeCkpt, 1, "C(1)");
//!
//! let meta = TraceMeta { algo: "ocpt".into(), n: 1, seed: 42 };
//! let jsonl = export::to_jsonl(&meta, t.events());
//! let parsed = export::parse_jsonl(&jsonl).expect("round-trips");
//! assert_eq!(parsed.recs.len(), 2);
//!
//! let spans = span::derive_spans(&parsed.recs);
//! assert!(spans.iter().any(|s| s.kind == span::SpanKind::Round));
//! println!("{}", analyze::summary(&parsed));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod critpath;
pub mod export;
pub mod health;
pub mod json;
pub mod record;
pub mod span;
pub mod timeline;

pub use analyze::{diff, grep, render_rec, summary, DiffReport, GrepFilter};
pub use critpath::{critical_path, CritReport, RoundPath};
pub use export::{parse_jsonl, to_jsonl, SCHEMA_NAME, SCHEMA_VERSION};
pub use health::{health, Health, LatencyStats, HEALTH_SCHEMA, HEALTH_VERSION};
pub use record::{Rec, TraceFile, TraceMeta};
pub use span::{derive_spans, Span, SpanKind};
pub use timeline::{timeline, SeriesRow, Timeline, DEFAULT_BUCKETS};
