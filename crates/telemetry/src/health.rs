//! The `ocpt-health` report: one page of vital signs for a recorded run.
//!
//! Everything here is computed from the structured trace fields only
//! (`at`/`pid`/`kind`/`code`/`seq` — the `detail` string is never
//! parsed), so the report is a pure function of the trace bytes:
//! byte-identical across `--jobs` counts and scheduler kernels whenever
//! the traces are. The JSON document is versioned (`ocpt-health` v1) and
//! stays inside the schema subset `json::parse_object` accepts.
//!
//! Field groups (see `DESIGN.md` for the field-by-field schema):
//!
//! * **rounds** — started / complete / open counts plus round-latency
//!   percentiles over closed round spans (log-bucketed
//!   [`ocpt_metrics::Histogram`], ≤ 2× relative error, p0/p100 exact);
//! * **waves** — control-wave durations and fan-out: control sends per
//!   process (max and mean), ring hops, `CK_GRP_DONE` tier reports;
//! * **storage** — write counts and durations;
//! * **gaps** — what the trace left dangling: unreceived messages,
//!   unfinalized checkpoints, unfinished writes, processes still down,
//!   and the recovery counters (`recovery.resend*` events: re-sent
//!   in-transit messages vs. ones no log could regenerate).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ocpt_metrics::Histogram;

use crate::json::Obj;
use crate::record::TraceFile;
use crate::span::{derive_spans, SpanKind};

/// Schema name stamped into [`Health::to_json`].
pub const HEALTH_SCHEMA: &str = "ocpt-health";
/// Schema version stamped into [`Health::to_json`].
pub const HEALTH_VERSION: u64 = 1;

/// Latency percentiles over one span population, nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Closed spans measured.
    pub count: u64,
    /// Median (bucketed, ≤ 2× relative error).
    pub p50_ns: u64,
    /// 90th percentile (bucketed).
    pub p90_ns: u64,
    /// 99th percentile (bucketed).
    pub p99_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

impl LatencyStats {
    fn over(durations: impl Iterator<Item = u64>) -> LatencyStats {
        let mut h = Histogram::new();
        for d in durations {
            h.record(d);
        }
        LatencyStats {
            count: h.count(),
            p50_ns: h.try_quantile(0.5).unwrap_or(0),
            p90_ns: h.try_quantile(0.9).unwrap_or(0),
            p99_ns: h.try_quantile(0.99).unwrap_or(0),
            max_ns: h.try_quantile(1.0).unwrap_or(0),
        }
    }

    fn json(&self) -> String {
        Obj::new()
            .u64("count", self.count)
            .u64("p50_ns", self.p50_ns)
            .u64("p90_ns", self.p90_ns)
            .u64("p99_ns", self.p99_ns)
            .u64("max_ns", self.max_ns)
            .finish()
    }
}

/// The health report for one recorded run.
#[derive(Clone, Debug, PartialEq)]
pub struct Health {
    /// Algorithm name from the trace header.
    pub algo: String,
    /// Process count from the trace header.
    pub n: usize,
    /// Seed from the trace header.
    pub seed: u64,
    /// Events in the trace.
    pub events: u64,
    /// Timestamp of the last event.
    pub horizon_ns: u64,
    /// Rounds with any event.
    pub rounds_started: u64,
    /// Rounds whose every checkpoint finalized.
    pub rounds_complete: u64,
    /// Round-latency percentiles over complete rounds.
    pub round_latency: LatencyStats,
    /// Control-wave durations.
    pub wave_latency: LatencyStats,
    /// Stable-storage write durations.
    pub storage_latency: LatencyStats,
    /// Largest number of control sends by any single process.
    pub ctrl_fanout_max: u64,
    /// Mean control sends per process that sent any.
    pub ctrl_fanout_mean: f64,
    /// Control deliveries (ring hops across all rounds and tiers).
    pub ring_hops: u64,
    /// `CK_GRP_DONE` tier reports (> 0 marks a hierarchical run).
    pub grp_done: u64,
    /// Application messages sent but never received in the trace.
    pub app_unreceived: u64,
    /// Tentative checkpoints never finalized.
    pub tentative_open: u64,
    /// Storage writes started but not completed.
    pub writes_open: u64,
    /// Crashes recorded.
    pub crashes: u64,
    /// Processes still down at the end of the trace.
    pub down_at_end: u64,
    /// In-transit messages re-sent from a sender log during recovery
    /// (`recovery.resend` events).
    pub resends: u64,
    /// In-transit messages no sender log could regenerate
    /// (`recovery.resend_unavailable` events) — lost on recovery.
    pub lost_in_transit: u64,
}

/// Compute the health report of a parsed trace.
pub fn health(f: &TraceFile) -> Health {
    let spans = derive_spans(&f.recs);
    let closed = |kind: SpanKind| {
        spans.iter().filter(move |s| s.kind == kind && s.closed).map(|s| s.nanos())
    };
    let rounds_started = spans.iter().filter(|s| s.kind == SpanKind::Round).count() as u64;
    let rounds_complete =
        spans.iter().filter(|s| s.kind == SpanKind::Round && s.closed).count() as u64;

    let mut kind_counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut ctrl_sends_by_pid: BTreeMap<u32, u64> = BTreeMap::new();
    let mut grp_done = 0u64;
    let mut resends = 0u64;
    let mut lost = 0u64;
    for r in &f.recs {
        *kind_counts.entry(r.kind.as_str()).or_default() += 1;
        if r.kind == "ctrl_send" {
            *ctrl_sends_by_pid.entry(r.pid).or_default() += 1;
        }
        if r.code == "ctrl.ck_grp_done" {
            grp_done += 1;
        }
        if r.code == "recovery.resend" {
            resends += 1;
        }
        if r.code == "recovery.resend_unavailable" {
            lost += 1;
        }
    }
    let count = |k: &str| kind_counts.get(k).copied().unwrap_or(0);
    let fanout_max = ctrl_sends_by_pid.values().copied().max().unwrap_or(0);
    let fanout_mean = if ctrl_sends_by_pid.is_empty() {
        0.0
    } else {
        ctrl_sends_by_pid.values().sum::<u64>() as f64 / ctrl_sends_by_pid.len() as f64
    };

    Health {
        algo: f.meta.algo.clone(),
        n: f.meta.n,
        seed: f.meta.seed,
        events: f.recs.len() as u64,
        horizon_ns: f.recs.last().map_or(0, |r| r.at),
        rounds_started,
        rounds_complete,
        round_latency: LatencyStats::over(
            spans.iter().filter(|s| s.kind == SpanKind::Round && s.closed).map(|s| s.nanos()),
        ),
        wave_latency: LatencyStats::over(closed(SpanKind::Wave)),
        storage_latency: LatencyStats::over(closed(SpanKind::StorageWrite)),
        ctrl_fanout_max: fanout_max,
        ctrl_fanout_mean: fanout_mean,
        ring_hops: count("ctrl_recv"),
        grp_done,
        app_unreceived: count("app_send").saturating_sub(count("app_recv")),
        tentative_open: spans.iter().filter(|s| s.kind == SpanKind::Checkpoint && !s.closed).count()
            as u64,
        writes_open: spans.iter().filter(|s| s.kind == SpanKind::StorageWrite && !s.closed).count()
            as u64,
        crashes: count("crash"),
        down_at_end: count("crash").saturating_sub(count("recover")),
        resends,
        lost_in_transit: lost,
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

impl Health {
    /// Overall verdict: `true` when nothing is dangling — every started
    /// round completed, no open checkpoints/writes, nobody still down,
    /// and recovery lost nothing in transit.
    pub fn is_green(&self) -> bool {
        self.rounds_started == self.rounds_complete
            && self.tentative_open == 0
            && self.writes_open == 0
            && self.down_at_end == 0
            && self.lost_in_transit == 0
    }

    /// The versioned `ocpt-health` v1 JSON document (one line).
    pub fn to_json(&self) -> String {
        let rounds = Obj::new()
            .u64("started", self.rounds_started)
            .u64("complete", self.rounds_complete)
            .u64("open", self.rounds_started - self.rounds_complete)
            .raw("latency", &self.round_latency.json())
            .finish();
        let control = Obj::new()
            .u64("fanout_max", self.ctrl_fanout_max)
            .f64("fanout_mean", self.ctrl_fanout_mean)
            .u64("ring_hops", self.ring_hops)
            .u64("grp_done", self.grp_done)
            .raw("wave_latency", &self.wave_latency.json())
            .finish();
        let storage = Obj::new().raw("write_latency", &self.storage_latency.json()).finish();
        let gaps = Obj::new()
            .u64("app_unreceived", self.app_unreceived)
            .u64("tentative_open", self.tentative_open)
            .u64("writes_open", self.writes_open)
            .u64("crashes", self.crashes)
            .u64("down_at_end", self.down_at_end)
            .u64("resends", self.resends)
            .u64("lost_in_transit", self.lost_in_transit)
            .finish();
        Obj::new()
            .str("schema", HEALTH_SCHEMA)
            .u64("version", HEALTH_VERSION)
            .str("algo", &self.algo)
            .u64("n", self.n as u64)
            .u64("seed", self.seed)
            .u64("events", self.events)
            .u64("horizon_ns", self.horizon_ns)
            .str("verdict", if self.is_green() { "green" } else { "attention" })
            .raw("rounds", &rounds)
            .raw("control", &control)
            .raw("storage", &storage)
            .raw("gaps", &gaps)
            .finish()
            + "\n"
    }

    /// Human rendering. Deterministic text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "health: algo={} n={} seed={} events={} horizon={:.6}s",
            self.algo,
            self.n,
            self.seed,
            self.events,
            self.horizon_ns as f64 / 1e9,
        );
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.is_green() { "green (nothing dangling)" } else { "attention (see gaps)" }
        );
        let lat = |l: &LatencyStats| {
            format!(
                "count {} p50 {}ms p90 {}ms p99 {}ms max {}ms",
                l.count,
                fmt_ms(l.p50_ns),
                fmt_ms(l.p90_ns),
                fmt_ms(l.p99_ns),
                fmt_ms(l.max_ns)
            )
        };
        let _ = writeln!(
            out,
            "rounds: {} started, {} complete, {} open",
            self.rounds_started,
            self.rounds_complete,
            self.rounds_started - self.rounds_complete
        );
        let _ = writeln!(out, "  round latency   {}", lat(&self.round_latency));
        let _ = writeln!(out, "  wave latency    {}", lat(&self.wave_latency));
        let _ = writeln!(out, "  write latency   {}", lat(&self.storage_latency));
        let _ = writeln!(
            out,
            "control: fan-out max {} mean {:.2}, ring hops {}, grp_done {} ({})",
            self.ctrl_fanout_max,
            self.ctrl_fanout_mean,
            self.ring_hops,
            self.grp_done,
            if self.grp_done > 0 { "hierarchical" } else { "flat" },
        );
        let _ = writeln!(
            out,
            "gaps: {} unreceived msgs, {} open ckpts, {} open writes, {} crash(es), {} down at end",
            self.app_unreceived,
            self.tentative_open,
            self.writes_open,
            self.crashes,
            self.down_at_end,
        );
        let _ = writeln!(
            out,
            "recovery: {} in-transit re-sent, {} lost in transit",
            self.resends, self.lost_in_transit,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::record::{Rec, TraceMeta};

    use super::*;

    fn rec(at: u64, pid: u32, kind: &str, code: &str, seq: Option<u64>) -> Rec {
        Rec { at, pid, kind: kind.into(), code: code.into(), seq, detail: String::new() }
    }

    fn file(recs: Vec<Rec>) -> TraceFile {
        TraceFile { meta: TraceMeta { algo: "ocpt".into(), n: 2, seed: 7 }, recs }
    }

    fn healthy() -> TraceFile {
        file(vec![
            rec(10, 0, "tentative_ckpt", "ckpt.tentative", Some(1)),
            rec(20, 0, "ctrl_send", "ctrl.ck_bgn", Some(1)),
            rec(30, 1, "ctrl_recv", "ctrl.ck_bgn", Some(1)),
            rec(35, 1, "tentative_ckpt", "ckpt.tentative", Some(1)),
            rec(60, 0, "storage_start", "storage.start", Some(1)),
            rec(80, 0, "storage_done", "storage.done", Some(1)),
            rec(90, 0, "finalize_ckpt", "ckpt.finalize", Some(1)),
            rec(100, 1, "finalize_ckpt", "ckpt.finalize", Some(1)),
        ])
    }

    #[test]
    fn green_run_reports_green() {
        let h = health(&healthy());
        assert!(h.is_green());
        assert_eq!((h.rounds_started, h.rounds_complete), (1, 1));
        assert_eq!(h.round_latency.count, 1);
        assert_eq!(h.round_latency.max_ns, 90, "p100 is the exact max");
        assert_eq!(h.ctrl_fanout_max, 1);
        assert_eq!(h.ring_hops, 1);
        assert!(h.render().contains("verdict: green"));
    }

    #[test]
    fn dangling_state_flips_the_verdict() {
        let mut f = healthy();
        f.recs.push(rec(110, 1, "app_send", "app.send", None));
        f.recs.push(rec(120, 0, "crash", "fault.crash", None));
        f.recs.push(rec(130, 1, "note", "recovery.resend_unavailable", None));
        let h = health(&f);
        assert!(!h.is_green());
        assert_eq!(h.app_unreceived, 1);
        assert_eq!(h.down_at_end, 1);
        assert_eq!(h.lost_in_transit, 1);
        assert!(h.render().contains("verdict: attention"));
    }

    #[test]
    fn json_is_versioned_and_parseable() {
        let j = health(&healthy()).to_json();
        assert!(j.starts_with("{\"schema\":\"ocpt-health\",\"version\":1,"));
        let fields = crate::json::parse_object(j.trim_end()).expect("health JSON parses");
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("verdict").and_then(|v| v.as_str()), Some("green"));
        let rounds = get("rounds").expect("rounds group");
        assert_eq!(rounds.get("complete").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            rounds.get("latency").and_then(|l| l.get("max_ns")).and_then(|v| v.as_u64()),
            Some(90)
        );
        let gaps = get("gaps").expect("gaps group");
        assert_eq!(gaps.get("lost_in_transit").and_then(|v| v.as_u64()), Some(0));
    }

    #[test]
    fn empty_trace_is_green_and_zeroed() {
        let h = health(&file(vec![]));
        assert!(h.is_green());
        assert_eq!(h.events, 0);
        assert_eq!(h.round_latency.count, 0);
        assert_eq!(h.round_latency.p50_ns, 0, "empty percentiles saturate to 0, no panic");
    }
}
