//! The versioned `ocpt-trace` JSONL schema: writer and parser.
//!
//! A trace file is UTF-8 text, one JSON object per `\n`-terminated line.
//! Line 1 is the header; every following line is one event. Field order
//! is fixed (the order documented below), `seq` is omitted when the event
//! belongs to no checkpoint round, and no other field is ever omitted —
//! which makes the bytes a pure function of the recorded events, and the
//! recorded events a pure function of `(config, seed)`. The workspace
//! test `tests/trace_determinism.rs` pins this byte-determinism across
//! thread counts and scheduler implementations.
//!
//! Header (version 1):
//! `{"schema":"ocpt-trace","version":1,"algo":…,"n":…,"seed":…,"events":…}`
//!
//! Event:
//! `{"at":…,"pid":…,"kind":…,"code":…[,"seq":…],"detail":…}`
//!
//! Compatibility rules and the field-by-field reference live in
//! `DESIGN.md` §8; the parser here accepts exactly version 1 and rejects
//! anything else loudly rather than guessing.

use ocpt_sim::{TraceEvent, TraceKind};

use crate::json::{self, Obj, Value};
use crate::record::{Rec, TraceFile, TraceMeta};

/// The schema identifier every trace file declares.
pub const SCHEMA_NAME: &str = "ocpt-trace";

/// The schema version this crate writes (and the only one it reads).
pub const SCHEMA_VERSION: u64 = 1;

/// Serialize a live trace to JSONL (header + one line per event).
pub fn to_jsonl(meta: &TraceMeta, events: &[TraceEvent]) -> String {
    let recs: Vec<Rec> = events.iter().map(Rec::from_event).collect();
    recs_to_jsonl(meta, &recs)
}

/// Serialize owned records to JSONL (header + one line per record).
pub fn recs_to_jsonl(meta: &TraceMeta, recs: &[Rec]) -> String {
    let mut out = String::new();
    out.push_str(
        &Obj::new()
            .str("schema", SCHEMA_NAME)
            .u64("version", SCHEMA_VERSION)
            .str("algo", &meta.algo)
            .u64("n", meta.n as u64)
            .u64("seed", meta.seed)
            .u64("events", recs.len() as u64)
            .finish(),
    );
    out.push('\n');
    for r in recs {
        let mut o = Obj::new()
            .u64("at", r.at)
            .u64("pid", r.pid as u64)
            .str("kind", &r.kind)
            .str("code", &r.code);
        if let Some(seq) = r.seq {
            o = o.u64("seq", seq);
        }
        out.push_str(&o.str("detail", &r.detail).finish());
        out.push('\n');
    }
    out
}

fn get_u64(fields: &[(String, Value)], key: &str, what: &str) -> Result<u64, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_u64())
        .ok_or_else(|| format!("{what}: missing integer field \"{key}\""))
}

fn get_str(fields: &[(String, Value)], key: &str, what: &str) -> Result<String, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("{what}: missing string field \"{key}\""))
}

/// Parse a JSONL trace. Validates the schema name/version, every event
/// line's shape, the declared event count and monotone event times.
pub fn parse_jsonl(text: &str) -> Result<TraceFile, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty trace file")?;
    let hf = json::parse_object(header).map_err(|e| format!("header: {e}"))?;
    let schema = get_str(&hf, "schema", "header")?;
    if schema != SCHEMA_NAME {
        return Err(format!("not an {SCHEMA_NAME} file (schema=\"{schema}\")"));
    }
    let version = get_u64(&hf, "version", "header")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "unsupported {SCHEMA_NAME} version {version} (reader supports {SCHEMA_VERSION})"
        ));
    }
    let meta = TraceMeta {
        algo: get_str(&hf, "algo", "header")?,
        n: get_u64(&hf, "n", "header")? as usize,
        seed: get_u64(&hf, "seed", "header")?,
    };
    let declared = get_u64(&hf, "events", "header")?;

    let mut recs = Vec::new();
    let mut last_at = 0u64;
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        let what = format!("line {}", idx + 1);
        let f = json::parse_object(line).map_err(|e| format!("{what}: {e}"))?;
        let kind = get_str(&f, "kind", &what)?;
        if TraceKind::from_name(&kind).is_none() {
            return Err(format!("{what}: unknown event kind \"{kind}\""));
        }
        let at = get_u64(&f, "at", &what)?;
        if at < last_at {
            return Err(format!("{what}: time goes backwards ({at} < {last_at})"));
        }
        last_at = at;
        let pid = get_u64(&f, "pid", &what)?;
        let pid = u32::try_from(pid).map_err(|_| format!("{what}: pid {pid} out of range"))?;
        let seq = f
            .iter()
            .find(|(k, _)| k == "seq")
            .map(|(_, v)| v.as_u64().ok_or_else(|| format!("{what}: \"seq\" must be an integer")));
        let seq = seq.transpose()?;
        recs.push(Rec {
            at,
            pid,
            kind,
            code: get_str(&f, "code", &what)?,
            seq,
            detail: get_str(&f, "detail", &what)?,
        });
    }
    if recs.len() as u64 != declared {
        return Err(format!(
            "header declares {declared} events but file contains {} (truncated?)",
            recs.len()
        ));
    }
    Ok(TraceFile { meta, recs })
}

#[cfg(test)]
mod tests {
    use ocpt_sim::{ProcessId, SimTime, Trace};

    use super::*;

    fn sample() -> (TraceMeta, Trace) {
        let mut t = Trace::enabled();
        t.record_seq(SimTime::from_millis(1), ProcessId(0), TraceKind::TentativeCkpt, 1, "CT(1)");
        t.record_coded(
            SimTime::from_millis(2),
            ProcessId(0),
            TraceKind::CtrlSend,
            "ctrl.ck_bgn",
            Some(1),
            "-> P1",
        );
        t.record(SimTime::from_millis(3), ProcessId(1), TraceKind::AppSend, "M0 -> P0 \"q\"");
        (TraceMeta { algo: "ocpt".into(), n: 2, seed: 7 }, t)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (meta, t) = sample();
        let jsonl = to_jsonl(&meta, t.events());
        let parsed = parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed.meta, meta);
        let expect: Vec<Rec> = t.events().iter().map(Rec::from_event).collect();
        assert_eq!(parsed.recs, expect);
        // And re-serialization is byte-identical.
        assert_eq!(recs_to_jsonl(&parsed.meta, &parsed.recs), jsonl);
    }

    #[test]
    fn header_shape_is_pinned() {
        let (meta, t) = sample();
        let jsonl = to_jsonl(&meta, t.events());
        let header = jsonl.lines().next().unwrap();
        assert_eq!(
            header,
            "{\"schema\":\"ocpt-trace\",\"version\":1,\"algo\":\"ocpt\",\"n\":2,\"seed\":7,\"events\":3}"
        );
    }

    #[test]
    fn seq_field_is_omitted_when_absent() {
        let (meta, t) = sample();
        let jsonl = to_jsonl(&meta, t.events());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[1].contains("\"seq\":1"));
        assert!(!lines[3].contains("\"seq\""));
    }

    #[test]
    fn parser_rejects_corruption() {
        let (meta, t) = sample();
        let good = to_jsonl(&meta, t.events());
        // Truncation: event-count mismatch.
        let truncated: String = good.lines().take(2).map(|l| format!("{l}\n")).collect();
        assert!(parse_jsonl(&truncated).unwrap_err().contains("declares 3"));
        // Wrong schema / version.
        assert!(parse_jsonl(
            "{\"schema\":\"other\",\"version\":1,\"algo\":\"a\",\"n\":1,\"seed\":0,\"events\":0}\n"
        )
        .unwrap_err()
        .contains("not an ocpt-trace"));
        assert!(parse_jsonl("{\"schema\":\"ocpt-trace\",\"version\":2,\"algo\":\"a\",\"n\":1,\"seed\":0,\"events\":0}\n")
            .unwrap_err()
            .contains("unsupported"));
        // Unknown kind.
        let bad = good.replace("tentative_ckpt", "mystery_kind");
        assert!(parse_jsonl(&bad).unwrap_err().contains("unknown event kind"));
        // Non-monotone time.
        let swapped: String = {
            let mut l: Vec<&str> = good.lines().collect();
            l.swap(1, 3);
            l.iter().map(|s| format!("{s}\n")).collect()
        };
        assert!(parse_jsonl(&swapped).unwrap_err().contains("backwards"));
    }

    #[test]
    fn empty_trace_round_trips() {
        let meta = TraceMeta { algo: "x".into(), n: 4, seed: 1 };
        let jsonl = to_jsonl(&meta, &[]);
        let parsed = parse_jsonl(&jsonl).unwrap();
        assert!(parsed.recs.is_empty());
        assert_eq!(parsed.meta.n, 4);
    }
}
