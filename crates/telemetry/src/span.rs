//! Causal spans: intervals derived from the flat event stream.
//!
//! The paper's argument is about *intervals*, not instants — how long a
//! checkpoint round takes to converge, how long a control wave runs, how
//! storage writes overlap. `derive_spans` reconstructs those intervals
//! from a recorded event stream (no extra instrumentation: the flat
//! events carry enough structure via their `kind`/`seq` fields).
//!
//! Span kinds and their parent links:
//!
//! * **Round** — checkpoint round `seq`, globally: first event of the
//!   round anywhere → last event of the round anywhere. No parent.
//! * **Wave** — the control traffic of round `seq` (`CK_BGN` →
//!   convergence): first → last control event carrying the round.
//!   Parent: the round.
//! * **Checkpoint** — process `pid`'s checkpoint `seq`: tentative →
//!   finalize. Parent: the round. Open (unfinalized at end of trace)
//!   checkpoints are marked `closed: false`.
//! * **StorageWrite** — one stable-storage write: the k-th
//!   `storage_start` of `(pid, seq)` → the k-th `storage_done`.
//!   Parent: the checkpoint.
//! * **Outage** — `crash` → `recover` on one process; open if the
//!   process never recovered. No parent (an outage is not caused by a
//!   checkpoint round).

use std::collections::BTreeMap;

use crate::record::Rec;

/// What interval a [`Span`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A checkpoint round, globally (all processes).
    Round,
    /// The control wave of one round.
    Wave,
    /// One process's checkpoint interval (tentative → finalize).
    Checkpoint,
    /// One stable-storage write (start → durable).
    StorageWrite,
    /// One crash/recovery episode.
    Outage,
}

impl SpanKind {
    /// Stable lowercase name (used in summaries).
    pub const fn name(self) -> &'static str {
        match self {
            SpanKind::Round => "round",
            SpanKind::Wave => "wave",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::StorageWrite => "storage_write",
            SpanKind::Outage => "outage",
        }
    }
}

/// A causal interval in a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// What this interval is.
    pub kind: SpanKind,
    /// Owning process, for per-process spans (`None` for global ones).
    pub pid: Option<u32>,
    /// Checkpoint round, for round-scoped spans.
    pub seq: Option<u64>,
    /// Start, nanoseconds of virtual time.
    pub start: u64,
    /// End, nanoseconds of virtual time. For open spans this is the last
    /// contributing event seen.
    pub end: u64,
    /// Index of the enclosing span in the returned vector, if any.
    pub parent: Option<usize>,
    /// Whether the closing event was observed (`false`: the trace ended
    /// mid-interval — e.g. a checkpoint never finalized).
    pub closed: bool,
    /// Number of events that contributed to this span.
    pub events: usize,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn nanos(&self) -> u64 {
        self.end - self.start
    }

    /// Span duration in (virtual) seconds.
    pub fn secs(&self) -> f64 {
        self.nanos() as f64 / 1e9
    }
}

#[derive(Debug, Default)]
struct Window {
    start: u64,
    end: u64,
    events: usize,
    closed: bool,
}

impl Window {
    fn feed(&mut self, at: u64) {
        if self.events == 0 {
            self.start = at;
        }
        self.end = self.end.max(at);
        self.events += 1;
    }
}

/// Derive every span from a time-ordered event stream. The output order
/// is deterministic: rounds ascending by `seq`, each followed by its wave
/// and its checkpoints (ascending by pid) with their storage writes, then
/// outages (ascending by pid, then time).
pub fn derive_spans(recs: &[Rec]) -> Vec<Span> {
    // Pass 1: windows.
    let mut rounds: BTreeMap<u64, Window> = BTreeMap::new();
    let mut waves: BTreeMap<u64, Window> = BTreeMap::new();
    let mut ckpts: BTreeMap<(u32, u64), Window> = BTreeMap::new();
    let mut writes: BTreeMap<(u32, u64), Vec<Window>> = BTreeMap::new();
    let mut outages: BTreeMap<u32, Vec<Window>> = BTreeMap::new();

    for r in recs {
        match r.kind.as_str() {
            "crash" => {
                let w = outages.entry(r.pid).or_default();
                let mut win = Window::default();
                win.feed(r.at);
                w.push(win);
                continue;
            }
            "recover" => {
                if let Some(win) =
                    outages.entry(r.pid).or_default().iter_mut().rev().find(|w| !w.closed)
                {
                    win.feed(r.at);
                    win.closed = true;
                }
                continue;
            }
            _ => {}
        }
        let Some(seq) = r.seq else { continue };
        rounds.entry(seq).or_default().feed(r.at);
        match r.kind.as_str() {
            "ctrl_send" | "ctrl_recv" => waves.entry(seq).or_default().feed(r.at),
            "tentative_ckpt" => {
                ckpts.entry((r.pid, seq)).or_default().feed(r.at);
            }
            "finalize_ckpt" => {
                let w = ckpts.entry((r.pid, seq)).or_default();
                w.feed(r.at);
                w.closed = true;
            }
            "storage_start" => {
                let v = writes.entry((r.pid, seq)).or_default();
                let mut win = Window::default();
                win.feed(r.at);
                v.push(win);
            }
            "storage_done" => {
                if let Some(win) =
                    writes.entry((r.pid, seq)).or_default().iter_mut().find(|w| !w.closed)
                {
                    win.feed(r.at);
                    win.closed = true;
                }
            }
            _ => {}
        }
    }

    // Checkpoint rounds close when every checkpoint in them closed.
    // Pass 2: assemble with parent indices.
    let mut out = Vec::new();
    for (&seq, round) in &rounds {
        let members: Vec<&Window> =
            ckpts.iter().filter(|((_, s), _)| *s == seq).map(|(_, w)| w).collect();
        let round_idx = out.len();
        out.push(Span {
            kind: SpanKind::Round,
            pid: None,
            seq: Some(seq),
            start: round.start,
            end: round.end,
            parent: None,
            closed: !members.is_empty() && members.iter().all(|w| w.closed),
            events: round.events,
        });
        if let Some(w) = waves.get(&seq) {
            out.push(Span {
                kind: SpanKind::Wave,
                pid: None,
                seq: Some(seq),
                start: w.start,
                end: w.end,
                parent: Some(round_idx),
                closed: true,
                events: w.events,
            });
        }
        for (&(pid, _), w) in ckpts.iter().filter(|((_, s), _)| *s == seq) {
            let ckpt_idx = out.len();
            out.push(Span {
                kind: SpanKind::Checkpoint,
                pid: Some(pid),
                seq: Some(seq),
                start: w.start,
                end: w.end,
                parent: Some(round_idx),
                closed: w.closed,
                events: w.events,
            });
            for win in writes.get(&(pid, seq)).map_or(&[][..], |v| v.as_slice()) {
                out.push(Span {
                    kind: SpanKind::StorageWrite,
                    pid: Some(pid),
                    seq: Some(seq),
                    start: win.start,
                    end: win.end,
                    parent: Some(ckpt_idx),
                    closed: win.closed,
                    events: win.events,
                });
            }
        }
    }
    for (&pid, wins) in &outages {
        for w in wins {
            out.push(Span {
                kind: SpanKind::Outage,
                pid: Some(pid),
                seq: None,
                start: w.start,
                end: w.end,
                parent: None,
                closed: w.closed,
                events: w.events,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, pid: u32, kind: &str, seq: Option<u64>) -> Rec {
        Rec { at, pid, kind: kind.into(), code: kind.into(), seq, detail: String::new() }
    }

    #[test]
    fn full_round_produces_nested_spans() {
        let recs = vec![
            rec(10, 0, "tentative_ckpt", Some(1)),
            rec(12, 0, "ctrl_send", Some(1)),
            rec(20, 1, "ctrl_recv", Some(1)),
            rec(21, 1, "tentative_ckpt", Some(1)),
            rec(30, 0, "storage_start", Some(1)),
            rec(40, 0, "storage_done", Some(1)),
            rec(50, 0, "finalize_ckpt", Some(1)),
            rec(55, 1, "finalize_ckpt", Some(1)),
        ];
        let spans = derive_spans(&recs);
        let round = &spans[0];
        assert_eq!(round.kind, SpanKind::Round);
        assert_eq!((round.start, round.end), (10, 55));
        assert!(round.closed);

        let wave = &spans[1];
        assert_eq!(wave.kind, SpanKind::Wave);
        assert_eq!((wave.start, wave.end), (12, 20));
        assert_eq!(wave.parent, Some(0));

        let c0 = spans.iter().position(|s| s.kind == SpanKind::Checkpoint && s.pid == Some(0));
        let c0 = c0.expect("P0 checkpoint span");
        assert_eq!((spans[c0].start, spans[c0].end), (10, 50));
        let write = spans.iter().find(|s| s.kind == SpanKind::StorageWrite).unwrap();
        assert_eq!((write.start, write.end, write.parent), (30, 40, Some(c0)));
        assert!(write.closed);
        assert!((write.secs() - 1e-8).abs() < 1e-12);
    }

    #[test]
    fn unfinalized_checkpoint_is_open() {
        let recs = vec![rec(5, 0, "tentative_ckpt", Some(3))];
        let spans = derive_spans(&recs);
        assert!(!spans[0].closed, "round open");
        let c = spans.iter().find(|s| s.kind == SpanKind::Checkpoint).unwrap();
        assert!(!c.closed);
    }

    #[test]
    fn outages_pair_crash_and_recover() {
        let recs = vec![
            rec(100, 2, "crash", None),
            rec(200, 2, "recover", None),
            rec(300, 2, "crash", None),
        ];
        let spans = derive_spans(&recs);
        let outs: Vec<&Span> = spans.iter().filter(|s| s.kind == SpanKind::Outage).collect();
        assert_eq!(outs.len(), 2);
        assert_eq!((outs[0].start, outs[0].end, outs[0].closed), (100, 200, true));
        assert_eq!((outs[1].start, outs[1].end, outs[1].closed), (300, 300, false));
    }

    #[test]
    fn storage_writes_pair_in_order() {
        let recs = vec![
            rec(1, 0, "tentative_ckpt", Some(1)),
            rec(2, 0, "storage_start", Some(1)),
            rec(3, 0, "storage_start", Some(1)),
            rec(4, 0, "storage_done", Some(1)),
            rec(9, 0, "storage_done", Some(1)),
        ];
        let spans = derive_spans(&recs);
        let ws: Vec<&Span> = spans.iter().filter(|s| s.kind == SpanKind::StorageWrite).collect();
        assert_eq!(ws.len(), 2);
        assert_eq!((ws[0].start, ws[0].end), (2, 4));
        assert_eq!((ws[1].start, ws[1].end), (3, 9));
    }

    #[test]
    fn empty_stream_yields_no_spans() {
        assert!(derive_spans(&[]).is_empty());
    }
}
