//! Per-round critical-path analysis over the span layer.
//!
//! For every checkpoint round the longest causal chain is
//! trigger → `CK_BGN` → wave propagation → storage writes → last
//! finalize; its length is exactly the round span (first event of the
//! round anywhere → last event anywhere). This module partitions that
//! length into non-overlapping phases:
//!
//! * **trigger** — round start → first control event (the local
//!   tentative checkpoint that set the wave off);
//! * **wave** — first → last control event of the round (`CK_BGN`
//!   through convergence; ring hops on the flat topology, group rings
//!   plus the leader ring when hierarchical);
//! * **finalize** — last control event → round end (quiescence:
//!   processes finishing checkpoints after the wave converged), with the
//!   portion covered by stable-storage writes attributed to **storage**
//!   (the union of write windows clipped to the finalize phase, so the
//!   four numbers always sum to the round total).
//!
//! Rounds without control traffic attribute everything past the trigger
//! to finalize. Ring hops (`ctrl_recv` count) and `CK_GRP_DONE` tier
//! reports are carried as counts; any `ctrl.ck_grp_done` event marks the
//! round hierarchical. Everything derives from `at`/`pid`/`kind`/`code`/
//! `seq` — the `detail` string is never parsed.
//!
//! [`CritReport::to_folded`] emits the folded-stack text format
//! (`frame;frame value` per line) consumed by inferno / speedscope
//! flame-graph tooling; values are nanoseconds of virtual time.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::record::TraceFile;
use crate::span::{derive_spans, SpanKind};

/// The phase decomposition of one checkpoint round's critical path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundPath {
    /// Checkpoint round.
    pub seq: u64,
    /// Round start, nanoseconds of virtual time.
    pub start_ns: u64,
    /// Full critical-path length (round span), nanoseconds.
    pub total_ns: u64,
    /// Round start → first control event.
    pub trigger_ns: u64,
    /// First → last control event of the round.
    pub wave_ns: u64,
    /// Portion of the finalize phase covered by stable-storage writes.
    pub storage_ns: u64,
    /// Finalize phase remainder (quiescence not covered by writes).
    pub finalize_ns: u64,
    /// Control deliveries in the round (ring hops across all tiers).
    pub ring_hops: u64,
    /// `CK_GRP_DONE` tier reports (0 on the flat ring).
    pub grp_done: u64,
    /// Whether the wave ran the two-tier hierarchical topology.
    pub hierarchical: bool,
    /// Process whose checkpoint finalized last (the chain's tail), when
    /// any checkpoint closed.
    pub slowest_pid: Option<u32>,
    /// Whether every checkpoint of the round finalized in the trace.
    pub closed: bool,
}

/// Critical paths for every round of a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CritReport {
    /// Algorithm name from the trace header.
    pub algo: String,
    /// Process count from the trace header.
    pub n: usize,
    /// Seed from the trace header.
    pub seed: u64,
    /// One entry per round, ascending by `seq`.
    pub rounds: Vec<RoundPath>,
}

/// Sum of a set of intervals clipped to `[lo, hi]`, counting overlap
/// once (interval union).
fn union_within(mut windows: Vec<(u64, u64)>, lo: u64, hi: u64) -> u64 {
    windows.retain(|&(s, e)| e > lo && s < hi);
    for w in &mut windows {
        w.0 = w.0.max(lo);
        w.1 = w.1.min(hi);
    }
    windows.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = lo;
    for (s, e) in windows {
        let s = s.max(cursor);
        if e > s {
            covered += e - s;
            cursor = e;
        }
    }
    covered
}

/// Analyze every round's critical path.
pub fn critical_path(f: &TraceFile) -> CritReport {
    let spans = derive_spans(&f.recs);
    // Per-round raw material the span layer doesn't carry: hop and tier
    // counts, and the storage-write interval set.
    let mut hops: BTreeMap<u64, u64> = BTreeMap::new();
    let mut grp_done: BTreeMap<u64, u64> = BTreeMap::new();
    for r in &f.recs {
        let Some(seq) = r.seq else { continue };
        if r.kind == "ctrl_recv" {
            *hops.entry(seq).or_default() += 1;
        }
        if r.code == "ctrl.ck_grp_done" {
            *grp_done.entry(seq).or_default() += 1;
        }
    }

    let mut rounds = Vec::new();
    for (i, round) in spans.iter().enumerate() {
        if round.kind != SpanKind::Round {
            continue;
        }
        let seq = round.seq.expect("round spans carry their seq");
        let wave = spans
            .iter()
            .find(|s| s.kind == SpanKind::Wave && s.parent == Some(i))
            .map(|s| (s.start, s.end));
        let total = round.end - round.start;
        let (trigger, wave_ns, fin_start) = match wave {
            Some((ws, we)) => (ws.saturating_sub(round.start), we - ws, we.max(round.start)),
            None => (0, 0, round.start),
        };
        let writes: Vec<(u64, u64)> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::StorageWrite && s.seq == Some(seq) && s.closed)
            .map(|s| (s.start, s.end))
            .collect();
        let storage = union_within(writes, fin_start, round.end);
        let finalize = (round.end - fin_start).saturating_sub(storage);
        let slowest = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Checkpoint && s.parent == Some(i) && s.closed)
            .max_by_key(|s| (s.end, s.pid))
            .and_then(|s| s.pid);
        rounds.push(RoundPath {
            seq,
            start_ns: round.start,
            total_ns: total,
            trigger_ns: trigger,
            wave_ns,
            storage_ns: storage,
            finalize_ns: finalize,
            ring_hops: hops.get(&seq).copied().unwrap_or(0),
            grp_done: grp_done.get(&seq).copied().unwrap_or(0),
            hierarchical: grp_done.get(&seq).copied().unwrap_or(0) > 0,
            slowest_pid: slowest,
            closed: round.closed,
        });
    }
    CritReport { algo: f.meta.algo.clone(), n: f.meta.n, seed: f.meta.seed, rounds }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl CritReport {
    /// Human rendering: one phase-budget line per round plus a slowest
    /// phase summary. Deterministic text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path: algo={} n={} seed={} rounds={}",
            self.algo,
            self.n,
            self.seed,
            self.rounds.len()
        );
        let _ = writeln!(
            out,
            "  {:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>5} {:>8} {}",
            "round",
            "total_ms",
            "trigger",
            "wave",
            "storage",
            "finalize",
            "hops",
            "topology",
            "slowest"
        );
        for r in &self.rounds {
            let open = if r.closed { "" } else { " (open)" };
            let _ = writeln!(
                out,
                "  {:>5} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>5} {:>8} {}{}",
                r.seq,
                ms(r.total_ns),
                ms(r.trigger_ns),
                ms(r.wave_ns),
                ms(r.storage_ns),
                ms(r.finalize_ns),
                r.ring_hops,
                if r.hierarchical { "grouped" } else { "flat" },
                r.slowest_pid.map(|p| format!("P{p}")).unwrap_or_else(|| "-".into()),
                open,
            );
        }
        if let Some(worst) = self.rounds.iter().max_by_key(|r| (r.total_ns, r.seq)) {
            let phases = [
                ("trigger", worst.trigger_ns),
                ("wave", worst.wave_ns),
                ("storage", worst.storage_ns),
                ("finalize", worst.finalize_ns),
            ];
            let (name, ns) = phases.iter().max_by_key(|(_, ns)| *ns).copied().expect("four phases");
            let _ = writeln!(
                out,
                "  longest round: #{} ({:.3} ms), dominated by {} ({:.3} ms)",
                worst.seq,
                ms(worst.total_ns),
                name,
                ms(ns),
            );
        }
        out
    }

    /// Folded-stack flame text: `frames value` per line, values in
    /// nanoseconds of virtual time. Frame roots are `round#<seq>`; the
    /// phase children partition each round exactly, so the format feeds
    /// straight into inferno / speedscope.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for r in &self.rounds {
            let frames = [
                ("trigger", r.trigger_ns),
                ("wave", r.wave_ns),
                ("finalize;storage", r.storage_ns),
                ("finalize", r.finalize_ns),
            ];
            for (name, ns) in frames {
                if ns > 0 {
                    let _ = writeln!(out, "round#{};{name} {ns}", r.seq);
                }
            }
            if r.total_ns == 0 {
                let _ = writeln!(out, "round#{} 0", r.seq);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::record::{Rec, TraceMeta};

    use super::*;

    fn rec(at: u64, pid: u32, kind: &str, code: &str, seq: Option<u64>) -> Rec {
        Rec { at, pid, kind: kind.into(), code: code.into(), seq, detail: String::new() }
    }

    fn file(recs: Vec<Rec>) -> TraceFile {
        TraceFile { meta: TraceMeta { algo: "ocpt".into(), n: 2, seed: 7 }, recs }
    }

    fn round() -> TraceFile {
        file(vec![
            rec(10, 0, "tentative_ckpt", "ckpt.tentative", Some(1)),
            rec(20, 0, "ctrl_send", "ctrl.ck_bgn", Some(1)),
            rec(30, 1, "ctrl_recv", "ctrl.ck_bgn", Some(1)),
            rec(35, 1, "tentative_ckpt", "ckpt.tentative", Some(1)),
            rec(40, 1, "ctrl_send", "ctrl.ck_end", Some(1)),
            rec(50, 0, "ctrl_recv", "ctrl.ck_end", Some(1)),
            rec(60, 0, "storage_start", "storage.start", Some(1)),
            rec(80, 0, "storage_done", "storage.done", Some(1)),
            rec(90, 0, "finalize_ckpt", "ckpt.finalize", Some(1)),
            rec(100, 1, "finalize_ckpt", "ckpt.finalize", Some(1)),
        ])
    }

    #[test]
    fn phases_partition_the_round() {
        let rep = critical_path(&round());
        assert_eq!(rep.rounds.len(), 1);
        let r = &rep.rounds[0];
        assert_eq!(r.total_ns, 90, "round span 10 → 100");
        assert_eq!(r.trigger_ns, 10, "10 → first ctrl at 20");
        assert_eq!(r.wave_ns, 30, "ctrl 20 → 50");
        assert_eq!(r.storage_ns, 20, "write [60, 80] inside finalize");
        assert_eq!(r.finalize_ns, 30, "50 → 100 minus the write");
        assert_eq!(r.trigger_ns + r.wave_ns + r.storage_ns + r.finalize_ns, r.total_ns);
        assert_eq!(r.ring_hops, 2);
        assert!(!r.hierarchical);
        assert_eq!(r.slowest_pid, Some(1));
        assert!(r.closed);
    }

    #[test]
    fn grp_done_marks_hierarchical() {
        let mut f = round();
        f.recs.insert(5, rec(45, 1, "ctrl_send", "ctrl.ck_grp_done", Some(1)));
        let rep = critical_path(&f);
        let r = &rep.rounds[0];
        assert!(r.hierarchical);
        assert_eq!(r.grp_done, 1);
    }

    #[test]
    fn round_without_wave_is_all_finalize() {
        let f = file(vec![
            rec(10, 0, "tentative_ckpt", "ckpt.tentative", Some(2)),
            rec(90, 0, "finalize_ckpt", "ckpt.finalize", Some(2)),
        ]);
        let r = &critical_path(&f).rounds[0];
        assert_eq!((r.trigger_ns, r.wave_ns), (0, 0));
        assert_eq!(r.storage_ns + r.finalize_ns, r.total_ns);
    }

    #[test]
    fn folded_output_feeds_flame_tools() {
        let folded = critical_path(&round()).to_folded();
        for line in folded.lines() {
            let (frames, value) = line.rsplit_once(' ').expect("frame value");
            assert!(frames.starts_with("round#1"), "{line}");
            assert!(value.parse::<u64>().is_ok(), "{line}");
        }
        assert!(folded.contains("round#1;finalize;storage 20"));
        let total: u64 =
            folded.lines().map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap()).sum();
        assert_eq!(total, 90, "folded self-times sum to the round span");
    }

    #[test]
    fn render_names_the_longest_round() {
        let s = critical_path(&round()).render();
        assert!(s.contains("critical path: algo=ocpt n=2 seed=7 rounds=1"), "{s}");
        assert!(s.contains("longest round: #1"), "{s}");
        assert!(s.contains("flat"), "{s}");
    }
}
