//! Sim-time metric timelines folded out of a recorded trace.
//!
//! The flight recorder captures *events*; this module turns them into
//! *series* — piecewise-constant gauges sampled on a fixed bucket grid so
//! any two runs (or the same run under different `--jobs` / scheduler
//! kernels) can be compared bucket by bucket. Everything here derives
//! from the structured fields only (`at` / `pid` / `kind` / `code` /
//! `seq`); the free-form `detail` string is never parsed, per the schema
//! contract in `DESIGN.md` §8.
//!
//! Bucketing rule: the horizon `[0, last event]` is divided into
//! `buckets` equal windows of `ceil(horizon / buckets)` nanoseconds (one
//! nanosecond minimum). Each gauge series is sampled at every bucket's
//! *end* instant; the `events` series instead counts the events whose
//! timestamp falls inside the bucket (rate, not gauge). Both are pure
//! functions of the trace bytes, so the rendering and the JSON are
//! byte-identical whenever the traces are.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ocpt_metrics::StepSeries;

use crate::json::Obj;
use crate::record::TraceFile;

/// Schema name stamped into [`Timeline::to_json`].
pub const TIMELINE_SCHEMA: &str = "ocpt-timeline";
/// Schema version stamped into [`Timeline::to_json`].
pub const TIMELINE_VERSION: u64 = 1;

/// Default bucket count for the CLI rendering.
pub const DEFAULT_BUCKETS: usize = 60;

/// One named series sampled on the bucket grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesRow {
    /// Stable series name (see [`timeline`] for the catalogue).
    pub name: &'static str,
    /// One sample per bucket (gauge value at bucket end, or event count
    /// within the bucket for the `events` series).
    pub values: Vec<i64>,
    /// Largest instantaneous value the underlying series ever reached
    /// (may exceed every sample: peaks between sample points count).
    pub peak: i64,
}

/// A trace folded into fixed-bucket series.
#[derive(Clone, Debug, PartialEq)]
pub struct Timeline {
    /// Algorithm name from the trace header.
    pub algo: String,
    /// Process count from the trace header.
    pub n: usize,
    /// Seed from the trace header.
    pub seed: u64,
    /// Bucket width, nanoseconds of virtual time.
    pub bucket_ns: u64,
    /// Timestamp of the last event (the sampled horizon).
    pub horizon_ns: u64,
    /// The series, in fixed catalogue order.
    pub series: Vec<SeriesRow>,
}

/// Sample a [`StepSeries`] at the end instant of each of `buckets`
/// windows of `bucket_ns` (gauge semantics: the value in force at that
/// instant).
fn sample(s: &StepSeries, buckets: usize, bucket_ns: u64) -> Vec<i64> {
    let pts = s.points();
    let mut out = Vec::with_capacity(buckets);
    let mut i = 0usize;
    let mut current = 0i64;
    for b in 0..buckets {
        let t = (b as u64 + 1).saturating_mul(bucket_ns);
        while i < pts.len() && pts[i].0 <= t {
            current = pts[i].1;
            i += 1;
        }
        out.push(current);
    }
    out
}

/// Fold a parsed trace into its timeline. The series catalogue, in
/// output order:
///
/// * `events` — events recorded per bucket (activity rate);
/// * `in_flight_app` — application messages sent but not yet received;
/// * `in_flight_ctrl` — control messages sent but not yet received;
/// * `tentative_open` — tentative checkpoints not yet finalized;
/// * `storage_active` — stable-storage writes in progress;
/// * `durable_writes` — cumulative completed stable-storage writes;
/// * `wave_depth` — control waves concurrently open (a round's wave
///   opens at its first control event and closes at its last);
/// * `down` — processes currently crashed.
pub fn timeline(f: &TraceFile, buckets: usize) -> Timeline {
    let buckets = buckets.max(1);
    let horizon_ns = f.recs.last().map_or(0, |r| r.at);
    let bucket_ns =
        (horizon_ns / buckets as u64 + u64::from(horizon_ns % buckets as u64 != 0)).max(1);

    let mut events = vec![0i64; buckets];
    let mut in_flight_app = StepSeries::new();
    let mut in_flight_ctrl = StepSeries::new();
    let mut tentative_open = StepSeries::new();
    let mut storage_active = StepSeries::new();
    let mut durable_writes = StepSeries::new();
    let mut down = StepSeries::new();
    // Wave windows first (a wave's depth contribution spans first → last
    // control event of its round, which needs a full pass to know).
    let mut waves: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for r in &f.recs {
        if matches!(r.kind.as_str(), "ctrl_send" | "ctrl_recv") {
            if let Some(seq) = r.seq {
                let w = waves.entry(seq).or_insert((r.at, r.at));
                w.1 = w.1.max(r.at);
            }
        }
    }

    for r in &f.recs {
        let b = ((r.at / bucket_ns) as usize).min(buckets - 1);
        events[b] += 1;
        match r.kind.as_str() {
            "app_send" => in_flight_app.add(r.at, 1),
            "app_recv" => in_flight_app.add(r.at, -1),
            "ctrl_send" => in_flight_ctrl.add(r.at, 1),
            "ctrl_recv" => in_flight_ctrl.add(r.at, -1),
            "tentative_ckpt" => tentative_open.add(r.at, 1),
            "finalize_ckpt" => tentative_open.add(r.at, -1),
            "storage_start" => storage_active.add(r.at, 1),
            "storage_done" => {
                storage_active.add(r.at, -1);
                durable_writes.add(r.at, 1);
            }
            "crash" => down.add(r.at, 1),
            "recover" => down.add(r.at, -1),
            _ => {}
        }
    }
    let mut wave_depth = StepSeries::new();
    let mut edges: Vec<(u64, i64)> = Vec::with_capacity(waves.len() * 2);
    for (start, end) in waves.values() {
        edges.push((*start, 1));
        edges.push((*end, -1));
    }
    edges.sort_unstable();
    for (t, d) in edges {
        wave_depth.add(t, d);
    }

    let events_peak = events.iter().copied().max().unwrap_or(0);
    let gauge = |name: &'static str, s: &StepSeries| SeriesRow {
        name,
        values: sample(s, buckets, bucket_ns),
        peak: s.peak(),
    };
    Timeline {
        algo: f.meta.algo.clone(),
        n: f.meta.n,
        seed: f.meta.seed,
        bucket_ns,
        horizon_ns,
        series: vec![
            SeriesRow { name: "events", values: events, peak: events_peak },
            gauge("in_flight_app", &in_flight_app),
            gauge("in_flight_ctrl", &in_flight_ctrl),
            gauge("tentative_open", &tentative_open),
            gauge("storage_active", &storage_active),
            gauge("durable_writes", &durable_writes),
            gauge("wave_depth", &wave_depth),
            gauge("down", &down),
        ],
    }
}

/// Scale a sample against the row peak into one of ten glyph levels.
fn glyph(v: i64, peak: i64) -> char {
    const LEVELS: [char; 9] = ['.', ':', '-', '=', '+', 'x', 'X', '#', '@'];
    if v <= 0 || peak <= 0 {
        return ' ';
    }
    let idx = ((v as f64 / peak as f64) * LEVELS.len() as f64).ceil() as usize;
    LEVELS[idx.clamp(1, LEVELS.len()) - 1]
}

impl Timeline {
    /// Human rendering: one sparkline row per series against its own
    /// peak, plus the bucket geometry. Deterministic text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timeline: algo={} n={} seed={} horizon={:.6}s bucket={:.6}s",
            self.algo,
            self.n,
            self.seed,
            self.horizon_ns as f64 / 1e9,
            self.bucket_ns as f64 / 1e9,
        );
        let _ = writeln!(out, "scale: each row is scaled to its own peak ('@' = peak, ' ' = 0)");
        for row in &self.series {
            let line: String = row.values.iter().map(|&v| glyph(v, row.peak)).collect();
            let _ = writeln!(out, "  {:<16} |{line}| peak {}", row.name, row.peak);
        }
        out
    }

    /// The versioned `ocpt-timeline` v1 JSON object (one line). Samples
    /// are packed as a space-separated string per series, keeping the
    /// document inside the schema subset `json::parse_object` accepts
    /// (no arrays).
    pub fn to_json(&self) -> String {
        let mut o = Obj::new()
            .str("schema", TIMELINE_SCHEMA)
            .u64("version", TIMELINE_VERSION)
            .str("algo", &self.algo)
            .u64("n", self.n as u64)
            .u64("seed", self.seed)
            .u64("horizon_ns", self.horizon_ns)
            .u64("bucket_ns", self.bucket_ns)
            .u64("buckets", self.series.first().map_or(0, |s| s.values.len()) as u64);
        for row in &self.series {
            let mut packed = String::new();
            for (i, v) in row.values.iter().enumerate() {
                if i > 0 {
                    packed.push(' ');
                }
                let _ = write!(packed, "{v}");
            }
            let series =
                Obj::new().u64("peak", row.peak.max(0) as u64).str("samples", &packed).finish();
            o = o.raw(row.name, &series);
        }
        o.finish() + "\n"
    }
}

#[cfg(test)]
mod tests {
    use crate::record::{Rec, TraceMeta};

    use super::*;

    fn rec(at: u64, pid: u32, kind: &str, seq: Option<u64>) -> Rec {
        Rec { at, pid, kind: kind.into(), code: kind.into(), seq, detail: String::new() }
    }

    fn file(recs: Vec<Rec>) -> TraceFile {
        TraceFile { meta: TraceMeta { algo: "ocpt".into(), n: 2, seed: 7 }, recs }
    }

    #[test]
    fn gauges_follow_sends_and_receives() {
        let f = file(vec![
            rec(0, 0, "app_send", None),
            rec(10, 0, "app_send", None),
            rec(50, 1, "app_recv", None),
            rec(100, 1, "app_recv", None),
        ]);
        let t = timeline(&f, 10);
        assert_eq!(t.bucket_ns, 10);
        let app = &t.series[1];
        assert_eq!(app.name, "in_flight_app");
        assert_eq!(app.peak, 2);
        // Bucket ends at 10,20,...,100: two in flight until t=50, one
        // until t=100, zero at the horizon.
        assert_eq!(app.values[0], 2);
        assert_eq!(app.values[4], 1);
        assert_eq!(app.values[9], 0);
        let ev = &t.series[0];
        assert_eq!(ev.values.iter().sum::<i64>(), 4);
    }

    #[test]
    fn wave_depth_spans_first_to_last_ctrl_event() {
        let f = file(vec![
            rec(0, 0, "tentative_ckpt", Some(1)),
            rec(10, 0, "ctrl_send", Some(1)),
            rec(30, 1, "ctrl_recv", Some(1)),
            rec(90, 0, "finalize_ckpt", Some(1)),
            rec(100, 1, "finalize_ckpt", Some(1)),
        ]);
        let t = timeline(&f, 10);
        let wave = t.series.iter().find(|s| s.name == "wave_depth").unwrap();
        assert_eq!(wave.peak, 1);
        assert_eq!(wave.values[1], 1, "open inside [10, 30)");
        assert_eq!(wave.values[4], 0, "closed after the last ctrl event");
    }

    #[test]
    fn empty_trace_folds_to_flat_zeroes() {
        let t = timeline(&file(vec![]), 5);
        assert_eq!(t.horizon_ns, 0);
        assert_eq!(t.bucket_ns, 1);
        for row in &t.series {
            assert_eq!(row.values.len(), 5);
            assert!(row.values.iter().all(|&v| v == 0), "{}", row.name);
        }
        assert!(t.render().contains("timeline: algo=ocpt"));
    }

    #[test]
    fn json_is_versioned_and_parseable() {
        let f = file(vec![rec(5, 0, "app_send", None), rec(9, 1, "app_recv", None)]);
        let j = timeline(&f, 4).to_json();
        assert!(j.starts_with("{\"schema\":\"ocpt-timeline\",\"version\":1,"));
        let fields = crate::json::parse_object(j.trim_end()).expect("timeline JSON parses");
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("buckets").and_then(|v| v.as_u64()), Some(4));
        // horizon 9ns / 4 buckets → 3ns buckets sampled at t = 3,6,9,12:
        // nothing in flight at 3, the t=5 send at 6, closed by the t=9 recv.
        let app = get("in_flight_app").expect("series present");
        assert_eq!(app.get("samples").and_then(|v| v.as_str()), Some("0 1 0 0"));
    }
}
