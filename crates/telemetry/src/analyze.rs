//! Analysis over parsed traces: `summary`, `diff`, `grep`.
//!
//! These are the library halves of the `ocpt trace` subcommand; they are
//! kept here (not in the CLI crate) so tests and other tools can call
//! them directly on [`TraceFile`]s.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ocpt_sim::TRACE_KINDS;

use crate::record::{Rec, TraceFile};
use crate::span::{derive_spans, SpanKind};

fn fmt_time(nanos: u64) -> String {
    format!("{:.6}s", nanos as f64 / 1e9)
}

/// One line of human-readable rendering for an event (used by `grep`,
/// `diff` context, and tests; stable format).
pub fn render_rec(r: &Rec) -> String {
    let seq = r.seq.map(|s| format!("#{s}")).unwrap_or_default();
    format!("{:>12} P{:<3} {:<16} {}{} {}", fmt_time(r.at), r.pid, r.code, r.kind, seq, r.detail)
}

fn span_stats(out: &mut String, label: &str, secs: &[f64]) {
    if secs.is_empty() {
        let _ = writeln!(out, "  {label}: none");
        return;
    }
    let sum: f64 = secs.iter().sum();
    let max = secs.iter().cloned().fold(f64::MIN, f64::max);
    let _ = writeln!(
        out,
        "  {label}: {} (mean {:.6}s, max {:.6}s)",
        secs.len(),
        sum / secs.len() as f64,
        max
    );
}

/// Render a per-kind / per-process / per-span summary of a trace.
pub fn summary(f: &TraceFile) -> String {
    let mut out = String::new();
    let horizon = f.recs.last().map_or(0, |r| r.at);
    let _ = writeln!(
        out,
        "trace: algo={} n={} seed={} events={} span=[0, {}]",
        f.meta.algo,
        f.meta.n,
        f.meta.seed,
        f.recs.len(),
        fmt_time(horizon)
    );

    let _ = writeln!(out, "events by kind:");
    let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
    for r in &f.recs {
        *by_kind.entry(r.kind.as_str()).or_default() += 1;
    }
    // Fixed kind order (not alphabetical): reads like the lifecycle.
    for k in TRACE_KINDS {
        if let Some(c) = by_kind.get(k.name()) {
            let _ = writeln!(out, "  {:<16} {c}", k.name());
        }
    }

    let _ = writeln!(out, "events by process:");
    let mut by_pid: BTreeMap<u32, u64> = BTreeMap::new();
    for r in &f.recs {
        *by_pid.entry(r.pid).or_default() += 1;
    }
    for (pid, c) in &by_pid {
        let _ = writeln!(out, "  P{pid:<4} {c}");
    }

    let spans = derive_spans(&f.recs);
    let closed_secs = |kind: SpanKind| -> Vec<f64> {
        spans.iter().filter(|s| s.kind == kind && s.closed).map(|s| s.secs()).collect()
    };
    let _ = writeln!(out, "spans:");
    span_stats(&mut out, "rounds (complete)", &closed_secs(SpanKind::Round));
    span_stats(&mut out, "control waves", &closed_secs(SpanKind::Wave));
    span_stats(&mut out, "checkpoints (finalized)", &closed_secs(SpanKind::Checkpoint));
    span_stats(&mut out, "storage writes", &closed_secs(SpanKind::StorageWrite));
    span_stats(&mut out, "outages", &closed_secs(SpanKind::Outage));
    let open = spans.iter().filter(|s| !s.closed).count();
    if open > 0 {
        let _ = writeln!(out, "  open at end of trace: {open}");
    }
    out
}

/// Result of comparing two traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiffReport {
    /// Headers and every event agree.
    Identical,
    /// The headers disagree (different run provenance); events were not
    /// compared.
    MetaDiffers(String),
    /// The event streams diverge.
    Diverged {
        /// Index (0-based, into the event list) of the first divergence.
        index: usize,
        /// Rendered context: the last `context` common events, then the
        /// two sides of the divergence.
        rendering: String,
    },
}

impl DiffReport {
    /// True when the traces were byte-equivalent.
    pub fn is_identical(&self) -> bool {
        matches!(self, DiffReport::Identical)
    }
}

/// Compare two traces event-by-event; on divergence, show the last
/// `context` common events and both sides' next events.
pub fn diff(a: &TraceFile, b: &TraceFile, context: usize) -> DiffReport {
    if a.meta != b.meta {
        return DiffReport::MetaDiffers(format!(
            "headers differ: algo={} n={} seed={}  vs  algo={} n={} seed={}",
            a.meta.algo, a.meta.n, a.meta.seed, b.meta.algo, b.meta.n, b.meta.seed
        ));
    }
    let common = a.recs.iter().zip(&b.recs).take_while(|(x, y)| x == y).count();
    if common == a.recs.len() && common == b.recs.len() {
        return DiffReport::Identical;
    }
    let mut out = String::new();
    let _ = writeln!(out, "first divergence at event {common}:");
    let from = common.saturating_sub(context);
    for r in &a.recs[from..common] {
        let _ = writeln!(out, "    {}", render_rec(r));
    }
    match a.recs.get(common) {
        Some(r) => {
            let _ = writeln!(out, "  A {}", render_rec(r));
        }
        None => {
            let _ = writeln!(out, "  A <end of trace: {} events>", a.recs.len());
        }
    }
    match b.recs.get(common) {
        Some(r) => {
            let _ = writeln!(out, "  B {}", render_rec(r));
        }
        None => {
            let _ = writeln!(out, "  B <end of trace: {} events>", b.recs.len());
        }
    }
    DiffReport::Diverged { index: common, rendering: out }
}

/// Event filter for [`grep`]. Unset fields match everything.
#[derive(Clone, Debug, Default)]
pub struct GrepFilter {
    /// Only events on this process.
    pub pid: Option<u32>,
    /// Only events of this schema kind (e.g. `"ctrl_send"`).
    pub kind: Option<String>,
    /// Only events whose code starts with this prefix (e.g. `"ctrl."`).
    pub code_prefix: Option<String>,
    /// Only events at or after this virtual time (nanoseconds).
    pub from_nanos: Option<u64>,
    /// Only events strictly before this virtual time (nanoseconds).
    pub to_nanos: Option<u64>,
}

impl GrepFilter {
    /// Does `r` pass this filter?
    pub fn matches(&self, r: &Rec) -> bool {
        self.pid.map_or(true, |p| r.pid == p)
            && self.kind.as_deref().map_or(true, |k| r.kind == k)
            && self.code_prefix.as_deref().map_or(true, |c| r.code.starts_with(c))
            && self.from_nanos.map_or(true, |t| r.at >= t)
            && self.to_nanos.map_or(true, |t| r.at < t)
    }
}

/// Select the events of `f` that pass `filter`, in stream order.
pub fn grep<'a>(f: &'a TraceFile, filter: &GrepFilter) -> Vec<&'a Rec> {
    f.recs.iter().filter(|r| filter.matches(r)).collect()
}

#[cfg(test)]
mod tests {
    use crate::record::TraceMeta;

    use super::*;

    fn rec(at: u64, pid: u32, kind: &str, code: &str, seq: Option<u64>) -> Rec {
        Rec { at, pid, kind: kind.into(), code: code.into(), seq, detail: "d".into() }
    }

    fn file(recs: Vec<Rec>) -> TraceFile {
        TraceFile { meta: TraceMeta { algo: "ocpt".into(), n: 2, seed: 1 }, recs }
    }

    fn sample() -> TraceFile {
        file(vec![
            rec(1_000, 0, "tentative_ckpt", "ckpt.tentative", Some(1)),
            rec(2_000, 0, "ctrl_send", "ctrl.ck_bgn", Some(1)),
            rec(3_000, 1, "ctrl_recv", "ctrl.ck_bgn", Some(1)),
            rec(4_000, 1, "finalize_ckpt", "ckpt.finalize", Some(1)),
            rec(5_000, 0, "finalize_ckpt", "ckpt.finalize", Some(1)),
        ])
    }

    #[test]
    fn summary_counts_and_spans() {
        let s = summary(&sample());
        assert!(s.contains("algo=ocpt n=2 seed=1 events=5"));
        assert!(s.contains("finalize_ckpt    2"));
        assert!(s.contains("P0    3"));
        assert!(s.contains("rounds (complete): 1"));
        assert!(s.contains("control waves: 1"));
    }

    #[test]
    fn diff_detects_perturbation() {
        let a = sample();
        let mut b = sample();
        b.recs[2].at += 1;
        match diff(&a, &b, 2) {
            DiffReport::Diverged { index, rendering } => {
                assert_eq!(index, 2);
                assert!(rendering.contains("A "));
                assert!(rendering.contains("B "));
                assert!(rendering.contains("ctrl.ck_bgn"));
            }
            other => panic!("expected divergence, got {other:?}"),
        }
        assert_eq!(diff(&a, &sample(), 2), DiffReport::Identical);
    }

    #[test]
    fn diff_handles_truncation_and_meta() {
        let a = sample();
        let mut b = sample();
        b.recs.pop();
        match diff(&a, &b, 1) {
            DiffReport::Diverged { index, rendering } => {
                assert_eq!(index, 4);
                assert!(rendering.contains("<end of trace: 4 events>"));
            }
            other => panic!("{other:?}"),
        }
        let mut c = sample();
        c.meta.seed = 9;
        assert!(matches!(diff(&a, &c, 1), DiffReport::MetaDiffers(_)));
    }

    #[test]
    fn grep_filters_compose() {
        let f = sample();
        let all = grep(&f, &GrepFilter::default());
        assert_eq!(all.len(), 5);
        let ctrl =
            grep(&f, &GrepFilter { code_prefix: Some("ctrl.".into()), ..GrepFilter::default() });
        assert_eq!(ctrl.len(), 2);
        let windowed = grep(
            &f,
            &GrepFilter {
                pid: Some(0),
                from_nanos: Some(2_000),
                to_nanos: Some(5_000),
                ..GrepFilter::default()
            },
        );
        assert_eq!(windowed.len(), 1);
        assert_eq!(windowed[0].kind, "ctrl_send");
        let kinded =
            grep(&f, &GrepFilter { kind: Some("finalize_ckpt".into()), ..GrepFilter::default() });
        assert_eq!(kinded.len(), 2);
    }

    #[test]
    fn render_is_stable() {
        let r = rec(2_000, 3, "note", "recovery.line", None);
        assert_eq!(render_rec(&r), "   0.000002s P3   recovery.line    note d");
    }
}
