//! Durable checkpoint store and recovery-line bookkeeping.
//!
//! Tracks, per process and sequence number, what has actually become
//! durable on the stable-storage server. The *recovery line* at any instant
//! is the greatest sequence number `k` such that **every** process has a
//! durable checkpoint `C_{i,k}` — by the paper's Theorem 2 this `S_k` is a
//! consistent global checkpoint, so a failed system rolls back exactly to
//! it. Superseded checkpoints (< recovery line) can be garbage-collected,
//! mirroring the paper's observation that synchronous-style schemes need
//! only bounded storage.

use std::collections::BTreeMap;

use bytes::Bytes;
use ocpt_sim::{ProcessId, SimTime};

/// A durable checkpoint record.
#[derive(Clone, Debug)]
pub struct StoredCheckpoint {
    /// Owning process.
    pub pid: ProcessId,
    /// Checkpoint sequence number (the paper's `csn`).
    pub csn: u64,
    /// Encoded tentative-checkpoint state `CT_{i,k}`.
    pub state: Bytes,
    /// Encoded message log `logSet_{i,k}`.
    pub log: Bytes,
    /// When the write became durable.
    pub durable_at: SimTime,
}

impl StoredCheckpoint {
    /// Total stored bytes (state + log).
    pub fn total_bytes(&self) -> usize {
        self.state.len() + self.log.len()
    }
}

/// The durable checkpoint store for all processes.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    n: usize,
    /// `(csn, pid)` ordering gives cheap per-csn scans.
    items: BTreeMap<(u64, u32), StoredCheckpoint>,
    gc_below: u64,
}

impl CheckpointStore {
    /// A store for `n` processes.
    pub fn new(n: usize) -> Self {
        CheckpointStore { n, items: BTreeMap::new(), gc_below: 0 }
    }

    /// Record a checkpoint as durable. Overwriting the same `(pid, csn)` is
    /// a protocol error and panics in debug builds.
    pub fn put(&mut self, ckpt: StoredCheckpoint) {
        let key = (ckpt.csn, ckpt.pid.0);
        let prev = self.items.insert(key, ckpt);
        debug_assert!(prev.is_none(), "duplicate durable checkpoint {key:?}");
    }

    /// Fetch a durable checkpoint.
    pub fn get(&self, pid: ProcessId, csn: u64) -> Option<&StoredCheckpoint> {
        self.items.get(&(csn, pid.0))
    }

    /// How many processes have a durable checkpoint with this `csn`.
    pub fn durable_count(&self, csn: u64) -> usize {
        self.items.range((csn, 0)..=(csn, u32::MAX)).count()
    }

    /// The recovery line: greatest `csn` durable on **all** processes.
    ///
    /// Sequence number 0 (the initial checkpoints) is assumed durable by
    /// construction, so the line is always defined.
    pub fn recovery_line(&self) -> u64 {
        let mut line = 0;
        let mut csns: Vec<u64> = self.items.keys().map(|&(c, _)| c).collect();
        csns.dedup();
        for csn in csns {
            if csn > 0 && self.durable_count(csn) == self.n {
                line = line.max(csn);
            }
        }
        line
    }

    /// The most recent durable checkpoint of `pid` with `csn ≤ bound`.
    pub fn latest_at_most(&self, pid: ProcessId, bound: u64) -> Option<&StoredCheckpoint> {
        self.items.range(..=(bound, u32::MAX)).rev().map(|(_, v)| v).find(|v| v.pid == pid)
    }

    /// Drop all checkpoints with `csn < line` (bounded storage). Returns
    /// the number of records collected.
    pub fn gc_below(&mut self, line: u64) -> usize {
        let before = self.items.len();
        self.items.retain(|&(csn, _), _| csn >= line);
        self.gc_below = self.gc_below.max(line);
        before - self.items.len()
    }

    /// Drop all checkpoints with `csn > line`. Rollback recovery
    /// invalidates post-line checkpoints: their cuts mix pre-rollback
    /// events with the re-executed future. Returns the number dropped.
    pub fn truncate_above(&mut self, line: u64) -> usize {
        let before = self.items.len();
        self.items.retain(|&(csn, _), _| csn <= line);
        before - self.items.len()
    }

    /// Total bytes currently held.
    pub fn total_bytes(&self) -> usize {
        self.items.values().map(|c| c.total_bytes()).sum()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ck(pid: u32, csn: u64, at: u64) -> StoredCheckpoint {
        StoredCheckpoint {
            pid: ProcessId(pid),
            csn,
            state: Bytes::from_static(b"state"),
            log: Bytes::from_static(b"log"),
            durable_at: SimTime::from_nanos(at),
        }
    }

    #[test]
    fn recovery_line_requires_all_processes() {
        let mut s = CheckpointStore::new(3);
        assert_eq!(s.recovery_line(), 0);
        s.put(ck(0, 1, 10));
        s.put(ck(1, 1, 20));
        assert_eq!(s.recovery_line(), 0);
        s.put(ck(2, 1, 30));
        assert_eq!(s.recovery_line(), 1);
    }

    #[test]
    fn recovery_line_takes_greatest_complete() {
        let mut s = CheckpointStore::new(2);
        s.put(ck(0, 1, 1));
        s.put(ck(1, 1, 2));
        s.put(ck(0, 2, 3));
        s.put(ck(1, 2, 4));
        s.put(ck(0, 3, 5)); // csn 3 incomplete
        assert_eq!(s.recovery_line(), 2);
    }

    #[test]
    fn latest_at_most_picks_bound() {
        let mut s = CheckpointStore::new(1);
        s.put(ck(0, 1, 1));
        s.put(ck(0, 3, 3));
        assert_eq!(s.latest_at_most(ProcessId(0), 2).unwrap().csn, 1);
        assert_eq!(s.latest_at_most(ProcessId(0), 3).unwrap().csn, 3);
        assert!(s.latest_at_most(ProcessId(0), 0).is_none());
    }

    #[test]
    fn gc_drops_old_records() {
        let mut s = CheckpointStore::new(2);
        s.put(ck(0, 1, 1));
        s.put(ck(1, 1, 1));
        s.put(ck(0, 2, 2));
        s.put(ck(1, 2, 2));
        let dropped = s.gc_below(2);
        assert_eq!(dropped, 2);
        assert_eq!(s.len(), 2);
        assert!(s.get(ProcessId(0), 1).is_none());
        assert!(s.get(ProcessId(0), 2).is_some());
    }

    #[test]
    fn truncate_above_drops_new_generations() {
        let mut s = CheckpointStore::new(2);
        s.put(ck(0, 1, 1));
        s.put(ck(1, 1, 1));
        s.put(ck(0, 2, 2));
        s.put(ck(1, 3, 3));
        assert_eq!(s.truncate_above(1), 2);
        assert_eq!(s.len(), 2);
        assert!(s.get(ProcessId(0), 2).is_none());
        assert_eq!(s.recovery_line(), 1);
        // Re-inserting a truncated (pid, csn) is now legal.
        s.put(ck(0, 2, 9));
        assert!(s.get(ProcessId(0), 2).is_some());
    }

    #[test]
    fn byte_accounting() {
        let mut s = CheckpointStore::new(1);
        s.put(ck(0, 1, 1));
        assert_eq!(s.total_bytes(), 8); // "state" + "log"
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn duplicate_put_panics_in_debug() {
        let mut s = CheckpointStore::new(1);
        s.put(ck(0, 1, 1));
        s.put(ck(0, 1, 2));
    }
}
