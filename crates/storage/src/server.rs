//! The shared stable-storage server (network file server) model.
//!
//! The paper's motivation: synchronous checkpointing makes many processes
//! write their checkpoints to the (single, shared) stable storage at the
//! same time, and the resulting contention inflates checkpointing overhead
//! (§1, citing Vaidya's staggered checkpointing). We model the server as a
//! **processor-sharing queue**: `k` concurrent writers each receive `B/k`
//! of the bandwidth `B`, plus a fixed per-request overhead. This captures
//! exactly the effect under study — a write that would take `d` alone takes
//! up to `k·d` under contention — while staying deterministic.
//!
//! The server is driven by the simulation loop: `submit` adds work,
//! `advance` progresses it to the current instant, `take_completed` drains
//! finished writes, and `next_completion` tells the driver when to look
//! again.

use ocpt_metrics::{StepSeries, Summary};
use ocpt_sim::{ProcessId, SimDuration, SimTime, StorageReqId};

/// One finished write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The request that finished.
    pub req: StorageReqId,
    /// The process that issued it.
    pub pid: ProcessId,
    /// When it became durable.
    pub at: SimTime,
}

#[derive(Clone, Debug)]
struct Active {
    req: StorageReqId,
    pid: ProcessId,
    /// Remaining work in bytes (includes the overhead surcharge).
    remaining: f64,
    submitted: SimTime,
    /// Contention-free duration for this request (for stall accounting).
    ideal: SimDuration,
}

/// Configuration of the storage server.
#[derive(Clone, Copy, Debug)]
pub struct StorageConfig {
    /// Aggregate write bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Fixed per-request overhead (RPC + seek), charged as extra work.
    pub per_request_overhead: SimDuration,
}

impl StorageConfig {
    /// A 2007-ish network file server: 50 MB/s, 2 ms per-request overhead.
    pub fn default_nfs() -> Self {
        StorageConfig {
            bandwidth_bps: 50.0 * 1024.0 * 1024.0,
            per_request_overhead: SimDuration::from_millis(2),
        }
    }

    fn overhead_bytes(&self) -> f64 {
        self.bandwidth_bps * self.per_request_overhead.as_secs_f64()
    }
}

/// Processor-sharing stable-storage server with contention metrics.
#[derive(Debug)]
pub struct StorageServer {
    cfg: StorageConfig,
    /// Work below this many bytes counts as finished: the amount one
    /// writer can move in 1 ns. Guarantees every non-finished request is
    /// at least 1 ns from completion, so the simulation always advances.
    tolerance: f64,
    active: Vec<Active>,
    last_advance: SimTime,
    completed: Vec<Completion>,
    // --- metrics ---
    writers: StepSeries,
    latency: Summary,
    stall: SimDuration,
    total_bytes: u64,
    total_requests: u64,
    busy: SimDuration,
}

impl StorageServer {
    /// A fresh server.
    pub fn new(cfg: StorageConfig) -> Self {
        assert!(cfg.bandwidth_bps > 0.0, "bandwidth must be positive");
        StorageServer {
            cfg,
            tolerance: (cfg.bandwidth_bps * 1e-9).max(1e-6),
            active: Vec::new(),
            last_advance: SimTime::ZERO,
            completed: Vec::new(),
            writers: StepSeries::new(),
            latency: Summary::new(),
            stall: SimDuration::ZERO,
            total_bytes: 0,
            total_requests: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// Submit a write of `bytes` at `now`.
    pub fn submit(&mut self, now: SimTime, pid: ProcessId, req: StorageReqId, bytes: u64) {
        self.advance(now);
        let work = bytes as f64 + self.cfg.overhead_bytes();
        let ideal = SimDuration::from_secs_f64(work / self.cfg.bandwidth_bps);
        self.active.push(Active { req, pid, remaining: work, submitted: now, ideal });
        self.total_bytes += bytes;
        self.total_requests += 1;
        self.writers.add(now.as_nanos(), 1);
    }

    /// Progress all active requests to `now`, completing those that finish.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_advance, "storage time went backwards");
        let mut t = self.last_advance;
        self.complete_done(t);
        while !self.active.is_empty() && t < now {
            let k = self.active.len() as f64;
            // Time until the request with the least remaining work finishes,
            // if membership stays fixed.
            let min_rem = self.active.iter().map(|a| a.remaining).fold(f64::INFINITY, f64::min);
            let to_finish = SimDuration::from_secs_f64(min_rem * k / self.cfg.bandwidth_bps);
            let window = now - t;
            let step = to_finish.min(window);
            let progressed = self.cfg.bandwidth_bps * step.as_secs_f64() / k;
            for a in &mut self.active {
                a.remaining -= progressed;
            }
            self.busy += step;
            t += step;
            self.complete_done(t);
        }
        self.last_advance = now;
    }

    /// Complete everything that hit (or numerically crossed) zero.
    fn complete_done(&mut self, t: SimTime) {
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].remaining <= self.tolerance {
                let a = self.active.swap_remove(i);
                let took = t.saturating_since(a.submitted);
                self.latency.record(took.as_secs_f64());
                self.stall += took - a.ideal;
                self.writers.add(t.as_nanos(), -1);
                self.completed.push(Completion { req: a.req, pid: a.pid, at: t });
            } else {
                i += 1;
            }
        }
    }

    /// Drain writes that completed during past `advance` calls, in
    /// completion order.
    pub fn take_completed(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completed)
    }

    /// When the earliest active request will finish if nothing else arrives.
    pub fn next_completion(&self) -> Option<SimTime> {
        if self.active.is_empty() {
            return None;
        }
        let k = self.active.len() as f64;
        let min_rem = self.active.iter().map(|a| a.remaining).fold(f64::INFINITY, f64::min);
        if min_rem <= self.tolerance {
            return Some(self.last_advance);
        }
        Some(self.last_advance + SimDuration::from_secs_f64(min_rem * k / self.cfg.bandwidth_bps))
    }

    /// Number of writes in flight.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    // --- metrics accessors ---

    /// Peak number of concurrent writers observed.
    pub fn peak_writers(&self) -> i64 {
        self.writers.peak()
    }

    /// Time-weighted mean number of concurrent writers over `[0, end]`.
    pub fn mean_writers(&self, end: SimTime) -> f64 {
        self.writers.time_weighted_mean(end.as_nanos())
    }

    /// Total time ≥ 2 writers were active (pure contention time).
    pub fn contended_time(&self, end: SimTime) -> SimDuration {
        SimDuration::from_nanos(self.writers.time_at_or_above(2, end.as_nanos()))
    }

    /// Per-write latency statistics (seconds).
    pub fn latency(&self) -> &Summary {
        &self.latency
    }

    /// Total extra waiting caused by contention, summed over writes.
    pub fn total_stall(&self) -> SimDuration {
        self.stall
    }

    /// Total payload bytes accepted.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total writes accepted.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Total time the server was serving at least one request.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// The raw concurrent-writers series (for plotting).
    pub fn writers_series(&self) -> &StepSeries {
        &self.writers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bps: f64) -> StorageConfig {
        StorageConfig { bandwidth_bps: bps, per_request_overhead: SimDuration::ZERO }
    }

    fn rid(i: u64) -> StorageReqId {
        StorageReqId(i)
    }

    #[test]
    fn single_write_takes_ideal_time() {
        // 1000 B at 1000 B/s = 1 s.
        let mut s = StorageServer::new(cfg(1000.0));
        s.submit(SimTime::ZERO, ProcessId(0), rid(1), 1000);
        assert_eq!(s.in_flight(), 1);
        let done_at = s.next_completion().unwrap();
        assert_eq!(done_at, SimTime::from_secs(1));
        s.advance(done_at);
        let done = s.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, SimTime::from_secs(1));
        assert_eq!(s.in_flight(), 0);
        assert!(s.total_stall().as_nanos() < 1_000); // no contention
    }

    #[test]
    fn two_concurrent_writes_halve_bandwidth() {
        let mut s = StorageServer::new(cfg(1000.0));
        s.submit(SimTime::ZERO, ProcessId(0), rid(1), 1000);
        s.submit(SimTime::ZERO, ProcessId(1), rid(2), 1000);
        s.advance(SimTime::from_secs(3));
        let done = s.take_completed();
        assert_eq!(done.len(), 2);
        // Both finish at t=2s (each got 500 B/s).
        assert_eq!(done[0].at, SimTime::from_secs(2));
        assert_eq!(done[1].at, SimTime::from_secs(2));
        assert_eq!(s.peak_writers(), 2);
        // Each stalled ~1 s beyond its 1 s ideal.
        let stall = s.total_stall().as_secs_f64();
        assert!((stall - 2.0).abs() < 1e-3, "stall={stall}");
    }

    #[test]
    fn staggered_writes_do_not_contend() {
        let mut s = StorageServer::new(cfg(1000.0));
        s.submit(SimTime::ZERO, ProcessId(0), rid(1), 1000);
        s.advance(SimTime::from_secs(1));
        s.submit(SimTime::from_secs(1), ProcessId(1), rid(2), 1000);
        s.advance(SimTime::from_secs(2));
        let done = s.take_completed();
        assert_eq!(done.len(), 2);
        assert_eq!(s.peak_writers(), 1);
        assert_eq!(s.contended_time(SimTime::from_secs(2)), SimDuration::ZERO);
        assert!(s.total_stall().as_secs_f64() < 1e-6);
    }

    #[test]
    fn mixed_sizes_complete_in_order_of_remaining_work() {
        let mut s = StorageServer::new(cfg(1000.0));
        s.submit(SimTime::ZERO, ProcessId(0), rid(1), 200);
        s.submit(SimTime::ZERO, ProcessId(1), rid(2), 1000);
        // Small one finishes first: it needs 200 B at 500 B/s = 0.4 s.
        s.advance(SimTime::from_millis(400));
        let d1 = s.take_completed();
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].req, rid(1));
        // Big one then runs alone: 800 B left / 1000 B/s = 0.8 s more.
        let t2 = s.next_completion().unwrap();
        assert_eq!(t2, SimTime::from_millis(1200));
        s.advance(t2);
        assert_eq!(s.take_completed().len(), 1);
    }

    #[test]
    fn late_arrival_shares_from_arrival_only() {
        let mut s = StorageServer::new(cfg(1000.0));
        s.submit(SimTime::ZERO, ProcessId(0), rid(1), 1000);
        // After 0.5 s alone, 500 B remain.
        s.submit(SimTime::from_millis(500), ProcessId(1), rid(2), 500);
        // Both now need 500 B at 500 B/s = 1 s: both done at t=1.5 s.
        s.advance(SimTime::from_secs(2));
        let done = s.take_completed();
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|c| c.at == SimTime::from_millis(1500)));
    }

    #[test]
    fn overhead_is_charged() {
        let c = StorageConfig {
            bandwidth_bps: 1000.0,
            per_request_overhead: SimDuration::from_secs(1),
        };
        let mut s = StorageServer::new(c);
        s.submit(SimTime::ZERO, ProcessId(0), rid(1), 0);
        // 0 payload bytes + 1 s overhead.
        assert_eq!(s.next_completion().unwrap(), SimTime::from_secs(1));
    }

    #[test]
    fn busy_time_accumulates_only_when_active() {
        let mut s = StorageServer::new(cfg(1000.0));
        s.advance(SimTime::from_secs(5)); // idle
        assert_eq!(s.busy_time(), SimDuration::ZERO);
        s.submit(SimTime::from_secs(5), ProcessId(0), rid(1), 1000);
        s.advance(SimTime::from_secs(10));
        assert_eq!(s.busy_time(), SimDuration::from_secs(1));
        assert_eq!(s.total_bytes(), 1000);
        assert_eq!(s.total_requests(), 1);
    }

    #[test]
    fn mean_writers_time_weighted() {
        let mut s = StorageServer::new(cfg(1000.0));
        s.submit(SimTime::ZERO, ProcessId(0), rid(1), 1000); // busy [0,1)
        s.advance(SimTime::from_secs(4));
        let m = s.mean_writers(SimTime::from_secs(4));
        assert!((m - 0.25).abs() < 1e-9, "m={m}");
    }
}
