//! Local-memory staging accounting.
//!
//! Under the paper's algorithm a tentative checkpoint and its growing
//! message log live in the process's **local memory** until finalization
//! flushes them to stable storage. That is the mechanism that removes
//! contention — but it costs memory. This module accounts for that cost so
//! experiment E5 can report it: bytes staged per process over time, and the
//! peak across the run.

use ocpt_sim::{ProcessId, SimTime};

/// Per-process staging accounting.
#[derive(Debug)]
pub struct StagingArea {
    current: Vec<u64>,
    peak: Vec<u64>,
    peak_total: u64,
    peak_total_at: SimTime,
}

impl StagingArea {
    /// A staging area for `n` processes.
    pub fn new(n: usize) -> Self {
        StagingArea {
            current: vec![0; n],
            peak: vec![0; n],
            peak_total: 0,
            peak_total_at: SimTime::ZERO,
        }
    }

    /// `pid` stages `bytes` more (tentative checkpoint taken or message
    /// appended to the in-memory log).
    pub fn stage(&mut self, now: SimTime, pid: ProcessId, bytes: u64) {
        let c = &mut self.current[pid.index()];
        *c += bytes;
        let c = *c;
        let p = &mut self.peak[pid.index()];
        *p = (*p).max(c);
        let total: u64 = self.current.iter().sum();
        if total > self.peak_total {
            self.peak_total = total;
            self.peak_total_at = now;
        }
    }

    /// `pid` released `bytes` (flushed to stable storage or discarded at a
    /// crash). Releasing more than staged is a logic error.
    pub fn release(&mut self, pid: ProcessId, bytes: u64) {
        let c = &mut self.current[pid.index()];
        debug_assert!(*c >= bytes, "releasing more than staged");
        *c = c.saturating_sub(bytes);
    }

    /// `pid` lost all volatile staging (crash).
    pub fn drop_all(&mut self, pid: ProcessId) -> u64 {
        std::mem::take(&mut self.current[pid.index()])
    }

    /// Bytes currently staged by `pid`.
    pub fn staged(&self, pid: ProcessId) -> u64 {
        self.current[pid.index()]
    }

    /// Peak bytes ever staged by `pid`.
    pub fn peak_of(&self, pid: ProcessId) -> u64 {
        self.peak[pid.index()]
    }

    /// Peak simultaneous staging across all processes, and when it occurred.
    pub fn peak_total(&self) -> (u64, SimTime) {
        (self.peak_total, self.peak_total_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_release_roundtrip() {
        let mut s = StagingArea::new(2);
        s.stage(SimTime::from_nanos(1), ProcessId(0), 100);
        s.stage(SimTime::from_nanos(2), ProcessId(0), 50);
        assert_eq!(s.staged(ProcessId(0)), 150);
        s.release(ProcessId(0), 150);
        assert_eq!(s.staged(ProcessId(0)), 0);
        assert_eq!(s.peak_of(ProcessId(0)), 150);
    }

    #[test]
    fn peak_total_tracks_sum() {
        let mut s = StagingArea::new(2);
        s.stage(SimTime::from_nanos(1), ProcessId(0), 100);
        s.stage(SimTime::from_nanos(2), ProcessId(1), 300);
        s.release(ProcessId(0), 100);
        s.stage(SimTime::from_nanos(3), ProcessId(0), 50);
        let (peak, at) = s.peak_total();
        assert_eq!(peak, 400);
        assert_eq!(at, SimTime::from_nanos(2));
    }

    #[test]
    fn crash_drops_everything() {
        let mut s = StagingArea::new(1);
        s.stage(SimTime::ZERO, ProcessId(0), 77);
        assert_eq!(s.drop_all(ProcessId(0)), 77);
        assert_eq!(s.staged(ProcessId(0)), 0);
        assert_eq!(s.peak_of(ProcessId(0)), 77);
    }
}
