//! # ocpt-storage — the shared stable-storage substrate
//!
//! Models the network file server the paper keeps pointing at: one shared
//! resource every process must eventually write checkpoints to.
//!
//! * [`StorageServer`] — a deterministic processor-sharing queue: `k`
//!   concurrent writers each get `1/k` of the bandwidth. Contention =
//!   measurable stall, exactly the quantity the paper's design minimises.
//! * [`CheckpointStore`] — what is durably stored, per `(process, csn)`,
//!   with recovery-line computation and garbage collection.
//! * [`StagingArea`] — the local-memory cost of optimism: tentative
//!   checkpoints and message logs held in volatile memory until finalize.
//! * [`codec`] — versioned binary framing for durable records, so byte
//!   accounting in the experiments includes real header overhead.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod server;
pub mod staging;
pub mod store;

pub use codec::{decode_checkpoint, encode_checkpoint, CodecError};
pub use server::{Completion, StorageConfig, StorageServer};
pub use staging::StagingArea;
pub use store::{CheckpointStore, StoredCheckpoint};
