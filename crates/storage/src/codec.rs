//! Binary framing for durable checkpoint records.
//!
//! Checkpoints survive crashes, so they cross a durability boundary and get
//! an explicit, versioned wire format (magic + version + fields). Byte
//! counts produced here are what the storage server is charged with, so the
//! contention experiments account header overhead faithfully.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ocpt_sim::{ProcessId, SimTime};

use crate::store::StoredCheckpoint;

/// Format magic: "OCPT".
pub const MAGIC: u32 = 0x4F43_5054;
/// Current format version.
pub const VERSION: u16 = 1;

/// Errors from decoding a checkpoint record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer ended before the fixed header.
    Truncated,
    /// Magic mismatch — not a checkpoint record.
    BadMagic(u32),
    /// Unknown version.
    BadVersion(u16),
    /// A length field points past the end of the buffer.
    BadLength,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record truncated"),
            CodecError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            CodecError::BadLength => write!(f, "length field out of bounds"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Size in bytes of the fixed header.
pub const HEADER_BYTES: usize = 4 + 2 + 4 + 8 + 8 + 4 + 4;

/// Encode a checkpoint record to a self-describing byte string.
pub fn encode_checkpoint(c: &StoredCheckpoint) -> Bytes {
    let mut b = BytesMut::with_capacity(HEADER_BYTES + c.state.len() + c.log.len());
    b.put_u32(MAGIC);
    b.put_u16(VERSION);
    b.put_u32(c.pid.0);
    b.put_u64(c.csn);
    b.put_u64(c.durable_at.as_nanos());
    b.put_u32(c.state.len() as u32);
    b.put_u32(c.log.len() as u32);
    b.extend_from_slice(&c.state);
    b.extend_from_slice(&c.log);
    b.freeze()
}

/// Decode a checkpoint record.
pub fn decode_checkpoint(mut buf: Bytes) -> Result<StoredCheckpoint, CodecError> {
    if buf.len() < HEADER_BYTES {
        return Err(CodecError::Truncated);
    }
    let magic = buf.get_u32();
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let pid = ProcessId(buf.get_u32());
    let csn = buf.get_u64();
    let durable_at = SimTime::from_nanos(buf.get_u64());
    let state_len = buf.get_u32() as usize;
    let log_len = buf.get_u32() as usize;
    if buf.len() != state_len + log_len {
        return Err(CodecError::BadLength);
    }
    let state = buf.split_to(state_len);
    let log = buf;
    Ok(StoredCheckpoint { pid, csn, state, log, durable_at })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StoredCheckpoint {
        StoredCheckpoint {
            pid: ProcessId(3),
            csn: 42,
            state: Bytes::from_static(b"the-process-state"),
            log: Bytes::from_static(b"m1m2m3"),
            durable_at: SimTime::from_millis(77),
        }
    }

    #[test]
    fn round_trip() {
        let c = sample();
        let enc = encode_checkpoint(&c);
        assert_eq!(enc.len(), HEADER_BYTES + c.state.len() + c.log.len());
        let d = decode_checkpoint(enc).unwrap();
        assert_eq!(d.pid, c.pid);
        assert_eq!(d.csn, c.csn);
        assert_eq!(d.state, c.state);
        assert_eq!(d.log, c.log);
        assert_eq!(d.durable_at, c.durable_at);
    }

    #[test]
    fn empty_payloads_round_trip() {
        let c = StoredCheckpoint {
            pid: ProcessId(0),
            csn: 0,
            state: Bytes::new(),
            log: Bytes::new(),
            durable_at: SimTime::ZERO,
        };
        let d = decode_checkpoint(encode_checkpoint(&c)).unwrap();
        assert_eq!(d.total_bytes(), 0);
    }

    #[test]
    fn truncated_rejected() {
        let enc = encode_checkpoint(&sample());
        let cut = enc.slice(0..HEADER_BYTES - 1);
        assert!(matches!(decode_checkpoint(cut), Err(CodecError::Truncated)));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = BytesMut::from(&encode_checkpoint(&sample())[..]);
        raw[0] ^= 0xFF;
        assert!(matches!(decode_checkpoint(raw.freeze()), Err(CodecError::BadMagic(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let mut raw = BytesMut::from(&encode_checkpoint(&sample())[..]);
        raw[4] = 0xEE;
        assert!(matches!(decode_checkpoint(raw.freeze()), Err(CodecError::BadVersion(_))));
    }

    #[test]
    fn bad_length_rejected() {
        let enc = encode_checkpoint(&sample());
        // Chop one payload byte: lengths no longer match.
        let cut = enc.slice(0..enc.len() - 1);
        assert!(matches!(decode_checkpoint(cut), Err(CodecError::BadLength)));
    }

    #[test]
    fn error_display() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::BadMagic(1).to_string().contains("magic"));
    }
}
