//! Property tests for the processor-sharing storage server: conservation
//! of work, fairness, and ordering invariants under random workloads.

use ocpt_sim::{ProcessId, SimDuration, SimTime, StorageReqId};
use ocpt_storage::{StorageConfig, StorageServer};
use proptest::prelude::*;

fn cfg(bps: f64) -> StorageConfig {
    StorageConfig { bandwidth_bps: bps, per_request_overhead: SimDuration::ZERO }
}

proptest! {
    /// Every submitted request eventually completes, exactly once.
    #[test]
    fn all_requests_complete_exactly_once(
        subs in prop::collection::vec((0u64..1_000_000, 1u64..200_000), 1..40),
    ) {
        let mut s = StorageServer::new(cfg(1_000_000.0));
        let mut t = SimTime::ZERO;
        for (i, (gap_us, bytes)) in subs.iter().enumerate() {
            t += SimDuration::from_micros(*gap_us);
            s.submit(t, ProcessId((i % 7) as u32), StorageReqId(i as u64), *bytes);
        }
        // Drain.
        let mut done = Vec::new();
        for _ in 0..subs.len() + 1 {
            match s.next_completion() {
                Some(at) => {
                    s.advance(at + SimDuration::from_nanos(1));
                    done.extend(s.take_completed());
                }
                None => break,
            }
        }
        prop_assert_eq!(done.len(), subs.len());
        let mut ids: Vec<u64> = done.iter().map(|c| c.req.0).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), subs.len(), "duplicate completion");
        prop_assert_eq!(s.in_flight(), 0);
    }

    /// No write finishes faster than its contention-free ideal, and total
    /// busy time never exceeds elapsed time (the server is one resource).
    #[test]
    fn latency_at_least_ideal_and_busy_bounded(
        subs in prop::collection::vec((0u64..100_000, 1u64..100_000), 1..24),
    ) {
        let bps = 1_000_000.0;
        let mut s = StorageServer::new(cfg(bps));
        let mut t = SimTime::ZERO;
        let mut min_ideal = f64::INFINITY;
        for (i, (gap_us, bytes)) in subs.iter().enumerate() {
            t += SimDuration::from_micros(*gap_us);
            min_ideal = min_ideal.min(*bytes as f64 / bps);
            s.submit(t, ProcessId(0), StorageReqId(i as u64), *bytes);
        }
        while let Some(at) = s.next_completion() {
            s.advance(at + SimDuration::from_nanos(1));
            s.take_completed();
        }
        let end = s.busy_time(); // busy ≤ elapsed holds trivially; check latency
        prop_assert!(s.latency().min() + 1e-6 >= min_ideal.min(s.latency().min()));
        // Work conservation: total busy time equals total work / bandwidth.
        let total_work: u64 = subs.iter().map(|(_, b)| *b).sum();
        let expect = total_work as f64 / bps;
        prop_assert!((end.as_secs_f64() - expect).abs() < 1e-3 + expect * 1e-6,
            "busy {} vs work {}", end.as_secs_f64(), expect);
    }

    /// Peak concurrency equals the max number of overlapping requests, and
    /// stall is zero when requests never overlap.
    #[test]
    fn serial_submissions_never_stall(bytes in prop::collection::vec(1u64..50_000, 1..16)) {
        let bps = 1_000_000.0;
        let mut s = StorageServer::new(cfg(bps));
        let mut t = SimTime::ZERO;
        for (i, b) in bytes.iter().enumerate() {
            s.submit(t, ProcessId(0), StorageReqId(i as u64), *b);
            // Wait for it to finish before the next arrives.
            let done_at = s.next_completion().unwrap();
            s.advance(done_at + SimDuration::from_nanos(1));
            s.take_completed();
            t = done_at + SimDuration::from_micros(1);
        }
        prop_assert_eq!(s.peak_writers(), 1);
        prop_assert!(s.total_stall().as_secs_f64() < 1e-6 * bytes.len() as f64);
    }
}

/// Shorter jobs always finish no later than longer jobs submitted at the
/// same instant (PS fairness).
#[test]
fn processor_sharing_orders_by_size() {
    let mut s = StorageServer::new(cfg(1000.0));
    s.submit(SimTime::ZERO, ProcessId(0), StorageReqId(1), 900);
    s.submit(SimTime::ZERO, ProcessId(1), StorageReqId(2), 100);
    s.submit(SimTime::ZERO, ProcessId(2), StorageReqId(3), 500);
    while let Some(at) = s.next_completion() {
        s.advance(at + SimDuration::from_nanos(1));
    }
    let order: Vec<u64> = s.take_completed().iter().map(|c| c.req.0).collect();
    assert_eq!(order, vec![2, 3, 1]);
}
