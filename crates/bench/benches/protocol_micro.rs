//! Microbenchmarks of the protocol hot paths: per-message piggyback
//! handling, the receive case analysis, wire codec, and the tentSet
//! operations that run on every message.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocpt_core::{
    decode_envelope, encode_envelope, AppPayload, Envelope, MessageLog, OcptConfig, OcptProcess,
    Piggyback, Status, TentSet,
};
use ocpt_core::{Direction, LogEntry};
use ocpt_sim::{MsgId, ProcessId};

fn bench_tentset(c: &mut Criterion) {
    let mut g = c.benchmark_group("tentset");
    for n in [8usize, 64, 256, 1024] {
        g.bench_with_input(BenchmarkId::new("merge", n), &n, |b, &n| {
            let mut a = TentSet::singleton(n, ProcessId(0));
            let mut s = TentSet::empty(n);
            for i in (0..n).step_by(3) {
                s.insert(ProcessId(i as u32));
            }
            b.iter(|| {
                a.merge(std::hint::black_box(&s));
                std::hint::black_box(a.is_full())
            });
        });
        g.bench_with_input(BenchmarkId::new("first_absent_above", n), &n, |b, &n| {
            let mut s = TentSet::empty(n);
            for i in 0..n - 1 {
                s.insert(ProcessId(i as u32));
            }
            b.iter(|| std::hint::black_box(s.first_absent_above(ProcessId(0))));
        });
    }
    g.finish();
}

/// Piggyback construction on the send path. The tentSet ships inside the
/// piggyback of **every** application message, so this must be a refcount
/// bump, never a bitset copy — asserted here with the copy-on-write fault
/// counter, at a universe size (1024 → 128-byte bitset) where an
/// accidental deep clone would also be clearly visible in the timing.
fn bench_piggyback_sharing(c: &mut Criterion) {
    let mut g = c.benchmark_group("piggyback_send");
    for n in [64usize, 1024] {
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("construct", n), &n, |b, &n| {
            let mut p = OcptProcess::new(ProcessId(0), n, OcptConfig::basic_only());
            let mut out = Vec::new();
            p.initiate_checkpoint(&mut out);
            let before = TentSet::deep_copies();
            let mut id = 0u64;
            b.iter(|| {
                id += 1;
                std::hint::black_box(p.on_app_send(
                    ProcessId(1),
                    MsgId(id),
                    AppPayload { id, len: 256 },
                ))
            });
            let pb = p.on_app_send(ProcessId(1), MsgId(id + 1), AppPayload { id, len: 256 });
            assert_eq!(TentSet::deep_copies(), before, "n={n}: send path deep-cloned the tentSet");
            assert!(
                TentSet::shares_storage(&pb.tent_set, p.tent_set()),
                "n={n}: piggyback does not share tentSet storage"
            );
        });
    }
    g.finish();
}

fn bench_send_receive_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_path");
    for n in [8usize, 64, 256] {
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("on_app_send", n), &n, |b, &n| {
            let mut p = OcptProcess::new(ProcessId(0), n, OcptConfig::basic_only());
            let mut out = Vec::new();
            p.initiate_checkpoint(&mut out);
            let mut id = 0u64;
            b.iter(|| {
                id += 1;
                std::hint::black_box(p.on_app_send(
                    ProcessId(1),
                    MsgId(id),
                    AppPayload { id, len: 256 },
                ))
            });
        });
        g.bench_with_input(BenchmarkId::new("on_app_receive_case2b", n), &n, |b, &n| {
            // Steady-state 2b receive: both tentative, knowledge merging,
            // never completing (worst recurring case).
            let mut p = OcptProcess::new(ProcessId(0), n, OcptConfig::basic_only());
            let mut out = Vec::new();
            p.initiate_checkpoint(&mut out);
            let pb = Piggyback::new(1, Status::Tentative, TentSet::singleton(n, ProcessId(1)));
            let mut id = 0u64;
            b.iter(|| {
                id += 1;
                out.clear();
                p.on_app_receive(
                    ProcessId(1),
                    MsgId(id),
                    AppPayload { id, len: 256 },
                    std::hint::black_box(&pb),
                    &mut out,
                )
                .unwrap();
            });
        });
    }
    g.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    for n in [8usize, 256] {
        let env = Envelope::App {
            pb: Piggyback::new(42, Status::Tentative, TentSet::singleton(n, ProcessId(3))),
            payload: AppPayload { id: 7, len: 1024 },
        };
        let bytes = env.wire_bytes(n);
        g.throughput(Throughput::Bytes(bytes));
        g.bench_with_input(BenchmarkId::new("encode_app", n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(encode_envelope(&env, n)));
        });
        let enc = encode_envelope(&env, n);
        g.bench_with_input(BenchmarkId::new("decode_app", n), &enc, |b, enc| {
            b.iter(|| std::hint::black_box(decode_envelope(enc.clone()).unwrap()));
        });
    }
    g.finish();
}

/// The adaptive tentSet wire encodings at scale-sweep universe sizes.
/// Three set shapes per size pick three different winning representations:
/// a young round's handful of members (sparse), a half-converged wave of
/// contiguous groups (runs), and a nearly full set (dense bitmap).
fn bench_tentset_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("tentset_wire");
    for n in [100usize, 10_000, 100_000] {
        let sparse = {
            let mut s = TentSet::empty(n);
            for i in 0..8.min(n) {
                s.insert(ProcessId((i * n / 8) as u32));
            }
            s
        };
        let runs = {
            let mut s = TentSet::empty(n);
            for start in (0..n).step_by(n.div_ceil(16).max(2)) {
                for i in start..(start + n / 32).min(n) {
                    s.insert(ProcessId(i as u32));
                }
            }
            s
        };
        let dense = {
            let mut s = TentSet::empty(n);
            for i in 0..n {
                if i % 7 != 0 {
                    s.insert(ProcessId(i as u32));
                }
            }
            s
        };
        for (shape, set) in [("sparse", &sparse), ("runs", &runs), ("dense", &dense)] {
            let enc = set.to_bytes();
            g.throughput(Throughput::Bytes(enc.len() as u64));
            g.bench_with_input(BenchmarkId::new(format!("encode_{shape}"), n), set, |b, set| {
                b.iter(|| std::hint::black_box(set.to_bytes()))
            });
            g.bench_with_input(BenchmarkId::new(format!("decode_{shape}"), n), &enc, |b, enc| {
                b.iter(|| {
                    std::hint::black_box(TentSet::from_bytes(n, enc).expect("bench input decodes"))
                });
            });
        }
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("merge_sparse_into_runs", n), &n, |b, _| {
            let mut acc = runs.clone();
            b.iter(|| {
                acc.merge(std::hint::black_box(&sparse));
                std::hint::black_box(acc.len())
            });
        });
    }
    g.finish();
}

fn bench_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("message_log");
    for entries in [16usize, 256] {
        g.bench_with_input(BenchmarkId::new("encode", entries), &entries, |b, &entries| {
            let mut log = MessageLog::new();
            for i in 0..entries as u64 {
                log.push(LogEntry::payload(
                    if i % 2 == 0 { Direction::Sent } else { Direction::Received },
                    ProcessId((i % 7) as u32),
                    MsgId(i),
                    AppPayload { id: i, len: 128 },
                ));
            }
            b.iter(|| std::hint::black_box(log.encode()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tentset,
    bench_piggyback_sharing,
    bench_send_receive_path,
    bench_wire_codec,
    bench_tentset_wire,
    bench_log
);
criterion_main!(benches);
