//! E1 as a Criterion bench: full simulated runs per algorithm, measuring
//! wall time of the simulation itself and reporting the contention
//! metrics as auxiliary output. The real table comes from
//! `cargo run -p ocpt-bench --release --bin exp_contention`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocpt_harness::{run, Algo, RunConfig, WorkloadSpec};
use ocpt_sim::SimDuration;

fn contention_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_contention_run");
    g.sample_size(10);
    for algo in Algo::comparison_set() {
        g.bench_with_input(BenchmarkId::new("n8", algo.name()), &algo, |b, algo| {
            b.iter(|| {
                let mut cfg = RunConfig::new(8, 42);
                cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(5));
                cfg.checkpoint_interval = SimDuration::from_millis(500);
                cfg.workload_duration = SimDuration::from_secs(2);
                cfg.observe = false; // measure the simulation, not the oracle
                std::hint::black_box(run(algo, cfg).storage.peak_writers)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, contention_runs);
criterion_main!(benches);
