//! Scheduler microbenches: the timing wheel against the reference
//! `BinaryHeap`, one Criterion benchmark per (workload, kind) pair over
//! identical deterministic op sequences. The committed head-to-head
//! numbers come from `exp_all --sched-json BENCH_sched.json`; this group
//! gives per-workload timing distributions (and a CI smoke path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocpt_bench::sched_bench;
use ocpt_sim::{Event, MsgId, ProcessId, Scheduler, SchedulerKind, SimDuration, SimRng};

const KINDS: [SchedulerKind; 2] = [SchedulerKind::Wheel, SchedulerKind::ReferenceHeap];

fn scheduler_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_micro");
    g.sample_size(10);
    for kind in KINDS {
        g.bench_with_input(BenchmarkId::new("churn", kind.name()), &kind, |b, &k| {
            b.iter(|| std::hint::black_box(sched_bench::churn(k, 4_096, 100_000)));
        });
        g.bench_with_input(BenchmarkId::new("cancel_heavy", kind.name()), &kind, |b, &k| {
            b.iter(|| std::hint::black_box(sched_bench::cancel_heavy(k, 32_768, 50_000)));
        });
        g.bench_with_input(BenchmarkId::new("crash_purge", kind.name()), &kind, |b, &k| {
            b.iter(|| std::hint::black_box(sched_bench::crash_purge(k, 8_192, 20)));
        });
        g.bench_with_input(BenchmarkId::new("far_future", kind.name()), &kind, |b, &k| {
            b.iter(|| std::hint::black_box(sched_bench::far_future(k, 100_000)));
        });
        g.bench_with_input(BenchmarkId::new("burst_window", kind.name()), &kind, |b, &k| {
            b.iter(|| std::hint::black_box(sched_bench::burst_window(k, 5_000, 16)));
        });
    }
    g.finish();
}

/// Steady-state schedule/pop on one long-lived wheel, with the slab
/// arena's own counters proving the hot loop allocates nothing: every
/// insert after warm-up must be a free-list reuse, so `allocs` is frozen
/// for the entire measured region (the event-storage analogue of
/// `protocol_micro`'s `TentSet::deep_copies` zero-copy assert).
fn arena_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("arena_churn");
    g.throughput(Throughput::Elements(1));
    for depth in [1_024u64, 16_384] {
        g.bench_with_input(BenchmarkId::new("schedule_pop", depth), &depth, |b, &depth| {
            let mut s: Scheduler<u64> = Scheduler::with_kind(SchedulerKind::Wheel);
            let mut rng = SimRng::derive(0xA4E4, depth);
            let mut id = 0u64;
            let mut step = |s: &mut Scheduler<u64>, refill: bool| {
                if !refill {
                    s.pop().expect("queue stays primed");
                }
                let src = ProcessId((id % 8) as u32);
                let dst = ProcessId(((id + 1) % 8) as u32);
                s.schedule_after(
                    SimDuration::from_micros(rng.next_u64_below(5_000)),
                    Event::Deliver { src, dst, msg_id: MsgId(id), msg: id },
                );
                id += 1;
            };
            for _ in 0..depth {
                step(&mut s, true);
            }
            // Warm-up: cycle the whole queue once so the free list is
            // primed and the high-water mark is reached.
            for _ in 0..depth {
                step(&mut s, false);
            }
            let before = s.arena_stats();
            b.iter(|| {
                step(&mut s, false);
                std::hint::black_box(s.pending())
            });
            let after = s.arena_stats();
            assert_eq!(
                after.allocs, before.allocs,
                "depth={depth}: steady-state schedule/pop allocated new arena slots"
            );
            assert!(after.reuses > before.reuses, "depth={depth}: free list never used");
            assert_eq!(after.hwm, before.hwm, "depth={depth}: high-water mark moved");
        });
    }
    g.finish();
}

/// Batched delivery windows against the per-event baseline: the same
/// clustered `(instant, target)` population drained via `pop_matching`
/// windows vs one general pop per event.
fn batched_delivery(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_delivery");
    for (name, f) in [
        ("windowed", sched_bench::burst_window as fn(SchedulerKind, u64, u64) -> u64),
        ("per_event", sched_bench::burst_per_event as fn(SchedulerKind, u64, u64) -> u64),
    ] {
        g.bench_with_input(BenchmarkId::new(name, "wheel"), &name, |b, _| {
            b.iter(|| std::hint::black_box(f(SchedulerKind::Wheel, 5_000, 16)));
        });
    }
    g.finish();
}

criterion_group!(benches, scheduler_micro, arena_churn, batched_delivery);
criterion_main!(benches);
