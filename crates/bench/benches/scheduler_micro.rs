//! Scheduler microbenches: the timing wheel against the reference
//! `BinaryHeap`, one Criterion benchmark per (workload, kind) pair over
//! identical deterministic op sequences. The committed head-to-head
//! numbers come from `exp_all --sched-json BENCH_sched.json`; this group
//! gives per-workload timing distributions (and a CI smoke path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocpt_bench::sched_bench;
use ocpt_sim::SchedulerKind;

const KINDS: [SchedulerKind; 2] = [SchedulerKind::Wheel, SchedulerKind::ReferenceHeap];

fn scheduler_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_micro");
    g.sample_size(10);
    for kind in KINDS {
        g.bench_with_input(BenchmarkId::new("churn", kind.name()), &kind, |b, &k| {
            b.iter(|| std::hint::black_box(sched_bench::churn(k, 4_096, 100_000)));
        });
        g.bench_with_input(BenchmarkId::new("cancel_heavy", kind.name()), &kind, |b, &k| {
            b.iter(|| std::hint::black_box(sched_bench::cancel_heavy(k, 32_768, 50_000)));
        });
        g.bench_with_input(BenchmarkId::new("crash_purge", kind.name()), &kind, |b, &k| {
            b.iter(|| std::hint::black_box(sched_bench::crash_purge(k, 8_192, 20)));
        });
        g.bench_with_input(BenchmarkId::new("far_future", kind.name()), &kind, |b, &k| {
            b.iter(|| std::hint::black_box(sched_bench::far_future(k, 100_000)));
        });
    }
    g.finish();
}

criterion_group!(benches, scheduler_micro);
criterion_main!(benches);
