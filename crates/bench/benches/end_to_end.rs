//! End-to-end simulation throughput: events per second of the DES kernel
//! with the full OCPT stack, across system sizes — the scalability check
//! (E6 companion) that the reproduction itself is usable at N = 64+.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocpt_harness::{run, Algo, RunConfig, WorkloadSpec};
use ocpt_sim::SimDuration;

fn end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for n in [8usize, 32, 64] {
        // Roughly constant total message count across sizes.
        let gap = SimDuration::from_micros(2_000 * n as u64 / 8);
        let mut probe_cfg = RunConfig::new(n, 1);
        probe_cfg.workload = WorkloadSpec::uniform_mesh(gap);
        probe_cfg.checkpoint_interval = SimDuration::from_millis(500);
        probe_cfg.workload_duration = SimDuration::from_secs(1);
        probe_cfg.observe = false;
        let msgs = run(&Algo::ocpt(), probe_cfg.clone()).app_messages;
        g.throughput(Throughput::Elements(msgs));
        g.bench_with_input(BenchmarkId::new("ocpt", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(run(&Algo::ocpt(), probe_cfg.clone()).app_messages));
        });
    }
    g.finish();
}

criterion_group!(benches, end_to_end);
criterion_main!(benches);
