//! Run the complete reconstructed evaluation (E1–E8, A1–A3) in one go.
use ocpt_bench::ExpArgs;
use ocpt_harness::experiments as exp;
use ocpt_sim::SimDuration;

fn main() {
    let args = ExpArgs::parse();
    let p = args.params();
    let ns: &[usize] = if args.quick { &[4, 8] } else { &[4, 8, 16, 32] };
    let gaps = [
        SimDuration::from_millis(2),
        SimDuration::from_millis(20),
        SimDuration::from_millis(200),
    ];
    let timeouts = [SimDuration::from_millis(125), SimDuration::from_millis(500)];
    let intervals = [SimDuration::from_millis(250), SimDuration::from_millis(1000)];
    args.emit(&exp::e1_contention(ns, p));
    args.emit(&exp::e2_overhead(&intervals, p));
    args.emit(&exp::e3_control_messages(&gaps, p));
    args.emit(&exp::e4_convergence(&gaps[..2], &timeouts, p));
    args.emit(&exp::e5_logging(&gaps[..2], p));
    args.emit(&exp::e6_piggyback(ns, p));
    args.emit(&exp::e7_recovery(p, (p.workload_ms * 3) / 4));
    args.emit(&exp::e8_response_time(&gaps[..2], p));
    args.emit(&exp::a2_flush_policy(p));
}
