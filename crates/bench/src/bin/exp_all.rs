//! Run the complete reconstructed evaluation (E1–E8, E10, A1–A3) in one
//! go (E9 has its own binary, `exp_scale`).
//!
//! With `--bench-json <path>`, every experiment grid is executed twice —
//! `--jobs 1` and then the requested worker count — and the wall-clock
//! self-measurement (per-experiment and total speedup, events/sec) is
//! written to the path as JSON. The printed tables come from the parallel
//! pass; they are byte-identical to the serial pass by construction.
//!
//! With `--sched-json <path>`, the scheduler microbench suite (timing
//! wheel vs reference `BinaryHeap`, identical op sequences) runs first
//! and its head-to-head report is written to the path.
//!
//! With `--par-json <path>`, the multi-core gate runs: one grid of
//! uniform heavy cells at `--jobs` 1, 2 and 4, output byte-identity
//! asserted across the three, wall-clock scaling written to the path
//! (the committed `BENCH_par.json` — interpret `speedup` against
//! `host.cores`; a single-core host honestly reports ~1.0).
//!
//! With `--health-json <path>`, the per-strategy health matrix runs last
//! (every logging strategy under the fault-free baseline and the three
//! E10 fault shapes) and its report — round-latency percentiles, log
//! growth, gap counters — is written to the path (the committed
//! `BENCH_health.json`).

use ocpt_bench::{
    bench_report_json, par_gate_grid, par_report_json, sched_bench, sched_report_json, BenchEntry,
    ExpArgs, ParRow,
};
use ocpt_harness::experiments as exp;
use ocpt_harness::{GridOptions, RunGrid};
use ocpt_sim::SimDuration;

fn main() {
    let args = ExpArgs::parse();
    if let Some(path) = &args.sched_json {
        let scale = if args.quick { 20 } else { 1 };
        let rows = sched_bench::run_suite(scale);
        let report = sched_report_json(&rows);
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote scheduler microbench to {path}");
        eprint!("{report}");
    }
    if let Some(path) = &args.par_json {
        let g = par_gate_grid(args.quick, args.seed);
        let mut rows = Vec::new();
        let mut baseline: Option<String> = None;
        for jobs in [1usize, 2, 4] {
            let out = g.run(&GridOptions { jobs, replicates: 1 });
            let rendered = out.table.render();
            match &baseline {
                None => baseline = Some(rendered),
                Some(b) => {
                    assert_eq!(b, &rendered, "jobs={jobs}: gate output diverged from serial")
                }
            }
            rows.push(ParRow { jobs, wall_secs: out.wall_secs, sim_events: out.sim_events });
        }
        let report = par_report_json(&rows, g.cell_count());
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote multi-core gate to {path}");
        eprint!("{report}");
    }
    let p = args.params();
    let ns: &[usize] = if args.quick { &[4, 8] } else { &[4, 8, 16, 32] };
    let gaps =
        [SimDuration::from_millis(2), SimDuration::from_millis(20), SimDuration::from_millis(200)];
    let timeouts = [SimDuration::from_millis(125), SimDuration::from_millis(500)];
    let intervals = [SimDuration::from_millis(250), SimDuration::from_millis(1000)];
    let grids: Vec<(&str, RunGrid)> = vec![
        ("e1", exp::e1_contention(ns, p)),
        ("e2", exp::e2_overhead(&intervals, p)),
        ("e3", exp::e3_control_messages(&gaps, p)),
        ("e4", exp::e4_convergence(&gaps[..2], &timeouts, p)),
        ("e5", exp::e5_logging(&gaps[..2], p)),
        ("e6", exp::e6_piggyback(ns, p)),
        ("e7", exp::e7_recovery(p, (p.workload_ms * 3) / 4)),
        ("e8", exp::e8_response_time(&gaps[..2], p)),
        ("e10", exp::e10_log_matrix(p, (p.workload_ms * 3) / 4, args.strategy)),
        ("a2", exp::a2_flush_policy(p)),
    ];

    match &args.bench_json {
        None => {
            for (name, g) in &grids {
                args.emit(name, g);
            }
        }
        Some(path) => {
            let serial = GridOptions { jobs: 1, replicates: args.replicates };
            let jobs = args.effective_jobs();
            let mut entries = Vec::with_capacity(grids.len());
            for (name, g) in &grids {
                let s = g.run(&serial);
                let out = args.emit(name, g);
                assert_eq!(
                    s.table.render(),
                    out.table.render(),
                    "{name}: parallel output diverged from serial"
                );
                entries.push(BenchEntry {
                    name: (*name).into(),
                    serial_secs: s.wall_secs,
                    parallel_secs: out.wall_secs,
                    runs: out.runs,
                    sim_events: out.sim_events,
                });
            }
            let report = bench_report_json(jobs, &entries);
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote self-benchmark to {path}");
            eprint!("{report}");
        }
    }
    args.maybe_emit_health();
}
