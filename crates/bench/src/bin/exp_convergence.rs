//! E4/A3: convergence latency vs message rate and convergence timer.
use ocpt_bench::ExpArgs;
use ocpt_harness::experiments::e4_convergence;
use ocpt_sim::SimDuration;

fn main() {
    let args = ExpArgs::parse();
    let (gaps, timeouts): (Vec<SimDuration>, Vec<SimDuration>) = if args.quick {
        (
            vec![SimDuration::from_millis(5)],
            vec![SimDuration::from_millis(100), SimDuration::from_millis(400)],
        )
    } else {
        (
            vec![
                SimDuration::from_millis(2),
                SimDuration::from_millis(20),
                SimDuration::from_millis(200),
            ],
            vec![
                SimDuration::from_millis(50),
                SimDuration::from_millis(125),
                SimDuration::from_millis(250),
                SimDuration::from_millis(500),
                SimDuration::from_millis(1000),
            ],
        )
    };
    args.emit("e4", &e4_convergence(&gaps, &timeouts, args.params()));
    args.maybe_emit_health();
}
