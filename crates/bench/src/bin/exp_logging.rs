//! E5: selective message logging vs full logging.
use ocpt_bench::ExpArgs;
use ocpt_harness::experiments::e5_logging;
use ocpt_sim::SimDuration;

fn main() {
    let args = ExpArgs::parse();
    let gaps: Vec<SimDuration> = if args.quick {
        vec![SimDuration::from_millis(5)]
    } else {
        vec![
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
            SimDuration::from_millis(5),
            SimDuration::from_millis(20),
        ]
    };
    args.emit("e5", &e5_logging(&gaps, args.params()));
    args.maybe_emit_health();
}
