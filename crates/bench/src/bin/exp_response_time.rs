//! E8: forced checkpoints before message processing (response-time penalty),
//! OCPT vs communication-induced checkpointing.
use ocpt_bench::ExpArgs;
use ocpt_harness::experiments::e8_response_time;
use ocpt_sim::SimDuration;

fn main() {
    let args = ExpArgs::parse();
    let gaps: Vec<SimDuration> = if args.quick {
        vec![SimDuration::from_millis(5)]
    } else {
        vec![SimDuration::from_millis(1), SimDuration::from_millis(5), SimDuration::from_millis(20)]
    };
    args.emit("e8", &e8_response_time(&gaps, args.params()));
    args.maybe_emit_health();
}
