//! E7: rollback after a crash — coordinated (OCPT) vs domino (uncoordinated).
use ocpt_bench::ExpArgs;
use ocpt_harness::experiments::e7_recovery;

fn main() {
    let args = ExpArgs::parse();
    let p = args.params();
    let crash_ms = (p.workload_ms * 3) / 4;
    args.emit("e7", &e7_recovery(p, crash_ms));
    args.maybe_emit_health();
}
