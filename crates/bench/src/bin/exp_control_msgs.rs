//! E3/A1: OCPT control messages per round vs application message rate,
//! optimized vs naive control layer.
use ocpt_bench::ExpArgs;
use ocpt_harness::experiments::e3_control_messages;
use ocpt_sim::SimDuration;

fn main() {
    let args = ExpArgs::parse();
    let gaps: Vec<SimDuration> = if args.quick {
        vec![SimDuration::from_millis(2), SimDuration::from_millis(50)]
    } else {
        vec![
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
            SimDuration::from_millis(5),
            SimDuration::from_millis(20),
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        ]
    };
    args.emit("e3", &e3_control_messages(&gaps, args.params()));
    args.maybe_emit_health();
}
