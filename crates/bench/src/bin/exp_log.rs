//! E10: message-logging strategy × fault-pattern matrix.
//!
//! Prints the E10 grid table (optionally restricted to one strategy via
//! `--strategy`), then re-runs each cell directly and writes the committed
//! `BENCH_log.json` report under `--bench-json`: durable log bytes at the
//! recovery line, the modeled replay cost (local replays, peer fetches),
//! and the correctness gaps (orphaned determinants, lost in-transit
//! messages) per strategy and fault shape.

use ocpt_bench::{log_report_json, ExpArgs, LogRow};
use ocpt_core::LoggingKind;
use ocpt_harness::experiments::{e10_fault_patterns, e10_log_matrix};
use ocpt_harness::{log_recovery_report, run, Algo};

fn main() {
    let args = ExpArgs::parse();
    let crash_ms = if args.quick { 600 } else { 4_000 };
    let base = args.params();
    args.emit("e10", &e10_log_matrix(base, crash_ms, args.strategy));
    args.maybe_emit_health();

    let Some(path) = &args.bench_json else { return };
    let patterns = e10_fault_patterns(&base, crash_ms);
    let mut rows = Vec::new();
    for kind in LoggingKind::ALL {
        if args.strategy.is_some_and(|o| o != kind) {
            continue;
        }
        for (fault, faults) in &patterns {
            let mut cfg = base.config();
            cfg.faults = faults.clone();
            cfg.stop_on_crash = true;
            let r = run(&Algo::ocpt_logging(kind), cfg);
            assert!(
                r.protocol_error.is_none(),
                "{} × {fault}: {:?}",
                kind.name(),
                r.protocol_error
            );
            let rep = log_recovery_report(&r).unwrap_or_else(|e| {
                eprintln!("error: {} × {fault}: {e}", kind.name());
                std::process::exit(2);
            });
            rows.push(LogRow {
                strategy: kind.name(),
                fault: (*fault).to_string(),
                line: rep.line,
                log_bytes: rep.log_bytes,
                replay_ms: rep.replay_time.as_secs_f64() * 1e3,
                replayed_local: rep.replayed_local,
                fetched: rep.fetched,
                orphans: rep.orphans,
                lost_in_transit: rep.lost_in_transit,
                app_messages: r.app_messages,
                sim_events: r.sim_events,
            });
        }
    }
    let report = log_report_json(&rows);
    if let Err(e) = std::fs::write(path, &report) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote logging report to {path}");
    eprint!("{report}");
}
