//! E9: protocol scaling — adaptive piggyback encoding + hierarchical
//! control waves, swept to N = 100 000 processes.
//!
//! Prints the E9 grid table, then (unless `--quick`) re-runs each size
//! directly with wall-clock self-measurement and writes the committed
//! `BENCH_scale.json` report: piggyback bytes per message (measured vs
//! the dense `⌈N/8⌉` formula), control messages per round, the resolved
//! control topology, and simulator throughput per cell.

use ocpt_bench::{scale_report_json, ExpArgs, ScaleRow};
use ocpt_core::{ControlTopology, OcptConfig, Piggyback};
use ocpt_harness::experiments::{exp_scale, scale_config};
use ocpt_harness::{run, Algo};

fn main() {
    let args = ExpArgs::parse();
    let ns: &[usize] = if args.quick { &[64, 600] } else { &[100, 1_000, 10_000, 100_000] };
    args.emit("e9", &exp_scale(ns, args.seed));
    args.maybe_emit_health();

    let Some(path) = &args.bench_json else { return };
    let topo = OcptConfig::default().control_topology;
    let mut rows = Vec::with_capacity(ns.len());
    for &n in ns {
        let r = run(&Algo::ocpt(), scale_config(n, args.seed));
        assert!(r.protocol_error.is_none(), "n={n}: {:?}", r.protocol_error);
        assert!(r.complete_rounds >= 1, "n={n}: no round completed");
        let group_size = topo.group_size(n);
        rows.push(ScaleRow {
            n,
            piggy_bytes_per_msg: r.piggyback_bytes as f64 / r.app_messages.max(1) as f64,
            dense_bytes_per_msg: Piggyback::dense_wire_bytes_for(n) as f64,
            app_messages: r.app_messages,
            ctrl_messages: r.ctrl_messages,
            rounds: r.complete_rounds,
            group_size,
            num_groups: group_size.map(|s| (n as u64).div_ceil(s as u64)),
            sim_events: r.sim_events,
            wall_secs: r.wall_secs,
        });
    }
    let report = scale_report_json(&rows, matches!(topo, ControlTopology::Auto { .. }));
    if let Err(e) = std::fs::write(path, &report) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote scale report to {path}");
    eprint!("{report}");
}
