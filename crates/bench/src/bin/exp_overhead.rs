//! E2: checkpointing overhead components per algorithm.
use ocpt_bench::ExpArgs;
use ocpt_harness::experiments::e2_overhead;
use ocpt_sim::SimDuration;

fn main() {
    let args = ExpArgs::parse();
    let ivs: Vec<SimDuration> = if args.quick {
        vec![SimDuration::from_millis(250)]
    } else {
        vec![
            SimDuration::from_millis(250),
            SimDuration::from_millis(500),
            SimDuration::from_millis(1000),
            SimDuration::from_millis(2000),
        ]
    };
    args.emit("e2", &e2_overhead(&ivs, args.params()));
    args.maybe_emit_health();
}
