//! E1: stable-storage contention vs N, all algorithms.
use ocpt_bench::ExpArgs;
use ocpt_harness::experiments::e1_contention;

fn main() {
    let args = ExpArgs::parse();
    let ns: &[usize] = if args.quick { &[4, 8] } else { &[4, 8, 16, 32, 64] };
    args.emit("e1", &e1_contention(ns, args.params()));
    args.maybe_emit_health();
}
