//! A2: tentative-checkpoint flush policy ablation (eager/lazy/jittered).
use ocpt_bench::ExpArgs;
use ocpt_harness::experiments::a2_flush_policy;

fn main() {
    let args = ExpArgs::parse();
    args.emit("a2", &a2_flush_policy(args.params()));
    args.maybe_emit_health();
}
