//! E6: piggyback overhead vs system size.
use ocpt_bench::ExpArgs;
use ocpt_harness::experiments::e6_piggyback;

fn main() {
    let args = ExpArgs::parse();
    let ns: &[usize] = if args.quick { &[4, 16] } else { &[4, 8, 16, 32, 64, 128, 256] };
    args.emit("e6", &e6_piggyback(ns, args.params()));
    args.maybe_emit_health();
}
