//! # ocpt-bench — experiment binaries and Criterion benches
//!
//! One `exp_*` binary per experiment in `DESIGN.md` §4 (run with
//! `cargo run -p ocpt-bench --release --bin exp_contention`), plus
//! Criterion microbenches (`cargo bench`). This library holds the tiny
//! shared argument parser the binaries use.
//!
//! Every binary executes its experiment through the grid engine
//! (`ocpt_harness::grid`): `--jobs N` runs cells on N worker threads and
//! `--replicates R` repeats every cell under R derived seeds. The table
//! is byte-identical for any `--jobs` value — parallelism changes wall
//! time only, which `exp_all --bench-json` measures and reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod sched_bench;

use ocpt_core::LoggingKind;
use ocpt_harness::experiments::{e10_fault_patterns, ExpParams};
use ocpt_harness::{log_recovery_report, run, Algo, GridOptions, GridOutcome, RunGrid, TraceSink};
use ocpt_metrics::Quantiles;
use ocpt_sim::SimDuration;

/// Host metadata stamped into every committed bench report, so claims
/// like "speedup ≈ 1.0 on a single-core container" are machine-readable
/// instead of prose footnotes.
#[derive(Clone, Debug)]
pub struct HostMeta {
    /// Available parallelism (cores visible to this process).
    pub cores: usize,
    /// `rustc --version` of the toolchain that built the binary.
    pub rustc: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
}

impl HostMeta {
    /// Detect the current host.
    pub fn detect() -> Self {
        HostMeta {
            cores: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            rustc: env!("OCPT_RUSTC_VERSION").to_string(),
            os: std::env::consts::OS.to_string(),
        }
    }

    /// The `"host": {...}` JSON fragment (no trailing comma/newline).
    fn json_fragment(&self) -> String {
        format!(
            "\"host\": {{\"cores\": {}, \"rustc\": \"{}\", \"os\": \"{}\"}}",
            self.cores,
            self.rustc.replace('"', "'"),
            self.os
        )
    }
}

/// Command-line options shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Reduced problem sizes for smoke runs.
    pub quick: bool,
    /// Also print the table as CSV.
    pub csv: bool,
    /// Master seed.
    pub seed: u64,
    /// Grid worker threads (0 = one per available core).
    pub jobs: usize,
    /// Seed-replicates per grid cell.
    pub replicates: usize,
    /// `exp_all`: write the serial-vs-parallel self-benchmark here.
    /// `exp_scale`: write the E9 scale report (`BENCH_scale.json`) here.
    /// Other binaries parse and ignore it.
    pub bench_json: Option<String>,
    /// `exp_all` only: run the scheduler microbench suite (timing wheel
    /// vs reference heap) and write its report here.
    pub sched_json: Option<String>,
    /// `exp_all` only: run the multi-core grid gate (one heavy uniform
    /// grid at `--jobs` 1/2/4, byte-identity asserted) and write its
    /// scaling report here (the committed `BENCH_par.json`).
    pub par_json: Option<String>,
    /// Record every run's flight data (trace JSONL + metrics snapshot)
    /// into this directory.
    pub trace_out: Option<String>,
    /// `exp_log`: restrict the E10 matrix to one logging strategy
    /// (`selective` / `sender` / `receiver` / `causal`; long aliases like
    /// `sender-based` also parse). Other binaries parse and ignore it.
    pub strategy: Option<LoggingKind>,
    /// Write the per-strategy health report (`BENCH_health.json`) here:
    /// round-latency percentiles, durable-log growth and gap counters for
    /// every logging strategy under the fault-free baseline and the three
    /// E10 fault shapes. Every `exp_*` binary honors it (via
    /// [`ExpArgs::maybe_emit_health`]), so any experiment invocation can stamp the
    /// protocol's health alongside its own table.
    pub health_json: Option<String>,
}

impl ExpArgs {
    /// Parse from `std::env::args`; exits with usage on error.
    pub fn parse() -> ExpArgs {
        let mut args = ExpArgs {
            quick: false,
            csv: false,
            seed: 42,
            jobs: 1,
            replicates: 1,
            bench_json: None,
            sched_json: None,
            par_json: None,
            trace_out: None,
            strategy: None,
            health_json: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.quick = true,
                "--csv" => args.csv = true,
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--jobs" => {
                    args.jobs = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--jobs needs an integer (0 = auto)"));
                }
                "--replicates" => {
                    let r: usize = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--replicates needs an integer >= 1"));
                    if r == 0 {
                        usage("--replicates needs an integer >= 1");
                    }
                    args.replicates = r;
                }
                "--bench-json" => {
                    args.bench_json =
                        Some(it.next().unwrap_or_else(|| usage("--bench-json needs a path")));
                }
                "--sched-json" => {
                    args.sched_json =
                        Some(it.next().unwrap_or_else(|| usage("--sched-json needs a path")));
                }
                "--par-json" => {
                    args.par_json =
                        Some(it.next().unwrap_or_else(|| usage("--par-json needs a path")));
                }
                "--trace-out" => {
                    args.trace_out =
                        Some(it.next().unwrap_or_else(|| usage("--trace-out needs a directory")));
                }
                "--strategy" => {
                    let s = it.next().unwrap_or_else(|| {
                        usage("--strategy needs selective|sender|receiver|causal")
                    });
                    args.strategy = Some(LoggingKind::parse(&s).unwrap_or_else(|| {
                        usage(&format!(
                            "unknown strategy {s} (want selective|sender|receiver|causal)"
                        ))
                    }));
                }
                "--health-json" => {
                    args.health_json =
                        Some(it.next().unwrap_or_else(|| usage("--health-json needs a path")));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// Effective worker count (`--jobs 0` resolves to the core count).
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            self.jobs
        }
    }

    /// Grid execution options from the parsed flags.
    pub fn grid_options(&self) -> GridOptions {
        GridOptions { jobs: self.effective_jobs(), replicates: self.replicates }
    }

    /// Base experiment parameters at this scale.
    pub fn params(&self) -> ExpParams {
        if self.quick {
            ExpParams {
                n: 4,
                seed: self.seed,
                workload_ms: 1_000,
                msg_gap: SimDuration::from_millis(5),
                ckpt_interval: SimDuration::from_millis(250),
                state_bytes: 512 * 1024,
            }
        } else {
            // Storage utilisation n·state/(interval·bandwidth) ≈ 0.3: the
            // server is busy but not saturated, so contention measures
            // write *clustering*, not overload.
            ExpParams {
                n: 8,
                seed: self.seed,
                workload_ms: 10_000,
                msg_gap: SimDuration::from_millis(5),
                ckpt_interval: SimDuration::from_secs(1),
                state_bytes: 2 * 1024 * 1024,
            }
        }
    }

    /// The flight-recorder sink for the experiment called `name`, when
    /// `--trace-out <dir>` was given (artifact files are prefixed with
    /// the experiment name, so `exp_all`'s experiments don't collide).
    pub fn trace_sink(&self, name: &str) -> Option<TraceSink> {
        self.trace_out.as_ref().map(|dir| {
            TraceSink::new(dir, name).unwrap_or_else(|e| {
                eprintln!("error: creating trace directory {dir}: {e}");
                std::process::exit(2);
            })
        })
    }

    /// Execute the experiment called `name` (its grid `g`) with the
    /// parsed options and print its table (and CSV when requested);
    /// under `--trace-out`, also record every run's flight data.
    /// Returns the outcome for self-measurement.
    pub fn emit(&self, name: &str, g: &RunGrid) -> GridOutcome {
        let sink = self.trace_sink(name);
        let out = g.run_with_sink(&self.grid_options(), sink.as_ref());
        println!("{}", out.table.render());
        if self.csv {
            println!("{}", out.table.to_csv());
        }
        out
    }
}

/// One named measurement for the `--bench-json` report.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Experiment label (e.g. `"e1"`).
    pub name: String,
    /// Wall-clock seconds with `--jobs 1`.
    pub serial_secs: f64,
    /// Wall-clock seconds with the parallel worker count.
    pub parallel_secs: f64,
    /// Simulation runs in the grid (cells × replicates).
    pub runs: usize,
    /// Simulator events dispatched (identical across both passes).
    pub sim_events: u64,
}

/// Render the scheduler microbench suite (timing wheel vs reference heap)
/// as JSON — the committed `BENCH_sched.json`.
pub fn sched_report_json(rows: &[sched_bench::SchedBenchRow]) -> String {
    let host = HostMeta::detect();
    let mut out = String::from("{\n");
    out.push_str(&format!("  {},\n", host.json_fragment()));
    out.push_str("  \"baseline\": \"reference_heap (BinaryHeap, eager purges)\",\n");
    out.push_str("  \"candidate\": \"wheel (hierarchical timing wheel, lazy cancellation)\",\n");
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \
             \"heap_secs\": {:.6}, \"wheel_secs\": {:.6}, \
             \"heap_events_per_sec\": {:.1}, \"wheel_events_per_sec\": {:.1}, \
             \"speedup\": {:.3}}}{sep}\n",
            r.name,
            r.events,
            r.heap_secs,
            r.wheel_secs,
            r.heap_events_per_sec(),
            r.wheel_events_per_sec(),
            r.speedup(),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the self-benchmark as JSON (hand-formatted: no serde offline).
pub fn bench_report_json(jobs: usize, entries: &[BenchEntry]) -> String {
    let total_serial: f64 = entries.iter().map(|e| e.serial_secs).sum();
    let total_parallel: f64 = entries.iter().map(|e| e.parallel_secs).sum();
    let total_events: u64 = entries.iter().map(|e| e.sim_events).sum();
    let total_runs: usize = entries.iter().map(|e| e.runs).sum();
    let speedup = if total_parallel > 0.0 { total_serial / total_parallel } else { 0.0 };
    let mut out = String::from("{\n");
    out.push_str(&format!("  {},\n", HostMeta::detect().json_fragment()));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"total_runs\": {total_runs},\n"));
    out.push_str(&format!("  \"total_sim_events\": {total_events},\n"));
    out.push_str(&format!("  \"serial_wall_secs\": {total_serial:.6},\n"));
    out.push_str(&format!("  \"parallel_wall_secs\": {total_parallel:.6},\n"));
    out.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    out.push_str(&format!(
        "  \"serial_events_per_sec\": {:.1},\n",
        if total_serial > 0.0 { total_events as f64 / total_serial } else { 0.0 }
    ));
    out.push_str(&format!(
        "  \"parallel_events_per_sec\": {:.1},\n",
        if total_parallel > 0.0 { total_events as f64 / total_parallel } else { 0.0 }
    ));
    out.push_str("  \"experiments\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"runs\": {}, \"sim_events\": {}, \
             \"serial_secs\": {:.6}, \"parallel_secs\": {:.6}, \"speedup\": {:.3}}}{sep}\n",
            e.name,
            e.runs,
            e.sim_events,
            e.serial_secs,
            e.parallel_secs,
            if e.parallel_secs > 0.0 { e.serial_secs / e.parallel_secs } else { 0.0 },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The number of uniform cells in the multi-core gate grid.
pub const PAR_GATE_CELLS: usize = 8;

/// The multi-core gate grid: [`PAR_GATE_CELLS`] identical-cost cells, so
/// wall-clock at `--jobs j` isolates the work-stealing pool's scaling
/// from any cell-size skew. Cells differ only by seed.
pub fn par_gate_grid(quick: bool, seed: u64) -> RunGrid {
    use ocpt_harness::{Algo, RunConfig, WorkloadSpec};
    let mut g = RunGrid::new(
        "par_gate",
        &["cell"],
        &[("msgs", ocpt_harness::ColFmt::Int), ("events", ocpt_harness::ColFmt::Int)],
    );
    for i in 0..PAR_GATE_CELLS {
        let mut cfg = RunConfig::new(8, seed.wrapping_add(i as u64));
        cfg.workload = WorkloadSpec::uniform_mesh(SimDuration::from_millis(2));
        cfg.workload_duration = SimDuration::from_millis(if quick { 400 } else { 2_000 });
        cfg.checkpoint_interval = SimDuration::from_millis(250);
        cfg.state_bytes = 512 * 1024;
        g.cell(&[i.to_string()], Algo::ocpt(), cfg, |r| {
            vec![r.app_messages as f64, r.sim_events as f64]
        });
    }
    g
}

/// One worker-count measurement of the multi-core gate.
#[derive(Clone, Debug)]
pub struct ParRow {
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock seconds for the whole gate grid.
    pub wall_secs: f64,
    /// Simulator events dispatched (identical for every `jobs`).
    pub sim_events: u64,
}

/// Render the multi-core gate as JSON — the committed `BENCH_par.json`.
/// Speedups are relative to the `jobs = 1` row; `host.cores` is the
/// number a reader must check before interpreting them (on a single-core
/// host every speedup is honestly ~1.0 — real scaling numbers come from
/// CI's `bench-multicore` job on a ≥4-core runner).
pub fn par_report_json(rows: &[ParRow], runs: usize) -> String {
    let base = rows.first().map(|r| r.wall_secs).unwrap_or(0.0);
    let mut out = String::from("{\n");
    out.push_str(&format!("  {},\n", HostMeta::detect().json_fragment()));
    out.push_str(&format!("  \"grid\": \"par_gate ({runs} uniform heavy cells)\",\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"jobs\": {}, \"wall_secs\": {:.6}, \"speedup\": {:.3}, \
             \"events_per_sec\": {:.1}}}{sep}\n",
            r.jobs,
            r.wall_secs,
            if r.wall_secs > 0.0 { base / r.wall_secs } else { 0.0 },
            if r.wall_secs > 0.0 { r.sim_events as f64 / r.wall_secs } else { 0.0 },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One system size of the E9 scale sweep, for `BENCH_scale.json`.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// System size.
    pub n: usize,
    /// Measured piggyback bytes per application message (adaptive
    /// encoding, averaged over the run).
    pub piggy_bytes_per_msg: f64,
    /// What a fixed dense bitmap would cost: `8 + 1 + 1 + ⌈N/8⌉` bytes.
    pub dense_bytes_per_msg: f64,
    /// Application messages sent.
    pub app_messages: u64,
    /// Control messages sent.
    pub ctrl_messages: u64,
    /// Globally completed checkpoint rounds.
    pub rounds: u64,
    /// Resolved control group size (`None` = flat ring).
    pub group_size: Option<u32>,
    /// Number of groups under that size.
    pub num_groups: Option<u64>,
    /// Simulator events dispatched.
    pub sim_events: u64,
    /// Wall-clock seconds for the run.
    pub wall_secs: f64,
}

/// Render the scale sweep as JSON — the committed `BENCH_scale.json`.
pub fn scale_report_json(rows: &[ScaleRow], auto_topology: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  {},\n", HostMeta::detect().json_fragment()));
    out.push_str(&format!(
        "  \"topology\": \"{}\",\n",
        if auto_topology { "auto (flat <= 512, ceil(sqrt(N)) groups above)" } else { "explicit" }
    ));
    out.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let savings = if r.piggy_bytes_per_msg > 0.0 {
            r.dense_bytes_per_msg / r.piggy_bytes_per_msg
        } else {
            0.0
        };
        let ctrl_per_round = r.ctrl_messages as f64 / r.rounds.max(1) as f64;
        out.push_str(&format!(
            "    {{\"n\": {}, \"piggy_bytes_per_msg\": {:.2}, \"dense_bytes_per_msg\": {:.2}, \
             \"piggy_savings_x\": {:.2}, \"app_messages\": {}, \"ctrl_messages\": {}, \
             \"ctrl_per_round\": {:.1}, \"rounds\": {}, \"group_size\": {}, \"num_groups\": {}, \
             \"sim_events\": {}, \"wall_secs\": {:.3}, \"events_per_sec\": {:.0}}}{sep}\n",
            r.n,
            r.piggy_bytes_per_msg,
            r.dense_bytes_per_msg,
            savings,
            r.app_messages,
            r.ctrl_messages,
            ctrl_per_round,
            r.rounds,
            r.group_size.map_or("null".to_string(), |s| s.to_string()),
            r.num_groups.map_or("null".to_string(), |g| g.to_string()),
            r.sim_events,
            r.wall_secs,
            if r.wall_secs > 0.0 { r.sim_events as f64 / r.wall_secs } else { 0.0 },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One (strategy, fault pattern) cell of the E10 logging matrix, for
/// `BENCH_log.json`.
#[derive(Clone, Debug)]
pub struct LogRow {
    /// Logging strategy short name (`selective` / `sender` / `receiver` /
    /// `causal`).
    pub strategy: &'static str,
    /// Fault pattern label (`single` / `correlated` / `during-finalize`).
    pub fault: String,
    /// Durable recovery line the system rolls back to.
    pub line: u64,
    /// Durable log bytes across all processes at the line.
    pub log_bytes: u64,
    /// Modeled replay wall-clock, milliseconds (max over processes).
    pub replay_ms: f64,
    /// Received events replayed from local payload bytes.
    pub replayed_local: u64,
    /// Determinants replayed after a payload fetch from a peer's log.
    pub fetched: u64,
    /// Determinants with no durable payload anywhere (replay gaps).
    pub orphans: u64,
    /// In-transit messages no sender log could regenerate.
    pub lost_in_transit: u64,
    /// Application messages the run sent (normalises log_bytes).
    pub app_messages: u64,
    /// Simulator events dispatched.
    pub sim_events: u64,
}

/// Render the E10 logging matrix as JSON — the committed `BENCH_log.json`.
pub fn log_report_json(rows: &[LogRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  {},\n", HostMeta::detect().json_fragment()));
    out.push_str("  \"strategies\": [\"selective\", \"sender\", \"receiver\", \"causal\"],\n");
    out.push_str("  \"faults\": [\"single\", \"correlated\", \"during-finalize\"],\n");
    out.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"fault\": \"{}\", \"line\": {}, \
             \"log_bytes\": {}, \"log_bytes_per_msg\": {:.2}, \"replay_ms\": {:.3}, \
             \"replayed_local\": {}, \"fetched\": {}, \"orphans\": {}, \
             \"lost_in_transit\": {}, \"app_messages\": {}, \"sim_events\": {}}}{sep}\n",
            r.strategy,
            r.fault,
            r.line,
            r.log_bytes,
            r.log_bytes as f64 / r.app_messages.max(1) as f64,
            r.replay_ms,
            r.replayed_local,
            r.fetched,
            r.orphans,
            r.lost_in_transit,
            r.app_messages,
            r.sim_events,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One (strategy, fault pattern) cell of the health matrix, for the
/// committed `BENCH_health.json`: what the `ocpt-health` trace report
/// tracks per run, measured here per logging strategy — round-latency
/// percentiles over complete rounds, durable-log growth at the recovery
/// line and the correctness gaps (orphans, in-transit losses).
#[derive(Clone, Debug)]
pub struct HealthRow {
    /// Logging strategy short name (`selective` / `sender` / `receiver` /
    /// `causal`).
    pub strategy: &'static str,
    /// Fault pattern label (`none` baseline plus the three E10 shapes).
    pub fault: String,
    /// Rounds completed by every process.
    pub rounds_complete: u64,
    /// Round latency p50 over complete rounds, milliseconds.
    pub p50_ms: f64,
    /// Round latency p90 over complete rounds, milliseconds.
    pub p90_ms: f64,
    /// Round latency p99 over complete rounds, milliseconds.
    pub p99_ms: f64,
    /// Slowest complete round, milliseconds.
    pub max_ms: f64,
    /// Durable recovery line the run ends with.
    pub line: u64,
    /// Durable log bytes across all processes at the line (the JSON
    /// normalises this per application message: the log growth rate).
    pub log_bytes: u64,
    /// Determinants with no durable payload anywhere at the line.
    pub orphans: u64,
    /// In-transit messages no sender log could regenerate.
    pub lost_in_transit: u64,
    /// Application messages the run sent.
    pub app_messages: u64,
    /// Simulator events dispatched.
    pub sim_events: u64,
}

/// Run the health matrix: every [`LoggingKind`] (or just `only`) under the
/// fault-free baseline plus the three [`e10_fault_patterns`] shapes, one
/// direct run per cell. Round-latency percentiles come from
/// [`ocpt_harness::runner::RoundStat`]s of globally complete rounds
/// (exact nearest-rank quantiles); log growth and gap counters from
/// [`log_recovery_report`] at the run's durable line.
pub fn health_rows(base: &ExpParams, crash_ms: u64, only: Option<LoggingKind>) -> Vec<HealthRow> {
    let patterns = e10_fault_patterns(base, crash_ms);
    let mut rows = Vec::new();
    for kind in LoggingKind::ALL {
        if only.is_some_and(|o| o != kind) {
            continue;
        }
        for cell in 0..=patterns.len() {
            let mut cfg = base.config();
            let fault = if cell == 0 {
                "none".to_string()
            } else {
                let (name, plan) = &patterns[cell - 1];
                cfg.faults = plan.clone();
                cfg.stop_on_crash = true;
                (*name).to_string()
            };
            let r = run(&Algo::ocpt_logging(kind), cfg);
            assert!(
                r.protocol_error.is_none(),
                "{} × {fault}: {:?}",
                kind.name(),
                r.protocol_error
            );
            let rep = log_recovery_report(&r).unwrap_or_else(|e| {
                eprintln!("error: health {} × {fault}: {e}", kind.name());
                std::process::exit(2);
            });
            let mut q = Quantiles::new();
            for s in r.round_stats.iter().filter(|s| s.completes == r.n) {
                q.record(s.latency_ns() as f64 / 1e6);
            }
            rows.push(HealthRow {
                strategy: kind.name(),
                fault,
                rounds_complete: r.complete_rounds,
                p50_ms: q.try_quantile(0.50).unwrap_or(0.0),
                p90_ms: q.try_quantile(0.90).unwrap_or(0.0),
                p99_ms: q.try_quantile(0.99).unwrap_or(0.0),
                max_ms: q.try_quantile(1.0).unwrap_or(0.0),
                line: rep.line,
                log_bytes: rep.log_bytes,
                orphans: rep.orphans,
                lost_in_transit: rep.lost_in_transit,
                app_messages: r.app_messages,
                sim_events: r.sim_events,
            });
        }
    }
    rows
}

/// Render the health matrix as JSON — the committed `BENCH_health.json`.
pub fn health_report_json(rows: &[HealthRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  {},\n", HostMeta::detect().json_fragment()));
    out.push_str("  \"strategies\": [\"selective\", \"sender\", \"receiver\", \"causal\"],\n");
    out.push_str("  \"faults\": [\"none\", \"single\", \"correlated\", \"during-finalize\"],\n");
    out.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"fault\": \"{}\", \"rounds_complete\": {}, \
             \"round_latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \
             \"max\": {:.3}}}, \"line\": {}, \"log_bytes\": {}, \"log_bytes_per_msg\": {:.2}, \
             \"orphans\": {}, \"lost_in_transit\": {}, \"app_messages\": {}, \
             \"sim_events\": {}}}{sep}\n",
            r.strategy,
            r.fault,
            r.rounds_complete,
            r.p50_ms,
            r.p90_ms,
            r.p99_ms,
            r.max_ms,
            r.line,
            r.log_bytes,
            r.log_bytes as f64 / r.app_messages.max(1) as f64,
            r.orphans,
            r.lost_in_transit,
            r.app_messages,
            r.sim_events,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

impl ExpArgs {
    /// Under `--health-json <path>`, run the health matrix at this scale
    /// and write the report there (no-op otherwise). Every `exp_*` binary
    /// calls this after printing its own table.
    pub fn maybe_emit_health(&self) {
        let Some(path) = &self.health_json else { return };
        let crash_ms = if self.quick { 600 } else { 4_000 };
        let rows = health_rows(&self.params(), crash_ms, self.strategy);
        let report = health_report_json(&rows);
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote health report to {path}");
        eprint!("{report}");
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: exp_* [--quick] [--csv] [--seed <u64>] [--jobs <n|0=auto>] \
         [--replicates <r>] [--trace-out <dir>] [--bench-json <path>] \
         [--sched-json <path>] [--par-json <path>] [--health-json <path>] \
         [--strategy <selective|sender|receiver|causal>]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_shape() {
        let entries = vec![
            BenchEntry {
                name: "e1".into(),
                serial_secs: 2.0,
                parallel_secs: 0.5,
                runs: 12,
                sim_events: 1000,
            },
            BenchEntry {
                name: "e2".into(),
                serial_secs: 1.0,
                parallel_secs: 0.5,
                runs: 6,
                sim_events: 500,
            },
        ];
        let j = bench_report_json(4, &entries);
        assert!(j.contains("\"jobs\": 4"));
        assert!(j.contains("\"speedup\": 3.000"));
        assert!(j.contains("\"name\": \"e1\""));
        assert!(j.contains("\"total_runs\": 18"));
        // Host metadata is machine-readable in the report.
        assert!(j.contains("\"host\": {\"cores\": "));
        assert!(j.contains("\"rustc\": \""));
        // Valid-ish JSON: balanced braces/brackets, no trailing comma.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains(",\n  ]"));
    }

    #[test]
    fn sched_json_shape() {
        let rows = vec![
            sched_bench::SchedBenchRow {
                name: "cancel_heavy",
                events: 10_000,
                heap_secs: 0.4,
                wheel_secs: 0.1,
            },
            sched_bench::SchedBenchRow {
                name: "crash_purge",
                events: 5_000,
                heap_secs: 0.9,
                wheel_secs: 0.3,
            },
        ];
        let j = sched_report_json(&rows);
        assert!(j.contains("\"host\": {\"cores\": "));
        assert!(j.contains("\"baseline\": \"reference_heap"));
        assert!(j.contains("\"name\": \"cancel_heavy\""));
        assert!(j.contains("\"speedup\": 4.000"));
        assert!(j.contains("\"speedup\": 3.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains(",\n  ]"));
    }

    #[test]
    fn scale_json_shape() {
        let rows = vec![
            ScaleRow {
                n: 100,
                piggy_bytes_per_msg: 14.5,
                dense_bytes_per_msg: 23.0,
                app_messages: 5_000,
                ctrl_messages: 120,
                rounds: 6,
                group_size: None,
                num_groups: None,
                sim_events: 40_000,
                wall_secs: 0.2,
            },
            ScaleRow {
                n: 100_000,
                piggy_bytes_per_msg: 20.0,
                dense_bytes_per_msg: 12_509.0,
                app_messages: 80_000,
                ctrl_messages: 2_000,
                rounds: 2,
                group_size: Some(317),
                num_groups: Some(316),
                sim_events: 900_000,
                wall_secs: 12.0,
            },
        ];
        let j = scale_report_json(&rows, true);
        assert!(j.contains("\"host\": {\"cores\": "));
        assert!(j.contains("\"topology\": \"auto"));
        assert!(j.contains("\"n\": 100000"));
        // Flat rows serialize topology fields as JSON null, grouped as numbers.
        assert!(j.contains("\"group_size\": null"));
        assert!(j.contains("\"group_size\": 317"));
        assert!(j.contains("\"num_groups\": 316"));
        assert!(j.contains("\"piggy_savings_x\": 625.45"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains(",\n  ]"));
    }

    #[test]
    fn log_json_shape() {
        let rows = vec![
            LogRow {
                strategy: "selective",
                fault: "single".into(),
                line: 3,
                log_bytes: 4_096,
                replay_ms: 0.42,
                replayed_local: 12,
                fetched: 0,
                orphans: 0,
                lost_in_transit: 0,
                app_messages: 2_048,
                sim_events: 90_000,
            },
            LogRow {
                strategy: "causal",
                fault: "during-finalize".into(),
                line: 2,
                log_bytes: 512,
                replay_ms: 1.2,
                replayed_local: 0,
                fetched: 9,
                orphans: 3,
                lost_in_transit: 1,
                app_messages: 2_048,
                sim_events: 90_000,
            },
        ];
        let j = log_report_json(&rows);
        assert!(j.contains("\"host\": {\"cores\": "));
        assert!(j.contains("\"strategies\": [\"selective\", \"sender\", \"receiver\", \"causal\"]"));
        assert!(j.contains("\"strategy\": \"causal\""));
        assert!(j.contains("\"fault\": \"during-finalize\""));
        assert!(j.contains("\"log_bytes_per_msg\": 2.00"));
        assert!(j.contains("\"orphans\": 3"));
        assert!(j.contains("\"lost_in_transit\": 1"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains(",\n  ]"));
    }

    #[test]
    fn health_json_shape() {
        let rows = vec![
            HealthRow {
                strategy: "selective",
                fault: "none".into(),
                rounds_complete: 9,
                p50_ms: 12.5,
                p90_ms: 14.0,
                p99_ms: 15.25,
                max_ms: 15.25,
                line: 9,
                log_bytes: 4_096,
                orphans: 0,
                lost_in_transit: 0,
                app_messages: 2_048,
                sim_events: 90_000,
            },
            HealthRow {
                strategy: "causal",
                fault: "during-finalize".into(),
                rounds_complete: 2,
                p50_ms: 13.0,
                p90_ms: 13.0,
                p99_ms: 13.0,
                max_ms: 13.0,
                line: 2,
                log_bytes: 512,
                orphans: 3,
                lost_in_transit: 1,
                app_messages: 1_024,
                sim_events: 40_000,
            },
        ];
        let j = health_report_json(&rows);
        assert!(j.contains("\"host\": {\"cores\": "));
        assert!(
            j.contains("\"faults\": [\"none\", \"single\", \"correlated\", \"during-finalize\"]")
        );
        assert!(j.contains("\"round_latency_ms\": {\"p50\": 12.500, \"p90\": 14.000"));
        assert!(j.contains("\"log_bytes_per_msg\": 2.00"));
        assert!(j.contains("\"orphans\": 3"));
        assert!(j.contains("\"lost_in_transit\": 1"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains(",\n  ]"));
    }

    #[test]
    fn health_rows_cover_baseline_and_faults() {
        let base = ExpParams {
            n: 3,
            seed: 7,
            workload_ms: 500,
            msg_gap: SimDuration::from_millis(5),
            ckpt_interval: SimDuration::from_millis(150),
            state_bytes: 64 * 1024,
        };
        let rows = health_rows(&base, 300, Some(LoggingKind::Selective));
        let faults: Vec<&str> = rows.iter().map(|r| r.fault.as_str()).collect();
        assert_eq!(faults, ["none", "single", "correlated", "during-finalize"]);
        assert!(rows.iter().all(|r| r.strategy == "selective"));
        // The fault-free baseline completes rounds and measures latency.
        assert!(rows[0].rounds_complete > 0);
        assert!(rows[0].p50_ms > 0.0 && rows[0].p50_ms <= rows[0].max_ms);
        assert!(rows[0].log_bytes > 0);
    }

    #[test]
    fn strategy_kinds_parse_like_the_flag() {
        for (s, k) in [
            ("selective", LoggingKind::Selective),
            ("sender-based", LoggingKind::SenderBased),
            ("receiver", LoggingKind::ReceiverBased),
            ("causal-compressed", LoggingKind::CausalCompressed),
        ] {
            assert_eq!(LoggingKind::parse(s), Some(k));
        }
        assert_eq!(LoggingKind::parse("pessimistic"), None);
    }

    #[test]
    fn par_json_shape() {
        let rows = vec![
            ParRow { jobs: 1, wall_secs: 8.0, sim_events: 4_000_000 },
            ParRow { jobs: 2, wall_secs: 4.0, sim_events: 4_000_000 },
            ParRow { jobs: 4, wall_secs: 2.0, sim_events: 4_000_000 },
        ];
        let j = par_report_json(&rows, PAR_GATE_CELLS);
        assert!(j.contains("\"host\": {\"cores\": "));
        assert!(j.contains("\"grid\": \"par_gate (8 uniform heavy cells)\""));
        assert!(j.contains("\"jobs\": 1"));
        assert!(j.contains("\"speedup\": 1.000"));
        assert!(j.contains("\"speedup\": 4.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains(",\n  ]"));
    }

    #[test]
    fn par_gate_grid_is_uniform_and_deterministic() {
        let g = par_gate_grid(true, 42);
        assert_eq!(g.cell_count(), PAR_GATE_CELLS);
        let a = g.run(&GridOptions { jobs: 2, replicates: 1 });
        let b = par_gate_grid(true, 42).run(&GridOptions { jobs: 4, replicates: 1 });
        assert_eq!(a.table.render(), b.table.render());
        assert_eq!(a.sim_events, b.sim_events);
    }

    #[test]
    fn host_meta_detects_something() {
        let h = HostMeta::detect();
        assert!(h.cores >= 1);
        assert!(!h.rustc.is_empty());
        assert!(!h.os.is_empty());
    }
}
