//! # ocpt-bench — experiment binaries and Criterion benches
//!
//! One `exp_*` binary per experiment in `DESIGN.md` §4 (run with
//! `cargo run -p ocpt-bench --release --bin exp_contention`), plus
//! Criterion microbenches (`cargo bench`). This library holds the tiny
//! shared argument parser the binaries use.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ocpt_harness::experiments::ExpParams;
use ocpt_sim::SimDuration;

/// Command-line options shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Reduced problem sizes for smoke runs.
    pub quick: bool,
    /// Also print the table as CSV.
    pub csv: bool,
    /// Master seed.
    pub seed: u64,
}

impl ExpArgs {
    /// Parse from `std::env::args`; exits with usage on error.
    pub fn parse() -> ExpArgs {
        let mut args = ExpArgs { quick: false, csv: false, seed: 42 };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.quick = true,
                "--csv" => args.csv = true,
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// Base experiment parameters at this scale.
    pub fn params(&self) -> ExpParams {
        if self.quick {
            ExpParams {
                n: 4,
                seed: self.seed,
                workload_ms: 1_000,
                msg_gap: SimDuration::from_millis(5),
                ckpt_interval: SimDuration::from_millis(250),
                state_bytes: 512 * 1024,
            }
        } else {
            // Storage utilisation n·state/(interval·bandwidth) ≈ 0.3: the
            // server is busy but not saturated, so contention measures
            // write *clustering*, not overload.
            ExpParams {
                n: 8,
                seed: self.seed,
                workload_ms: 10_000,
                msg_gap: SimDuration::from_millis(5),
                ckpt_interval: SimDuration::from_secs(1),
                state_bytes: 2 * 1024 * 1024,
            }
        }
    }

    /// Print a finished table (and CSV when requested).
    pub fn emit(&self, t: &ocpt_metrics::Table) {
        println!("{}", t.render());
        if self.csv {
            println!("{}", t.to_csv());
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: exp_* [--quick] [--csv] [--seed <u64>]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
