//! Scheduler microbenchmark workloads: deterministic operation sequences
//! driven against either event-queue implementation, timed head-to-head.
//!
//! Each workload targets one regime of the kernel:
//!
//! * `churn` — steady schedule/pop at a deep queue (the common case of a
//!   healthy run);
//! * `cancel_heavy` — a large live-timer population with constant
//!   set/cancel turnover (protocol retransmission timers);
//! * `crash_purge` — repeated `drop_events_for` over a deep queue (fault
//!   injection: O(1) tombstone vs O(n log n) drain-and-rebuild);
//! * `far_future` — a mix of near deliveries and far-future timers that
//!   exercises the wheel's overflow heap and cascade path;
//! * `burst_window` — deliveries clustered on shared `(instant, target)`
//!   windows, drained with `pop_matching` (the run loop's batched
//!   delivery pattern) instead of the general pop path.
//!
//! The same op sequence (same derived RNG streams) runs on both kinds, so
//! the dispatched-event counts match exactly and wall-clock is the only
//! difference. Used by `exp_all --sched-json` (committed `BENCH_sched.json`)
//! and by `benches/scheduler_micro.rs`.

use ocpt_sim::scheduler::{Scheduler, SchedulerKind};
use ocpt_sim::{Event, MsgId, ProcessId, SimDuration, SimRng};

/// Process-space size for generated events.
const N: u16 = 8;

fn deliver(rng: &mut SimRng, i: u64) -> Event<u64> {
    let src = ProcessId(rng.next_u64_below(N as u64) as u32);
    let dst = ProcessId(rng.next_u64_below(N as u64) as u32);
    Event::Deliver { src, dst, msg_id: MsgId(i), msg: i }
}

/// Steady-state schedule/pop churn at a queue depth of ~`depth`.
/// Returns events dispatched.
pub fn churn(kind: SchedulerKind, depth: u64, ops: u64) -> u64 {
    let mut s: Scheduler<u64> = Scheduler::with_kind(kind);
    let mut rng = SimRng::derive(0xC4E4, 0);
    for i in 0..depth {
        s.schedule_after(SimDuration::from_micros(rng.next_u64_below(5_000)), deliver(&mut rng, i));
    }
    for i in 0..ops {
        let (_, _) = s.pop().expect("queue stays primed");
        s.schedule_after(
            SimDuration::from_micros(rng.next_u64_below(5_000)),
            deliver(&mut rng, depth + i),
        );
    }
    s.events_dispatched()
}

/// A live population of ~`depth` timers with constant set/cancel turnover:
/// each step sets one timer, cancels one survivor, and pops one event.
pub fn cancel_heavy(kind: SchedulerKind, depth: u64, ops: u64) -> u64 {
    let mut s: Scheduler<u64> = Scheduler::with_kind(kind);
    let mut rng = SimRng::derive(0xCA7C, 0);
    let mut live = Vec::with_capacity(depth as usize * 2);
    for _ in 0..depth * 2 {
        let pid = ProcessId(rng.next_u64_below(N as u64) as u32);
        let d = SimDuration::from_micros(1 + rng.next_u64_below(10_000));
        live.push(s.set_timer(pid, d, 0));
    }
    for _ in 0..ops {
        let pid = ProcessId(rng.next_u64_below(N as u64) as u32);
        let d = SimDuration::from_micros(1 + rng.next_u64_below(10_000));
        live.push(s.set_timer(pid, d, 0));
        // Cancel a random mid-queue survivor: the heap still carries the
        // corpse to the top before skipping it; the wheel discards it in
        // passing.
        let idx = rng.next_usize_below(live.len());
        s.cancel_timer(live.swap_remove(idx));
        s.pop();
    }
    s.events_dispatched()
}

/// Repeated fail-stop purges over a deep queue: refill `per_round` events
/// spread across all processes, crash one, pop a few, repeat.
pub fn crash_purge(kind: SchedulerKind, per_round: u64, rounds: u64) -> u64 {
    let mut s: Scheduler<u64> = Scheduler::with_kind(kind);
    let mut rng = SimRng::derive(0xC4A5, 0);
    let mut i = 0u64;
    for _ in 0..rounds {
        for _ in 0..per_round {
            s.schedule_after(
                SimDuration::from_micros(1 + rng.next_u64_below(20_000)),
                deliver(&mut rng, i),
            );
            i += 1;
        }
        let victim = ProcessId(rng.next_u64_below(N as u64) as u32);
        s.drop_events_for(victim);
        for _ in 0..per_round / 16 {
            s.pop();
        }
    }
    s.events_dispatched() + s.messages_lost_at_crash()
}

/// Near deliveries mixed with far-future timers (seconds to minutes out —
/// the wheel's overflow horizon), popping as it goes.
pub fn far_future(kind: SchedulerKind, ops: u64) -> u64 {
    let mut s: Scheduler<u64> = Scheduler::with_kind(kind);
    let mut rng = SimRng::derive(0xFA4F, 0);
    for i in 0..ops {
        s.schedule_after(SimDuration::from_micros(rng.next_u64_below(2_000)), deliver(&mut rng, i));
        if i % 4 == 0 {
            let pid = ProcessId(rng.next_u64_below(N as u64) as u32);
            let far = SimDuration::from_millis(1_000 + rng.next_u64_below(200_000));
            s.set_timer(pid, far, i);
        }
        if i % 2 == 0 {
            s.pop();
        }
    }
    while s.pop().is_some() {}
    s.events_dispatched()
}

/// Schedule `bursts` clusters of `burst_size` deliveries, each cluster
/// landing on one `(instant, target)` pair — exactly the population shape
/// the run loop's batched delivery windows exploit. Shared with
/// [`burst_per_event`], which drains the same population through plain
/// pops, so the two are a direct head-to-head on the window fast path.
fn burst_population(s: &mut Scheduler<u64>, rng: &mut SimRng, next_id: &mut u64, burst_size: u64) {
    let dst = ProcessId(rng.next_u64_below(N as u64) as u32);
    let at = SimDuration::from_micros(1 + rng.next_u64_below(5_000));
    for _ in 0..burst_size {
        let src = ProcessId(rng.next_u64_below(N as u64) as u32);
        s.schedule_after(at, Event::Deliver { src, dst, msg_id: MsgId(*next_id), msg: *next_id });
        *next_id += 1;
    }
}

/// Clustered deliveries drained window-at-a-time: one general pop opens
/// each `(instant, target)` window, then `pop_matching` claims the rest
/// with a front-of-queue compare instead of a full scheduling decision.
pub fn burst_window(kind: SchedulerKind, bursts: u64, burst_size: u64) -> u64 {
    let mut s: Scheduler<u64> = Scheduler::with_kind(kind);
    let mut rng = SimRng::derive(0xB057, 0);
    let mut id = 0u64;
    let drain = |s: &mut Scheduler<u64>| {
        if let Some((at, ev)) = s.pop() {
            if !ev.is_fault() {
                let pid = ev.target();
                while s.pop_matching(at, pid).is_some() {}
            }
        }
    };
    for _ in 0..bursts {
        burst_population(&mut s, &mut rng, &mut id, burst_size);
        drain(&mut s);
    }
    while s.peek_time().is_some() {
        drain(&mut s);
    }
    s.events_dispatched()
}

/// The same clustered population as [`burst_window`], drained one general
/// pop at a time — the baseline the batching exists to beat.
pub fn burst_per_event(kind: SchedulerKind, bursts: u64, burst_size: u64) -> u64 {
    let mut s: Scheduler<u64> = Scheduler::with_kind(kind);
    let mut rng = SimRng::derive(0xB057, 0);
    let mut id = 0u64;
    for _ in 0..bursts {
        burst_population(&mut s, &mut rng, &mut id, burst_size);
        for _ in 0..burst_size {
            if s.pop().is_none() {
                break;
            }
        }
    }
    while s.pop().is_some() {}
    s.events_dispatched()
}

/// One workload's head-to-head measurement.
#[derive(Clone, Debug)]
pub struct SchedBenchRow {
    /// Workload name.
    pub name: &'static str,
    /// Events dispatched (identical on both kinds by construction).
    pub events: u64,
    /// Wall-clock seconds on the reference `BinaryHeap`.
    pub heap_secs: f64,
    /// Wall-clock seconds on the timing wheel.
    pub wheel_secs: f64,
}

impl SchedBenchRow {
    /// Throughput on the reference heap.
    pub fn heap_events_per_sec(&self) -> f64 {
        if self.heap_secs > 0.0 {
            self.events as f64 / self.heap_secs
        } else {
            0.0
        }
    }

    /// Throughput on the timing wheel.
    pub fn wheel_events_per_sec(&self) -> f64 {
        if self.wheel_secs > 0.0 {
            self.events as f64 / self.wheel_secs
        } else {
            0.0
        }
    }

    /// Wheel speedup over the heap (>1 = wheel faster).
    pub fn speedup(&self) -> f64 {
        if self.wheel_secs > 0.0 {
            self.heap_secs / self.wheel_secs
        } else {
            0.0
        }
    }
}

/// The standard microbench suite at full scale (as committed in
/// `BENCH_sched.json`). `scale` divides the op counts for smoke runs.
///
/// Depths target the deep-queue regime the wheel exists for (the grid
/// sweeps the tentpole motivates run far more pending events than a toy
/// queue); each (workload, kind) pair is timed several times interleaved
/// and the minimum wall time is reported — the standard microbench guard
/// against scheduling noise on a busy shared host.
pub fn run_suite(scale: u64) -> Vec<SchedBenchRow> {
    let scale = scale.max(1);
    let reps = 3;
    let time = |f: &dyn Fn(SchedulerKind) -> u64, kind| {
        let t0 = std::time::Instant::now();
        let events = f(kind);
        (events, t0.elapsed().as_secs_f64())
    };
    let workloads: Vec<(&'static str, Box<dyn Fn(SchedulerKind) -> u64>)> = vec![
        ("churn", Box::new(move |k| churn(k, 4_096, 2_000_000 / scale))),
        ("cancel_heavy", Box::new(move |k| cancel_heavy(k, 131_072, 1_000_000 / scale))),
        ("crash_purge", Box::new(move |k| crash_purge(k, 16_384, (300 / scale).max(2)))),
        ("far_future", Box::new(move |k| far_future(k, 1_000_000 / scale))),
        ("burst_window", Box::new(move |k| burst_window(k, (60_000 / scale).max(1), 16))),
    ];
    workloads
        .into_iter()
        .map(|(name, f)| {
            let (mut heap_secs, mut wheel_secs) = (f64::INFINITY, f64::INFINITY);
            let (mut he, mut we) = (0, 0);
            for _ in 0..reps {
                let (e, t) = time(f.as_ref(), SchedulerKind::ReferenceHeap);
                he = e;
                heap_secs = heap_secs.min(t);
                let (e, t) = time(f.as_ref(), SchedulerKind::Wheel);
                we = e;
                wheel_secs = wheel_secs.min(t);
            }
            assert_eq!(he, we, "{name}: kinds dispatched different event counts");
            SchedBenchRow { name, events: we, heap_secs, wheel_secs }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both kinds must process the exact same op sequence: the dispatched
    /// counts agree for every workload (run_suite asserts it internally).
    #[test]
    fn workloads_dispatch_identically_across_kinds() {
        for k in [SchedulerKind::Wheel, SchedulerKind::ReferenceHeap] {
            assert!(churn(k, 64, 500) > 0);
            assert!(cancel_heavy(k, 64, 500) > 0);
            assert!(crash_purge(k, 128, 4) > 0);
            assert!(far_future(k, 500) > 0);
            assert!(burst_window(k, 50, 8) > 0);
        }
        let rows = run_suite(1_000);
        assert_eq!(rows.len(), 5);
        for r in rows {
            assert!(r.events > 0, "{}: no events", r.name);
        }
    }

    /// Window drain and per-event drain cover the same population: every
    /// scheduled event is dispatched exactly once either way, on either
    /// kernel.
    #[test]
    fn burst_drain_styles_dispatch_identically() {
        for k in [SchedulerKind::Wheel, SchedulerKind::ReferenceHeap] {
            assert_eq!(burst_window(k, 40, 8), 40 * 8, "windowed drain lost events");
            assert_eq!(burst_per_event(k, 40, 8), 40 * 8, "per-event drain lost events");
        }
    }
}
