//! Dev probe: time one scheduler workload (min-of-reps, heap then
//! wheel) outside the full suite — for perf work where `exp_all
//! --sched-json` is too coarse.
//!
//! Usage: `probe <workload> [reps]` where workload is one of
//! `churn|cancel|crash|far|burst|nodrop` (timed head-to-head),
//! `stats` (crash run printing arena counters), or `phases`
//! (crash run printing a schedule/drop/pop wall-clock breakdown).

use ocpt_bench::sched_bench;
use ocpt_sim::scheduler::{Scheduler, SchedulerKind};
use ocpt_sim::{Event, MsgId, ProcessId, SimDuration, SimRng};

fn crash_probe(per_round: u64, rounds: u64) {
    const N: u64 = 8;
    let mut s: Scheduler<u64> = Scheduler::with_kind(SchedulerKind::Wheel);
    let mut rng = SimRng::derive(0xC4A5, 0);
    let mut i = 0u64;
    for r in 0..rounds {
        for _ in 0..per_round {
            let src = ProcessId(rng.next_u64_below(N) as u32);
            let dst = ProcessId(rng.next_u64_below(N) as u32);
            s.schedule_after(
                SimDuration::from_micros(1 + rng.next_u64_below(20_000)),
                Event::Deliver { src, dst, msg_id: MsgId(i), msg: i },
            );
            i += 1;
        }
        let victim = ProcessId(rng.next_u64_below(N) as u32);
        s.drop_events_for(victim);
        for _ in 0..per_round / 16 {
            s.pop();
        }
        if r % 50 == 0 || r == rounds - 1 {
            let st = s.arena_stats();
            println!(
                "round {r}: pending={} arena_live={} hwm={} allocs={} reuses={} frees={}",
                s.pending(),
                st.live,
                st.hwm,
                st.allocs,
                st.reuses,
                st.frees
            );
        }
    }
}

/// Same op mix as crash_purge but no drops: isolates the base wheel
/// machinery cost at a ~100k population with a 20 ms spread.
fn nodrop(kind: SchedulerKind, per_round: u64, rounds: u64) -> u64 {
    const N: u64 = 8;
    let mut s: Scheduler<u64> = Scheduler::with_kind(kind);
    let mut rng = SimRng::derive(0xC4A5, 0);
    let mut i = 0u64;
    for _ in 0..6 {
        // prime ~100k pending
        for _ in 0..per_round {
            let src = ProcessId(rng.next_u64_below(N) as u32);
            let dst = ProcessId(rng.next_u64_below(N) as u32);
            s.schedule_after(
                SimDuration::from_micros(1 + rng.next_u64_below(20_000)),
                Event::Deliver { src, dst, msg_id: MsgId(i), msg: i },
            );
            i += 1;
        }
    }
    for _ in 0..rounds {
        for _ in 0..per_round {
            let src = ProcessId(rng.next_u64_below(N) as u32);
            let dst = ProcessId(rng.next_u64_below(N) as u32);
            s.schedule_after(
                SimDuration::from_micros(1 + rng.next_u64_below(20_000)),
                Event::Deliver { src, dst, msg_id: MsgId(i), msg: i },
            );
            i += 1;
        }
        for _ in 0..per_round {
            s.pop();
        }
    }
    s.events_dispatched()
}

/// crash_purge with a per-phase wall-clock breakdown.
fn crash_phases(per_round: u64, rounds: u64) {
    const N: u64 = 8;
    let mut s: Scheduler<u64> = Scheduler::with_kind(SchedulerKind::Wheel);
    let mut rng = SimRng::derive(0xC4A5, 0);
    let mut i = 0u64;
    let (mut t_sched, mut t_drop, mut t_pop) = (0.0f64, 0.0f64, 0.0f64);
    for _ in 0..rounds {
        let t0 = std::time::Instant::now();
        for _ in 0..per_round {
            let src = ProcessId(rng.next_u64_below(N) as u32);
            let dst = ProcessId(rng.next_u64_below(N) as u32);
            s.schedule_after(
                SimDuration::from_micros(1 + rng.next_u64_below(20_000)),
                Event::Deliver { src, dst, msg_id: MsgId(i), msg: i },
            );
            i += 1;
        }
        let t1 = std::time::Instant::now();
        let victim = ProcessId(rng.next_u64_below(N) as u32);
        s.drop_events_for(victim);
        let t2 = std::time::Instant::now();
        for _ in 0..per_round / 16 {
            s.pop();
        }
        let t3 = std::time::Instant::now();
        t_sched += (t1 - t0).as_secs_f64();
        t_drop += (t2 - t1).as_secs_f64();
        t_pop += (t3 - t2).as_secs_f64();
    }
    println!("sched {t_sched:.4}s  drop+sweep {t_drop:.4}s  pop {t_pop:.4}s");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("crash");
    let reps: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    if which == "stats" {
        crash_probe(16_384, 300);
        return;
    }
    if which == "phases" {
        for _ in 0..reps {
            crash_phases(16_384, 300);
        }
        return;
    }
    for kind in [SchedulerKind::ReferenceHeap, SchedulerKind::Wheel] {
        let mut best = f64::INFINITY;
        let mut events = 0;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            events = match which {
                "churn" => sched_bench::churn(kind, 4_096, 2_000_000),
                "cancel" => sched_bench::cancel_heavy(kind, 131_072, 1_000_000),
                "crash" => sched_bench::crash_purge(kind, 16_384, 300),
                "far" => sched_bench::far_future(kind, 1_000_000),
                "burst" => sched_bench::burst_window(kind, 60_000, 16),
                "nodrop" => nodrop(kind, 16_384, 294),
                _ => panic!("unknown workload {which}"),
            };
            best = best.min(t0.elapsed().as_secs_f64());
        }
        println!(
            "{which} {kind:?}: {} events, {:.4}s, {:.0} ev/s",
            events,
            best,
            events as f64 / best
        );
    }
}
