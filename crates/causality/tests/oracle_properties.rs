//! Property tests for the consistency oracle: cuts built from valid
//! delivery prefixes are always consistent; cuts that cut a message
//! backwards are always flagged; and the vector-clock view agrees with
//! the cut view on checkpoint sets.

use ocpt_causality::{Cut, GlobalObserver};
use ocpt_sim::{MsgId, ProcessId, SimTime};
use proptest::prelude::*;

/// A random but *valid* execution: each op either sends a fresh message
/// from a random process or delivers a random in-flight one.
#[derive(Clone, Debug)]
enum Op {
    Send { from: u32, to_off: u32 },
    Deliver(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u32>(), any::<u32>()).prop_map(|(f, t)| Op::Send { from: f, to_off: t }),
            any::<prop::sample::Index>().prop_map(|i| Op::Deliver(i.index(usize::MAX))),
        ],
        1..200,
    )
}

/// Replay `ops` over an observer; returns the observer and, for each step,
/// the cut of everything that has happened so far ("executed prefix").
fn replay(n: usize, ops: &[Op]) -> (GlobalObserver, Vec<Cut>) {
    let mut obs = GlobalObserver::new(n);
    let mut flight: Vec<(ProcessId, MsgId)> = Vec::new();
    let mut next = 0u64;
    let mut prefixes = Vec::new();
    for op in ops {
        match op {
            Op::Send { from, to_off } => {
                let src = (*from as usize) % n;
                let _dst = (src + 1 + (*to_off as usize) % (n - 1)) % n;
                let id = MsgId(next);
                next += 1;
                obs.on_send(ProcessId(src as u32), id);
                flight.push((ProcessId(_dst as u32), id));
            }
            Op::Deliver(i) => {
                if flight.is_empty() {
                    continue;
                }
                let (dst, id) = flight.swap_remove(i % flight.len());
                obs.on_recv(dst, id);
            }
        }
        prefixes.push(Cut::from_positions(obs.positions()));
    }
    (obs, prefixes)
}

proptest! {
    /// Every executed prefix of a valid execution is a consistent cut:
    /// a message can only have been received after it was sent, so no
    /// prefix can contain a receive without its send.
    #[test]
    fn executed_prefixes_are_consistent(n in 2usize..8, ops in ops()) {
        let (obs, prefixes) = replay(n, &ops);
        for (i, cut) in prefixes.iter().enumerate() {
            let rep = obs.judge_cut(i as u64, cut);
            prop_assert!(rep.is_consistent(), "prefix {i} inconsistent: {:?}", rep.orphans);
        }
    }

    /// Cutting the sender strictly before a delivered message's send while
    /// keeping the receiver at the end is always flagged as an orphan.
    #[test]
    fn backward_message_cuts_are_flagged(n in 2usize..6, ops in ops()) {
        let (obs, _) = replay(n, &ops);
        let full = Cut::from_positions(obs.positions());
        for (_, send, recv) in obs.messages() {
            let Some(recv) = recv else { continue };
            let mut cut = full.clone();
            cut.set(send.pid, send.idx); // exclude the send event
            if cut.contains(recv.pid, recv.idx) {
                let rep = obs.judge_cut(0, &cut);
                prop_assert!(!rep.is_consistent(), "orphan not flagged");
            }
        }
    }

    /// The vector-clock oracle and the cut oracle agree on checkpoint sets
    /// placed at executed-prefix positions.
    #[test]
    fn oracles_agree_on_prefix_checkpoints(n in 2usize..6, ops in ops()) {
        let (mut obs, prefixes) = replay(n, &ops);
        // Finalize a "checkpoint" for everyone at the final prefix.
        let Some(cut) = prefixes.last() else { return Ok(()) };
        for pid in ProcessId::all(n) {
            obs.on_finalize(pid, 1, cut.get(pid), SimTime::ZERO);
        }
        let by_cut = obs.judge(1).unwrap().is_consistent();
        let by_clock = obs.vclock_consistent(1).unwrap();
        prop_assert!(by_cut, "executed prefix must be consistent");
        prop_assert_eq!(by_cut, by_clock);
    }

    /// `complete_csns` reports exactly the rounds every process finalized.
    #[test]
    fn complete_csns_requires_everyone(n in 2usize..6, full_rounds in 0u64..4, partial in 0u64..3) {
        let mut obs = GlobalObserver::new(n);
        for k in 1..=full_rounds {
            for pid in ProcessId::all(n) {
                obs.on_finalize(pid, k, 0, SimTime::ZERO);
            }
        }
        // A few rounds missing one process.
        for k in 0..partial {
            for pid in ProcessId::all(n).skip(1) {
                obs.on_finalize(pid, full_rounds + 1 + k, 0, SimTime::ZERO);
            }
        }
        let complete = obs.complete_csns();
        prop_assert_eq!(complete.len() as u64, full_rounds);
        for (i, k) in complete.iter().enumerate() {
            prop_assert_eq!(*k, i as u64 + 1);
        }
    }
}
