//! # ocpt-causality — happened-before oracle and consistency checking
//!
//! Implements the background machinery of paper §2.2: Lamport's
//! happened-before relation via [`VClock`]s, cuts of a computation
//! ([`Cut`]), and the orphan-message test that defines a *consistent global
//! checkpoint*. The centrepiece is [`GlobalObserver`], an omniscient
//! verification oracle the harness feeds with every application event; the
//! test-suite uses it to machine-check the paper's Theorem 2 on every run,
//! with two independent oracles (cut/orphan analysis and pairwise vector
//! clock concurrency) that are also checked against each other.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cut;
pub mod observer;
pub mod vclock;

pub use cut::Cut;
pub use observer::{CutReport, EventPos, GlobalObserver, InTransit, Orphan};
pub use vclock::{pairwise_consistent, Causality, VClock};
