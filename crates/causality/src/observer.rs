//! The omniscient observer: records every application-level event of a run
//! and checks collected global checkpoints for consistency.
//!
//! The observer is *outside* the system model — it sees everything
//! instantly, which no real process can. Protocol code never reads it; the
//! harness feeds it and the tests interrogate it. This is how we turn the
//! paper's Theorem 2 ("finalized checkpoints with equal sequence number form
//! a consistent global checkpoint") into a machine-checked property.

use std::collections::BTreeMap;

use ocpt_sim::{MsgId, ProcessId, SimTime};

use crate::cut::Cut;
use crate::vclock::{pairwise_consistent, VClock};

/// Where one endpoint of a message sits in a process's local event order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventPos {
    /// Process on which the event occurred.
    pub pid: ProcessId,
    /// Zero-based index in that process's application-event sequence.
    pub idx: u64,
}

/// Observed endpoints of one application message.
#[derive(Clone, Debug, Default)]
struct MsgRecord {
    send: Option<EventPos>,
    recv: Option<EventPos>,
    /// Sender's clock right after the send event (piggybacked oracle-side).
    send_clock: Option<VClock>,
}

/// One finalized checkpoint of one process, as the oracle saw it.
///
/// Kept in a per-process `Vec` sorted by `csn` — checkpoint sequence
/// numbers are dense and per-process lookups dominate, so this replaces
/// three `HashMap<(ProcessId, u64), _>` tables (position, clock, time)
/// with a single binary-searched record table and no per-entry hashing.
#[derive(Clone, Debug)]
struct CkptRecord {
    csn: u64,
    pos: u64,
    clock: VClock,
    time: SimTime,
}

/// An orphan message with respect to some cut: received inside, sent outside.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Orphan {
    /// The offending message.
    pub msg: MsgId,
    /// Its send endpoint.
    pub send: EventPos,
    /// Its receive endpoint.
    pub recv: EventPos,
}

/// A message in transit across a cut: sent inside, received outside (or
/// never). Not an inconsistency, but recovery must be able to regenerate it
/// — the paper's sent-message logging exists for exactly this.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InTransit {
    /// The message.
    pub msg: MsgId,
    /// Its send endpoint.
    pub send: EventPos,
}

/// Verdict for one global checkpoint `S_k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CutReport {
    /// The checkpoint sequence number.
    pub csn: u64,
    /// Orphan messages (must be empty for consistency).
    pub orphans: Vec<Orphan>,
    /// In-transit messages (allowed; must be covered by sender logs).
    pub in_transit: Vec<InTransit>,
}

impl CutReport {
    /// True iff the global checkpoint is consistent (no orphans).
    pub fn is_consistent(&self) -> bool {
        self.orphans.is_empty()
    }
}

/// The observer. Feed it every application send/receive and every
/// checkpoint-finalization cut position; then ask it to judge each `S_k`.
#[derive(Debug)]
pub struct GlobalObserver {
    n: usize,
    /// Next local application-event index per process.
    next_idx: Vec<u64>,
    /// Vector clock per process (oracle #2).
    clocks: Vec<VClock>,
    /// Clock of each process *before* its most recent event — needed for
    /// checkpoint cuts that step one event back (OCPT's excluded trigger).
    prev_clocks: Vec<VClock>,
    /// Message records keyed by id. A `BTreeMap` so that every iteration
    /// (`judge_cut`, `messages`) walks in `MsgId` order — the reports this
    /// observer produces feed byte-identity-pinned output, so iteration
    /// order must be a function of the run, never of hash state.
    msgs: BTreeMap<MsgId, MsgRecord>,
    /// Finalized checkpoints per process, sorted by `csn`.
    ckpts: Vec<Vec<CkptRecord>>,
}

impl GlobalObserver {
    /// An observer for `n` processes.
    pub fn new(n: usize) -> Self {
        GlobalObserver {
            n,
            next_idx: vec![0; n],
            clocks: (0..n).map(|_| VClock::zero(n)).collect(),
            prev_clocks: (0..n).map(|_| VClock::zero(n)).collect(),
            msgs: BTreeMap::new(),
            ckpts: vec![Vec::new(); n],
        }
    }

    /// The checkpoint record of `(pid, csn)`, if finalized.
    fn ckpt(&self, pid: ProcessId, csn: u64) -> Option<&CkptRecord> {
        let table = &self.ckpts[pid.index()];
        table.binary_search_by_key(&csn, |r| r.csn).ok().map(|i| &table[i])
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Record a send event at `pid`; returns its local index. The sender's
    /// clock is retained internally for the matching receive.
    pub fn on_send(&mut self, pid: ProcessId, msg: MsgId) -> u64 {
        let idx = self.bump(pid);
        // clone_from reuses the previous snapshot's allocation: no per-event
        // Vec allocation on this (hot) path.
        self.prev_clocks[pid.index()].clone_from(&self.clocks[pid.index()]);
        self.clocks[pid.index()].tick(pid);
        let rec = self.msgs.entry(msg).or_default();
        debug_assert!(rec.send.is_none(), "duplicate send for {msg:?}");
        rec.send = Some(EventPos { pid, idx });
        rec.send_clock = Some(self.clocks[pid.index()].clone());
        idx
    }

    /// Record a receive event at `pid` of message `msg`; returns the local
    /// index. The clock merge uses the clock retained at `on_send` (a
    /// receive of a never-sent message is a harness bug and panics in
    /// debug builds; in release it merges nothing).
    pub fn on_recv(&mut self, pid: ProcessId, msg: MsgId) -> u64 {
        let idx = self.bump(pid);
        self.prev_clocks[pid.index()].clone_from(&self.clocks[pid.index()]);
        let sender_clock = self.msgs.get(&msg).and_then(|r| r.send_clock.clone());
        debug_assert!(sender_clock.is_some(), "receive of unknown message {msg:?}");
        if let Some(c) = sender_clock {
            self.clocks[pid.index()].merge(&c);
        }
        self.clocks[pid.index()].tick(pid);
        let rec = self.msgs.entry(msg).or_default();
        debug_assert!(rec.recv.is_none(), "duplicate receive for {msg:?}");
        rec.recv = Some(EventPos { pid, idx });
        idx
    }

    /// Record that `pid` finalized its checkpoint `csn` with the cut sitting
    /// at `pos` local events (i.e. the restored state contains exactly the
    /// first `pos` application events of `pid`). `pos` must be the current
    /// event count or one less (a cut placed just before the most recent
    /// event — the paper's excluded-trigger finalization).
    pub fn on_finalize(&mut self, pid: ProcessId, csn: u64, pos: u64, at: SimTime) {
        // The oracle clock of a checkpoint at position `pos`: we tick the
        // local component so two checkpoints at identical positions on
        // different processes stay concurrent, matching the "checkpoint is
        // a local event" convention. [OCPT §2.2]
        let cur = self.next_idx[pid.index()];
        debug_assert!(pos == cur || pos + 1 == cur, "cut must be at or one before the present");
        let mut clock = if pos == cur {
            self.clocks[pid.index()].clone()
        } else {
            self.prev_clocks[pid.index()].clone()
        };
        clock.tick(pid);
        let table = &mut self.ckpts[pid.index()];
        match table.binary_search_by_key(&csn, |r| r.csn) {
            Ok(_) => debug_assert!(false, "{pid} finalized csn {csn} twice"),
            Err(i) => table.insert(i, CkptRecord { csn, pos, clock, time: at }),
        }
    }

    fn bump(&mut self, pid: ProcessId) -> u64 {
        let idx = self.next_idx[pid.index()];
        self.next_idx[pid.index()] += 1;
        idx
    }

    /// Current local event counts (useful for building ad-hoc cuts).
    pub fn positions(&self) -> Vec<u64> {
        self.next_idx.clone()
    }

    /// Sequence numbers for which **all** `n` processes have finalized.
    pub fn complete_csns(&self) -> Vec<u64> {
        // Intersect the per-process (sorted) csn sequences, seeded from the
        // process with the fewest finalizations.
        let Some(smallest) = self.ckpts.iter().min_by_key(|t| t.len()) else {
            return Vec::new();
        };
        smallest
            .iter()
            .map(|r| r.csn)
            .filter(|&csn| ProcessId::all(self.n).all(|pid| self.ckpt(pid, csn).is_some()))
            .collect()
    }

    /// The cut induced by `S_csn`, if complete.
    pub fn cut_of(&self, csn: u64) -> Option<Cut> {
        let mut cut = Cut::empty(self.n);
        for pid in ProcessId::all(self.n) {
            cut.set(pid, self.ckpt(pid, csn)?.pos);
        }
        Some(cut)
    }

    /// Judge an arbitrary cut against the recorded messages.
    pub fn judge_cut(&self, csn: u64, cut: &Cut) -> CutReport {
        let mut orphans = Vec::new();
        let mut in_transit = Vec::new();
        for (msg, rec) in &self.msgs {
            let (Some(send), recv) = (rec.send, rec.recv) else {
                continue;
            };
            let sent_inside = cut.contains(send.pid, send.idx);
            match recv {
                Some(recv) => {
                    let recvd_inside = cut.contains(recv.pid, recv.idx);
                    if recvd_inside && !sent_inside {
                        orphans.push(Orphan { msg: *msg, send, recv });
                    } else if sent_inside && !recvd_inside {
                        in_transit.push(InTransit { msg: *msg, send });
                    }
                }
                None => {
                    if sent_inside {
                        in_transit.push(InTransit { msg: *msg, send });
                    }
                }
            }
        }
        // `msgs` iterates in key order, so both lists are already sorted
        // by message id.
        debug_assert!(orphans.windows(2).all(|w| w[0].msg < w[1].msg));
        debug_assert!(in_transit.windows(2).all(|w| w[0].msg < w[1].msg));
        CutReport { csn, orphans, in_transit }
    }

    /// Judge the global checkpoint `S_csn` (must be complete).
    ///
    /// Returns `None` if some process has not finalized `csn`.
    pub fn judge(&self, csn: u64) -> Option<CutReport> {
        let cut = self.cut_of(csn)?;
        Some(self.judge_cut(csn, &cut))
    }

    /// Oracle #2: are the vector clocks of `S_csn` pairwise concurrent?
    ///
    /// Agreement between [`Self::judge`] and this check is itself asserted
    /// by property tests.
    pub fn vclock_consistent(&self, csn: u64) -> Option<bool> {
        let mut clocks = Vec::with_capacity(self.n);
        for pid in ProcessId::all(self.n) {
            clocks.push(self.ckpt(pid, csn)?.clock.clone());
        }
        Some(pairwise_consistent(&clocks))
    }

    /// When `pid` finalized `csn` (reporting).
    pub fn finalize_time(&self, pid: ProcessId, csn: u64) -> Option<SimTime> {
        self.ckpt(pid, csn).map(|r| r.time)
    }

    /// Total number of observed application messages.
    pub fn message_count(&self) -> usize {
        self.msgs.len()
    }

    /// All messages with their endpoints (receive endpoint `None` while in
    /// flight), sorted by id. Used by the rollback/domino analysis.
    pub fn messages(&self) -> Vec<(MsgId, EventPos, Option<EventPos>)> {
        // Key-ordered map: the result is sorted by id without a sort pass.
        self.msgs.iter().filter_map(|(id, r)| r.send.map(|s| (*id, s, r.recv))).collect()
    }

    /// The recorded checkpoint cut positions of one process, sorted by
    /// sequence number: `(csn, position)`.
    pub fn checkpoints_of(&self, pid: ProcessId) -> Vec<(u64, u64)> {
        self.ckpts[pid.index()].iter().map(|r| (r.csn, r.pos)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    /// Reconstructs paper Figure 1: S1 consistent, S2 has orphan M5.
    ///
    /// Three processes; M5 is sent by P1 *after* its S2 checkpoint position
    /// but received by P2 *before* its S2 checkpoint position.
    #[test]
    fn fig1_consistent_and_inconsistent_cuts() {
        let mut o = GlobalObserver::new(3);
        // M1: P0 -> P1 early.
        o.on_send(p(0), MsgId(1));
        o.on_recv(p(1), MsgId(1));
        // S1 cut: after those events on P0/P1, before anything on P2.
        let s1 = Cut::from_positions(vec![1, 1, 0]);
        // M5: P1 -> P2.
        o.on_send(p(1), MsgId(5));
        o.on_recv(p(2), MsgId(5));
        // S2 cut: P1 cut before send(M5) would be pos 1; but we cut P1 at 1
        // (send M5 is event idx 1, outside) and P2 at 1 (recv M5 inside).
        let s2 = Cut::from_positions(vec![1, 1, 1]);
        let r1 = o.judge_cut(1, &s1);
        assert!(r1.is_consistent());
        let r2 = o.judge_cut(2, &s2);
        assert!(!r2.is_consistent());
        assert_eq!(r2.orphans.len(), 1);
        assert_eq!(r2.orphans[0].msg, MsgId(5));
    }

    #[test]
    fn in_transit_detected_but_consistent() {
        let mut o = GlobalObserver::new(2);
        o.on_send(p(0), MsgId(1));
        // Cut: send inside, receive hasn't happened yet.
        let cut = Cut::from_positions(vec![1, 0]);
        let r = o.judge_cut(0, &cut);
        assert!(r.is_consistent());
        assert_eq!(r.in_transit.len(), 1);
        // Receive later, outside the cut — still in transit w.r.t. the cut.
        o.on_recv(p(1), MsgId(1));
        let r = o.judge_cut(0, &cut);
        assert!(r.is_consistent());
        assert_eq!(r.in_transit.len(), 1);
    }

    #[test]
    fn finalize_completion_tracking() {
        let mut o = GlobalObserver::new(2);
        o.on_finalize(p(0), 1, 0, SimTime::ZERO);
        assert!(o.judge(1).is_none());
        assert!(o.complete_csns().is_empty());
        o.on_finalize(p(1), 1, 0, SimTime::from_nanos(5));
        assert_eq!(o.complete_csns(), vec![1]);
        let r = o.judge(1).unwrap();
        assert!(r.is_consistent());
        assert_eq!(o.finalize_time(p(1), 1), Some(SimTime::from_nanos(5)));
    }

    #[test]
    fn vclock_oracle_agrees_on_simple_case() {
        let mut o = GlobalObserver::new(2);
        // P0 sends M; P1 receives; P1 then finalizes *after* the receive
        // while P0 finalizes *before* the send — orphan.
        o.on_finalize(p(0), 1, 0, SimTime::ZERO);
        o.on_send(p(0), MsgId(1));
        o.on_recv(p(1), MsgId(1));
        o.on_finalize(p(1), 1, 1, SimTime::ZERO);
        let r = o.judge(1).unwrap();
        assert!(!r.is_consistent());
        assert_eq!(o.vclock_consistent(1), Some(false));
    }

    #[test]
    fn vclock_oracle_consistent_case() {
        let mut o = GlobalObserver::new(2);
        o.on_send(p(0), MsgId(1));
        o.on_recv(p(1), MsgId(1));
        // Both finalize after everything — consistent.
        o.on_finalize(p(0), 1, 1, SimTime::ZERO);
        o.on_finalize(p(1), 1, 1, SimTime::ZERO);
        let r = o.judge(1).unwrap();
        assert!(r.is_consistent());
        assert_eq!(o.vclock_consistent(1), Some(true));
    }

    #[test]
    fn message_count() {
        let mut o = GlobalObserver::new(2);
        o.on_send(p(0), MsgId(1));
        o.on_recv(p(1), MsgId(1));
        o.on_send(p(1), MsgId(2));
        assert_eq!(o.message_count(), 2);
    }
}
