//! Vector clocks and Lamport's happened-before relation (paper §2.2).
//!
//! The paper's algorithm itself never needs vector clocks — that is part of
//! its appeal (`csn` + `tentSet` piggybacks are O(N) bits, not O(N) words).
//! We use vector clocks purely as a *verification oracle*: an omniscient
//! observer timestamps every event, and consistency of the collected global
//! checkpoints is then checked against the oracle.

use ocpt_sim::ProcessId;

/// Outcome of comparing two vector clocks under happened-before.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Causality {
    /// `a == b` component-wise.
    Equal,
    /// `a` happened before `b`.
    Before,
    /// `b` happened before `a`.
    After,
    /// Neither happened before the other.
    Concurrent,
}

/// A vector clock over `n` processes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct VClock {
    v: Vec<u64>,
}

impl VClock {
    /// The zero clock for `n` processes.
    pub fn zero(n: usize) -> Self {
        VClock { v: vec![0; n] }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// True if the clock has no components (degenerate).
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// A clock from raw components (codec use; components are trusted).
    pub fn from_components(v: Vec<u64>) -> Self {
        VClock { v }
    }

    /// The raw components, indexed by process id.
    pub fn components(&self) -> &[u64] {
        &self.v
    }

    /// Component for `pid`.
    pub fn get(&self, pid: ProcessId) -> u64 {
        self.v[pid.index()]
    }

    /// Overwrite the component for `pid` (codec use).
    pub fn set(&mut self, pid: ProcessId, value: u64) {
        self.v[pid.index()] = value;
    }

    /// Advance the local component (a local event at `pid`).
    pub fn tick(&mut self, pid: ProcessId) {
        self.v[pid.index()] += 1;
    }

    /// Component-wise maximum with `other` (message receipt).
    pub fn merge(&mut self, other: &VClock) {
        assert_eq!(self.v.len(), other.v.len(), "clock arity mismatch");
        for (a, b) in self.v.iter_mut().zip(&other.v) {
            *a = (*a).max(*b);
        }
    }

    /// Compare under happened-before.
    pub fn compare(&self, other: &VClock) -> Causality {
        assert_eq!(self.v.len(), other.v.len(), "clock arity mismatch");
        let mut le = true;
        let mut ge = true;
        for (a, b) in self.v.iter().zip(&other.v) {
            if a > b {
                le = false;
            }
            if a < b {
                ge = false;
            }
        }
        match (le, ge) {
            (true, true) => Causality::Equal,
            (true, false) => Causality::Before,
            (false, true) => Causality::After,
            (false, false) => Causality::Concurrent,
        }
    }

    /// `self` happened before `other` (strictly).
    pub fn happened_before(&self, other: &VClock) -> bool {
        self.compare(other) == Causality::Before
    }

    /// `self` and `other` are concurrent.
    pub fn concurrent(&self, other: &VClock) -> bool {
        self.compare(other) == Causality::Concurrent
    }
}

/// A set of checkpoints (one per process) is a consistent global checkpoint
/// iff its members are **pairwise concurrent or equal** — no member happened
/// before another. This is the classical vector-clock characterisation used
/// as a second, independent oracle next to the orphan-message check.
pub fn pairwise_consistent(clocks: &[VClock]) -> bool {
    for i in 0..clocks.len() {
        for j in (i + 1)..clocks.len() {
            match clocks[i].compare(&clocks[j]) {
                Causality::Before | Causality::After => return false,
                _ => {}
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn zero_clocks_equal() {
        let a = VClock::zero(3);
        let b = VClock::zero(3);
        assert_eq!(a.compare(&b), Causality::Equal);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn tick_orders() {
        let a = VClock::zero(2);
        let mut b = a.clone();
        b.tick(p(0));
        assert_eq!(a.compare(&b), Causality::Before);
        assert_eq!(b.compare(&a), Causality::After);
        assert!(a.happened_before(&b));
    }

    #[test]
    fn concurrent_events() {
        let mut a = VClock::zero(2);
        let mut b = VClock::zero(2);
        a.tick(p(0));
        b.tick(p(1));
        assert_eq!(a.compare(&b), Causality::Concurrent);
        assert!(a.concurrent(&b));
    }

    #[test]
    fn merge_is_componentwise_max() {
        let mut a = VClock::zero(3);
        let mut b = VClock::zero(3);
        a.tick(p(0));
        a.tick(p(0));
        b.tick(p(2));
        a.merge(&b);
        assert_eq!(a.get(p(0)), 2);
        assert_eq!(a.get(p(1)), 0);
        assert_eq!(a.get(p(2)), 1);
    }

    #[test]
    fn message_transfer_creates_order() {
        // P0 sends to P1: send event ticks P0; receive merges then ticks P1.
        let mut c0 = VClock::zero(2);
        let mut c1 = VClock::zero(2);
        c0.tick(p(0)); // send(M)
        let piggy = c0.clone();
        c1.merge(&piggy);
        c1.tick(p(1)); // receive(M)
        assert!(c0.happened_before(&c1));
    }

    #[test]
    fn pairwise_consistency() {
        let mut a = VClock::zero(2);
        let mut b = VClock::zero(2);
        a.tick(p(0));
        b.tick(p(1));
        assert!(pairwise_consistent(&[a.clone(), b.clone()]));
        // Now make b causally after a.
        b.merge(&a);
        b.tick(p(1));
        assert!(!pairwise_consistent(&[a, b]));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let a = VClock::zero(2);
        let b = VClock::zero(3);
        let _ = a.compare(&b);
    }
}
