//! Cuts of a distributed computation.
//!
//! A *cut* assigns to each process a position in its local event sequence;
//! the cut "contains" the first `pos` events of each process. A global
//! checkpoint induces a cut (the paper's `S_k` cuts each process at its
//! finalization point `CFE_{i,k}`), and consistency of the checkpoint is
//! exactly consistency of that cut: no application message received inside
//! the cut may have been sent outside it (no orphan, paper §2.2).

use ocpt_sim::ProcessId;

/// A cut: `pos[i]` = number of local application events of `P_i` inside it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cut {
    pos: Vec<u64>,
}

impl Cut {
    /// The empty cut for `n` processes.
    pub fn empty(n: usize) -> Self {
        Cut { pos: vec![0; n] }
    }

    /// Build from explicit positions.
    pub fn from_positions(pos: Vec<u64>) -> Self {
        Cut { pos }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True if the cut covers no process (degenerate).
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Position for `pid`.
    pub fn get(&self, pid: ProcessId) -> u64 {
        self.pos[pid.index()]
    }

    /// Set position for `pid`.
    pub fn set(&mut self, pid: ProcessId, pos: u64) {
        self.pos[pid.index()] = pos;
    }

    /// An event at `(pid, idx)` lies inside the cut iff `idx < pos[pid]`.
    pub fn contains(&self, pid: ProcessId, idx: u64) -> bool {
        idx < self.pos[pid.index()]
    }

    /// Component-wise comparison: true iff `self` ≤ `other` everywhere.
    pub fn le(&self, other: &Cut) -> bool {
        self.pos.iter().zip(&other.pos).all(|(a, b)| a <= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_strict() {
        let mut c = Cut::empty(2);
        c.set(ProcessId(0), 3);
        assert!(c.contains(ProcessId(0), 2));
        assert!(!c.contains(ProcessId(0), 3));
        assert!(!c.contains(ProcessId(1), 0));
    }

    #[test]
    fn component_order() {
        let a = Cut::from_positions(vec![1, 2]);
        let b = Cut::from_positions(vec![2, 2]);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(a.le(&a));
    }

    #[test]
    fn len_and_get() {
        let c = Cut::from_positions(vec![5, 7, 9]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(ProcessId(2)), 9);
        assert!(!c.is_empty());
    }
}
