//! The ratcheting `.unwrap()` budget (rule `unwrap-budget`).
//!
//! `simlint.baseline` at the workspace root records the per-crate count
//! of `.unwrap()` call sites. A crate rising above its recorded budget is
//! a finding; a crate falling below it is *also* a finding (a stale,
//! too-generous budget), fixed by regenerating with `--write-baseline`.
//! The budget can therefore only ever ratchet down.

use std::collections::BTreeMap;

use crate::report::Finding;

/// The committed baseline file name, relative to the workspace root.
pub const BASELINE_FILE: &str = "simlint.baseline";

/// Parse the baseline: `<crate> <count>` lines, `#` comments. Returns
/// crate → (budget, 1-based line) for diagnostics.
pub fn parse(text: &str) -> BTreeMap<String, (usize, u32)> {
    let mut out = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(count)) = (parts.next(), parts.next()) else { continue };
        if let Ok(n) = count.parse::<usize>() {
            out.insert(name.to_string(), (n, idx as u32 + 1));
        }
    }
    out
}

/// Render a baseline from live counts.
pub fn format(counts: &BTreeMap<String, usize>) -> String {
    let mut s = String::from(
        "# simlint unwrap() budget, per crate. The count may only ratchet down:\n\
         # above budget fails the lint, below budget is a stale-baseline finding.\n\
         # Regenerate with `cargo run -p simlint -- --write-baseline`.\n",
    );
    for (k, v) in counts {
        s.push_str(k);
        s.push(' ');
        s.push_str(&v.to_string());
        s.push('\n');
    }
    s
}

/// Compare live counts against the committed budget.
pub fn compare(baseline: Option<&str>, counts: &BTreeMap<String, usize>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(text) = baseline else {
        findings.push(Finding {
            file: BASELINE_FILE.to_string(),
            line: 1,
            rule: "unwrap-budget",
            message: "baseline file missing — generate it with `--write-baseline` and commit it"
                .to_string(),
        });
        return findings;
    };
    let budget = parse(text);
    for (name, &actual) in counts {
        match budget.get(name) {
            Some(&(allowed, line)) if actual > allowed => findings.push(Finding {
                file: BASELINE_FILE.to_string(),
                line,
                rule: "unwrap-budget",
                message: format!(
                    "crate `{name}` has {actual} .unwrap() call(s), budget is {allowed} — \
                     convert the new ones to .expect(\"<invariant>\")"
                ),
            }),
            Some(&(allowed, line)) if actual < allowed => findings.push(Finding {
                file: BASELINE_FILE.to_string(),
                line,
                rule: "unwrap-budget",
                message: format!(
                    "budget for `{name}` is stale ({allowed} recorded, {actual} actual) — \
                     ratchet it down with `--write-baseline`"
                ),
            }),
            Some(_) => {}
            None if actual > 0 => findings.push(Finding {
                file: BASELINE_FILE.to_string(),
                line: 1,
                rule: "unwrap-budget",
                message: format!(
                    "crate `{name}` has {actual} .unwrap() call(s) but no budget line — \
                     regenerate with `--write-baseline`"
                ),
            }),
            None => {}
        }
    }
    for (name, &(allowed, line)) in &budget {
        if !counts.contains_key(name) {
            findings.push(Finding {
                file: BASELINE_FILE.to_string(),
                line,
                rule: "unwrap-budget",
                message: format!(
                    "budget line for unknown crate `{name}` ({allowed}) — regenerate with \
                     `--write-baseline`"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn round_trip_parse_format() {
        let c = counts(&[("core", 0), ("harness", 12)]);
        let parsed = parse(&format(&c));
        assert_eq!(parsed.get("core").map(|&(n, _)| n), Some(0));
        assert_eq!(parsed.get("harness").map(|&(n, _)| n), Some(12));
    }

    #[test]
    fn over_budget_fails_under_budget_is_stale() {
        let base = format(&counts(&[("core", 2)]));
        let over = compare(Some(&base), &counts(&[("core", 3)]));
        assert_eq!(over.len(), 1);
        assert!(over[0].message.contains("budget is 2"));
        let under = compare(Some(&base), &counts(&[("core", 1)]));
        assert_eq!(under.len(), 1);
        assert!(under[0].message.contains("stale"));
        let exact = compare(Some(&base), &counts(&[("core", 2)]));
        assert!(exact.is_empty());
    }

    #[test]
    fn missing_file_and_unknown_crates_are_findings() {
        assert_eq!(compare(None, &counts(&[("core", 1)])).len(), 1);
        let base = format(&counts(&[("ghost", 4)]));
        let f = compare(Some(&base), &counts(&[]));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("ghost"));
    }

    #[test]
    fn zero_count_crate_without_budget_line_is_fine() {
        let base = format(&counts(&[]));
        assert!(compare(Some(&base), &counts(&[("sim", 0)])).is_empty());
    }
}
