//! The committed baseline: the ratcheting `.unwrap()` budget (rule
//! `unwrap-budget`) plus, since v2, *accepted* workspace findings.
//!
//! `simlint.baseline` at the workspace root records, per crate, the count
//! of `.unwrap()` call sites. A crate rising above its recorded budget is
//! a finding; a crate falling below it is *also* a finding (a stale,
//! too-generous budget), fixed by regenerating with `--write-baseline`.
//! The budget can therefore only ever ratchet down.
//!
//! v2 adds `accept` entries so the workspace-graph rules (transitive
//! D1–D3 chains, D6 lock-order, D7 protocol-exhaustiveness) can be
//! adopted on a tree with known legacy findings: an accepted finding is
//! suppressed, and an accept that no longer matches anything is a stale
//! finding — the same ratchet discipline as the unwrap budget. v1 files
//! (bare `<crate> <count>` lines, no `version` line) still parse, with a
//! migration finding prompting a one-time regenerate.

use std::collections::BTreeMap;

use crate::report::Finding;

/// The committed baseline file name, relative to the workspace root.
pub const BASELINE_FILE: &str = "simlint.baseline";

/// The version emitted by [`format()`].
pub const CURRENT_VERSION: u32 = 2;

/// One accepted workspace finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Accept {
    /// Rule id (`lock-order`, `wall-clock`, …).
    pub rule: String,
    /// Root-relative file the finding is reported in.
    pub file: String,
    /// Fingerprint from [`fingerprint`].
    pub fp: String,
    /// 1-based baseline line, for diagnostics.
    pub line: u32,
}

/// A parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// 1 for legacy bare-format files, 2 for the current format.
    pub version: u32,
    /// crate → (budget, 1-based line).
    pub unwraps: BTreeMap<String, (usize, u32)>,
    /// Accepted workspace findings (v2 only).
    pub accepts: Vec<Accept>,
}

/// FNV-1a (64-bit) over `rule | file | extra`, rendered as 16 hex
/// digits. `extra` is the chain's function names (or the message for
/// chain-less workspace findings) so the fingerprint survives line-number
/// drift but not a change in what the finding actually says.
pub fn fingerprint(rule: &str, file: &str, extra: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in [rule, "|", file, "|", extra] {
        for b in part.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Parse a baseline file of either version. `#` lines and blanks are
/// comments. v2 lines are `version 2`, `unwrap <crate> <count>` and
/// `accept <rule> <file> <fp>`; a file with no `version` line is v1 and
/// its lines are bare `<crate> <count>` pairs.
pub fn parse(text: &str) -> Baseline {
    let mut base = Baseline { version: 1, ..Baseline::default() };
    let is_v2 = text.lines().any(|l| {
        let mut p = l.trim().split_whitespace();
        p.next() == Some("version")
    });
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx as u32 + 1;
        let mut parts = line.split_whitespace();
        if is_v2 {
            match parts.next() {
                Some("version") => {
                    if let Some(v) = parts.next().and_then(|v| v.parse::<u32>().ok()) {
                        base.version = v;
                    }
                }
                Some("unwrap") => {
                    if let (Some(name), Some(Ok(n))) =
                        (parts.next(), parts.next().map(|c| c.parse::<usize>()))
                    {
                        base.unwraps.insert(name.to_string(), (n, lineno));
                    }
                }
                Some("accept") => {
                    if let (Some(rule), Some(file), Some(fp)) =
                        (parts.next(), parts.next(), parts.next())
                    {
                        base.accepts.push(Accept {
                            rule: rule.to_string(),
                            file: file.to_string(),
                            fp: fp.to_string(),
                            line: lineno,
                        });
                    }
                }
                _ => {}
            }
        } else {
            let (Some(name), Some(count)) = (parts.next(), parts.next()) else { continue };
            if let Ok(n) = count.parse::<usize>() {
                base.unwraps.insert(name.to_string(), (n, lineno));
            }
        }
    }
    base
}

/// Render a v2 baseline from live unwrap counts and accepted findings
/// (`(rule, file, fp)` triples).
pub fn format(counts: &BTreeMap<String, usize>, accepts: &[(String, String, String)]) -> String {
    let mut s = String::from(
        "# simlint baseline: unwrap() budget per crate plus accepted workspace findings.\n\
         # `unwrap <crate> <n>` may only ratchet down: above budget fails the lint, below\n\
         # budget is a stale-baseline finding. `accept <rule> <file> <fp>` suppresses one\n\
         # known workspace-graph finding; stale accepts are findings too.\n\
         # Regenerate with `cargo run -p simlint -- --write-baseline`.\n\
         version 2\n",
    );
    for (k, v) in counts {
        s.push_str(&std::format!("unwrap {k} {v}\n"));
    }
    let mut sorted: Vec<&(String, String, String)> = accepts.iter().collect();
    sorted.sort();
    sorted.dedup();
    for (rule, file, fp) in sorted {
        s.push_str(&std::format!("accept {rule} {file} {fp}\n"));
    }
    s
}

/// Compare live unwrap counts against the committed budget; also emits
/// the v1 migration finding.
pub fn compare(baseline: Option<&str>, counts: &BTreeMap<String, usize>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(text) = baseline else {
        findings.push(Finding::new(
            BASELINE_FILE,
            1,
            "unwrap-budget",
            "baseline file missing — generate it with `--write-baseline` and commit it".to_string(),
        ));
        return findings;
    };
    let base = parse(text);
    if base.version < CURRENT_VERSION {
        findings.push(Finding::new(
            BASELINE_FILE,
            1,
            "unwrap-budget",
            format!(
                "baseline is v{} format — regenerate with `--write-baseline` to migrate to v{}",
                base.version, CURRENT_VERSION
            ),
        ));
    }
    for (name, &actual) in counts {
        match base.unwraps.get(name) {
            Some(&(allowed, line)) if actual > allowed => findings.push(Finding::new(
                BASELINE_FILE,
                line,
                "unwrap-budget",
                format!(
                    "crate `{name}` has {actual} .unwrap() call(s), budget is {allowed} — \
                     convert the new ones to .expect(\"<invariant>\")"
                ),
            )),
            Some(&(allowed, line)) if actual < allowed => findings.push(Finding::new(
                BASELINE_FILE,
                line,
                "unwrap-budget",
                format!(
                    "budget for `{name}` is stale ({allowed} recorded, {actual} actual) — \
                     ratchet it down with `--write-baseline`"
                ),
            )),
            Some(_) => {}
            None if actual > 0 => findings.push(Finding::new(
                BASELINE_FILE,
                1,
                "unwrap-budget",
                format!(
                    "crate `{name}` has {actual} .unwrap() call(s) but no budget line — \
                     regenerate with `--write-baseline`"
                ),
            )),
            None => {}
        }
    }
    for (name, &(allowed, line)) in &base.unwraps {
        if !counts.contains_key(name) {
            findings.push(Finding::new(
                BASELINE_FILE,
                line,
                "unwrap-budget",
                format!(
                    "budget line for unknown crate `{name}` ({allowed}) — regenerate with \
                     `--write-baseline`"
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    fn fmt(pairs: &[(&str, usize)]) -> String {
        format(&counts(pairs), &[])
    }

    #[test]
    fn round_trip_parse_format() {
        let accepts = vec![(
            "lock-order".to_string(),
            "crates/runtime/src/node.rs".to_string(),
            fingerprint("lock-order", "crates/runtime/src/node.rs", "cycle a->b->a"),
        )];
        let text = format(&counts(&[("core", 0), ("harness", 12)]), &accepts);
        let parsed = parse(&text);
        assert_eq!(parsed.version, 2);
        assert_eq!(parsed.unwraps.get("core").map(|&(n, _)| n), Some(0));
        assert_eq!(parsed.unwraps.get("harness").map(|&(n, _)| n), Some(12));
        assert_eq!(parsed.accepts.len(), 1);
        assert_eq!(parsed.accepts[0].rule, "lock-order");
        assert_eq!(parsed.accepts[0].fp, accepts[0].2);
    }

    #[test]
    fn v1_files_parse_with_migration_finding() {
        let v1 = "# old format\ncore 3\nharness 12\n";
        let parsed = parse(v1);
        assert_eq!(parsed.version, 1);
        assert_eq!(parsed.unwraps.get("core").map(|&(n, _)| n), Some(3));
        let f = compare(Some(v1), &counts(&[("core", 3), ("harness", 12)]));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("regenerate"), "{}", f[0].message);
    }

    #[test]
    fn over_budget_fails_under_budget_is_stale() {
        let base = fmt(&[("core", 2)]);
        let over = compare(Some(&base), &counts(&[("core", 3)]));
        assert_eq!(over.len(), 1);
        assert!(over[0].message.contains("budget is 2"));
        let under = compare(Some(&base), &counts(&[("core", 1)]));
        assert_eq!(under.len(), 1);
        assert!(under[0].message.contains("stale"));
        let exact = compare(Some(&base), &counts(&[("core", 2)]));
        assert!(exact.is_empty());
    }

    #[test]
    fn missing_file_and_unknown_crates_are_findings() {
        assert_eq!(compare(None, &counts(&[("core", 1)])).len(), 1);
        let base = fmt(&[("ghost", 4)]);
        let f = compare(Some(&base), &counts(&[]));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("ghost"));
    }

    #[test]
    fn zero_count_crate_without_budget_line_is_fine() {
        let base = fmt(&[]);
        assert!(compare(Some(&base), &counts(&[("sim", 0)])).is_empty());
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a = fingerprint("wall-clock", "a.rs", "f>g>Instant");
        assert_eq!(a, fingerprint("wall-clock", "a.rs", "f>g>Instant"));
        assert_ne!(a, fingerprint("wall-clock", "a.rs", "f>h>Instant"));
        assert_ne!(a, fingerprint("ambient-entropy", "a.rs", "f>g>Instant"));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn format_sorts_and_dedups_accepts() {
        let accepts = vec![
            ("b".to_string(), "f.rs".to_string(), "02".to_string()),
            ("a".to_string(), "f.rs".to_string(), "01".to_string()),
            ("a".to_string(), "f.rs".to_string(), "01".to_string()),
        ];
        let text = format(&counts(&[]), &accepts);
        let accept_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("accept")).collect();
        assert_eq!(accept_lines, vec!["accept a f.rs 01", "accept b f.rs 02"]);
    }
}
