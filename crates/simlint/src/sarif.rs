//! SARIF 2.1.0 export (`--sarif <path>`), hand-rolled like the JSON
//! report: the workspace is offline and simlint is dependency-free by
//! construction.
//!
//! The output is the minimal schema-valid subset code-scanning UIs
//! consume: one `run`, one `result` per finding with a physical
//! location, and — for findings that carry a taint chain — a
//! `codeFlow` whose thread-flow locations walk the chain from the
//! reported boundary down to the nondeterministic source.

use std::fmt::Write as _;

use crate::report::{escape, Report};

/// Render `report` as a SARIF 2.1.0 document.
pub fn render(report: &Report) -> String {
    let mut rule_ids: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();

    let mut s = String::from(
        "{\n  \"$schema\": \
         \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \
         \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \
         \"simlint\",\n          \"informationUri\": \"DESIGN.md\",\n          \"rules\": [",
    );
    for (i, id) in rule_ids.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n            {{\"id\": \"{}\"}}", escape(id));
    }
    if !rule_ids.is_empty() {
        s.push_str("\n          ");
    }
    s.push_str("]\n        }\n      },\n      \"results\": [");

    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [{}]",
            escape(f.rule),
            escape(&f.message),
            location(&f.file, f.line, None)
        );
        if !f.chain.is_empty() {
            s.push_str(
                ",\n          \"codeFlows\": [\n            {\"threadFlows\": [\n              \
                 {\"locations\": [",
            );
            // Walk from the reported boundary site down to the source.
            let mut steps = vec![location(&f.file, f.line, Some("boundary call"))];
            for step in &f.chain {
                steps.push(location(&step.file, step.line, Some(&step.func)));
            }
            for (j, loc) in steps.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\n                {{\"location\": {loc}}}");
            }
            s.push_str("\n              ]}\n            ]}\n          ]");
        }
        s.push_str("\n        }");
    }
    if !report.findings.is_empty() {
        s.push_str("\n      ");
    }
    s.push_str("]\n    }\n  ]\n}\n");
    s
}

/// One SARIF location object, optionally with a step message.
fn location(file: &str, line: u32, message: Option<&str>) -> String {
    let mut s = String::from("{");
    if let Some(m) = message {
        let _ = write!(s, "\"message\": {{\"text\": \"{}\"}}, ", escape(m));
    }
    let _ = write!(
        s,
        "\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
         \"region\": {{\"startLine\": {line}}}}}}}",
        escape(file)
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{ChainStep, Finding};

    fn sample() -> Report {
        let mut r = Report::default();
        r.findings.push(
            Finding::new("crates/harness/src/runner.rs", 10, "wall-clock", "chain leak".into())
                .with_chain(vec![
                    ChainStep {
                        func: "runtime::mid".into(),
                        file: "crates/runtime/src/m.rs".into(),
                        line: 4,
                    },
                    ChainStep {
                        func: "Instant".into(),
                        file: "crates/runtime/src/m.rs".into(),
                        line: 9,
                    },
                ]),
        );
        r.findings.push(Finding::new("simlint.baseline", 1, "unwrap-budget", "over".into()));
        r
    }

    #[test]
    fn has_schema_rules_and_results() {
        let s = render(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("{\"id\": \"unwrap-budget\"}"));
        assert!(s.contains("{\"id\": \"wall-clock\"}"));
        assert!(s.contains("\"uri\": \"crates/harness/src/runner.rs\""));
        assert!(s.contains("\"startLine\": 10"));
    }

    #[test]
    fn chains_become_code_flows() {
        let s = render(&sample());
        assert!(s.contains("codeFlows"));
        assert!(s.contains("\"text\": \"runtime::mid\""));
        assert!(s.contains("\"text\": \"Instant\""));
        // The chain-less finding has no codeFlows of its own: exactly one
        // codeFlows key in the document.
        assert_eq!(s.matches("codeFlows").count(), 1);
    }

    #[test]
    fn empty_report_renders_empty_results() {
        let s = render(&Report::default());
        assert!(s.contains("\"results\": []"));
        assert!(s.contains("\"rules\": []"));
    }

    #[test]
    fn balanced_braces_and_brackets() {
        for s in [render(&sample()), render(&Report::default())] {
            // Crude structural check: the renderer is hand-rolled, so pin
            // bracket balance (strings in the sample contain none).
            assert_eq!(s.matches('{').count(), s.matches('}').count(), "{s}");
            assert_eq!(s.matches('[').count(), s.matches(']').count(), "{s}");
        }
    }
}
