//! Findings and the human/machine report formats.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One hop of a taint/provenance chain, innermost first: the functions a
/// finding travelled through before reaching the nondeterministic source
/// (whose identifier is the last step).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainStep {
    /// Qualified function name (`crate::Owner::fn`) or, for the final
    /// step, the source identifier (`Instant`, `thread_rng`, …).
    pub func: String,
    /// Root-relative file of the step.
    pub file: String,
    /// 1-based line: the call into the *next* step, or the source line
    /// for the final step.
    pub line: u32,
}

/// One diagnostic. `file` is root-relative with forward slashes so the
/// output is stable across machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Root-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (e.g. `wall-clock`, `unordered-iter`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Call chain from the reported site to the source; empty for
    /// purely local findings.
    pub chain: Vec<ChainStep>,
}

impl Finding {
    /// A chain-less finding.
    pub fn new(file: &str, line: u32, rule: &'static str, message: String) -> Finding {
        Finding { file: file.to_string(), line, rule, message, chain: Vec::new() }
    }

    /// Attach a provenance chain.
    pub fn with_chain(mut self, chain: Vec<ChainStep>) -> Finding {
        self.chain = chain;
        self
    }
}

/// Analyzer observability counters, printed in the report footer and in
/// `--json` so a silently-degenerate graph (zero functions parsed, zero
/// edges resolved) is visible instead of masquerading as a clean run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Functions discovered across the workspace.
    pub functions: usize,
    /// Call sites that resolved to at least one workspace function.
    pub call_edges: usize,
    /// Protocol enums cross-checked by D7.
    pub enums_checked: usize,
    /// Distinct locks tracked by D6.
    pub locks_tracked: usize,
}

/// The full result of one lint run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Per-crate `.unwrap()` counts (all code, test mods included).
    pub unwraps: BTreeMap<String, usize>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Graph/analysis counters.
    pub stats: Stats,
    /// Accepted baseline entries that matched a live finding this run,
    /// as `(rule, file, fingerprint)` — carried so a rewritten baseline
    /// does not drop them.
    pub applied_accepts: Vec<(String, String, String)>,
}

impl Report {
    /// True when the workspace passed every rule.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Canonical ordering for deterministic output.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.rule,
                b.message.as_str(),
            ))
        });
    }

    /// `file:line: [rule] message` lines (chains indented below their
    /// finding) plus a summary footer.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            let _ = writeln!(s, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            for step in &f.chain {
                let _ = writeln!(s, "    via {} ({}:{})", step.func, step.file, step.line);
            }
        }
        let _ = writeln!(
            s,
            "simlint: {} file(s) scanned, {} finding(s), {} unwrap(s) across {} crate(s)",
            self.files_scanned,
            self.findings.len(),
            self.unwraps.values().sum::<usize>(),
            self.unwraps.len()
        );
        let _ = writeln!(
            s,
            "simlint: graph: {} function(s), {} call edge(s), {} protocol enum(s), {} lock(s)",
            self.stats.functions,
            self.stats.call_edges,
            self.stats.enums_checked,
            self.stats.locks_tracked
        );
        s
    }

    /// Machine-readable report (hand-rolled: the workspace is offline and
    /// simlint is dependency-free by construction).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"clean\": ");
        s.push_str(if self.clean() { "true" } else { "false" });
        let _ = write!(s, ",\n  \"files_scanned\": {},", self.files_scanned);
        let _ = write!(
            s,
            "\n  \"stats\": {{\"functions\": {}, \"call_edges\": {}, \"enums_checked\": {}, \
             \"locks_tracked\": {}}},",
            self.stats.functions,
            self.stats.call_edges,
            self.stats.enums_checked,
            self.stats.locks_tracked
        );
        s.push_str("\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \
                 \"chain\": [",
                escape(&f.file),
                f.line,
                f.rule,
                escape(&f.message)
            );
            for (j, step) in f.chain.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(
                    s,
                    "{{\"func\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                    escape(&step.func),
                    escape(&step.file),
                    step.line
                );
            }
            s.push_str("]}");
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"unwraps\": {");
        for (i, (k, v)) in self.unwraps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{}\": {}", escape(k), v);
        }
        if !self.unwraps.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }
}

/// Minimal JSON string escaping.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            findings: vec![
                Finding::new("b.rs", 2, "wall-clock", "x \"quoted\"".into()).with_chain(vec![
                    ChainStep { func: "core::helper".into(), file: "c.rs".into(), line: 7 },
                    ChainStep { func: "Instant".into(), file: "c.rs".into(), line: 9 },
                ]),
                Finding::new("a.rs", 9, "anchor", "y".into()),
            ],
            unwraps: BTreeMap::from([("core".to_string(), 3usize)]),
            files_scanned: 2,
            ..Report::default()
        };
        r.sort();
        r
    }

    #[test]
    fn sort_orders_by_file_then_line() {
        let r = sample();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[1].file, "b.rs");
    }

    #[test]
    fn text_has_file_line_rule_and_chain() {
        let r = sample();
        let t = r.to_text();
        assert!(t.contains("a.rs:9: [anchor] y"));
        assert!(t.contains("2 finding(s)"));
        assert!(t.contains("    via core::helper (c.rs:7)"));
        assert!(t.contains("    via Instant (c.rs:9)"));
    }

    #[test]
    fn json_is_escaped_and_complete() {
        let r = sample();
        let j = r.to_json();
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("x \\\"quoted\\\""));
        assert!(j.contains("\"core\": 3"));
        assert!(
            j.contains("\"chain\": [{\"func\": \"core::helper\", \"file\": \"c.rs\", \"line\": 7}")
        );
        assert!(j.contains("\"stats\""));
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::default();
        assert!(r.clean());
        assert!(r.to_json().contains("\"clean\": true"));
    }
}
