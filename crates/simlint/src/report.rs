//! Findings and the human/machine report formats.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One diagnostic. `file` is root-relative with forward slashes so the
/// output is stable across machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Root-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (e.g. `wall-clock`, `unordered-iter`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// The full result of one lint run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Per-crate `.unwrap()` counts (all code, test mods included).
    pub unwraps: BTreeMap<String, usize>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace passed every rule.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Canonical ordering for deterministic output.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
    }

    /// `file:line: [rule] message` lines plus a summary footer.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            let _ = writeln!(s, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        let _ = writeln!(
            s,
            "simlint: {} file(s) scanned, {} finding(s), {} unwrap(s) across {} crate(s)",
            self.files_scanned,
            self.findings.len(),
            self.unwraps.values().sum::<usize>(),
            self.unwraps.len()
        );
        s
    }

    /// Machine-readable report (hand-rolled: the workspace is offline and
    /// simlint is dependency-free by construction).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"clean\": ");
        s.push_str(if self.clean() { "true" } else { "false" });
        let _ = write!(s, ",\n  \"files_scanned\": {},\n  \"findings\": [", self.files_scanned);
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                escape(&f.file),
                f.line,
                f.rule,
                escape(&f.message)
            );
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"unwraps\": {");
        for (i, (k, v)) in self.unwraps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{}\": {}", escape(k), v);
        }
        if !self.unwraps.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }
}

/// Minimal JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            findings: vec![
                Finding {
                    file: "b.rs".into(),
                    line: 2,
                    rule: "wall-clock",
                    message: "x \"quoted\"".into(),
                },
                Finding { file: "a.rs".into(), line: 9, rule: "anchor", message: "y".into() },
            ],
            unwraps: BTreeMap::from([("core".to_string(), 3usize)]),
            files_scanned: 2,
        };
        r.sort();
        r
    }

    #[test]
    fn sort_orders_by_file_then_line() {
        let r = sample();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[1].file, "b.rs");
    }

    #[test]
    fn text_has_file_line_rule() {
        let r = sample();
        let t = r.to_text();
        assert!(t.contains("a.rs:9: [anchor] y"));
        assert!(t.contains("2 finding(s)"));
    }

    #[test]
    fn json_is_escaped_and_complete() {
        let r = sample();
        let j = r.to_json();
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("x \\\"quoted\\\""));
        assert!(j.contains("\"core\": 3"));
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::default();
        assert!(r.clean());
        assert!(r.to_json().contains("\"clean\": true"));
    }
}
