//! Workspace symbol graph: functions, impl owners, call sites, enums,
//! match sites, consts and `use` imports, resolved across files and
//! crate boundaries.
//!
//! This is the substrate for every inter-procedural rule: transitive
//! D1–D3 taint walks the call edges, D6 reads lock declarations through
//! the struct-field table, and D7 cross-checks enum declarations against
//! match sites and codec functions. The parser is a single linear pass
//! over the token stream per file (item stacks for `impl`/`fn` nesting),
//! deliberately tolerant: unparseable shapes are skipped, never fatal —
//! for a linter, a missed edge beats a crash.

use std::collections::BTreeMap;

use crate::lexer::{Lexed, Tok, Token};
use crate::workspace::{self, Tier};

/// Method names owned by std containers/iterators/smart pointers. A
/// `.name(` call with one of these names is never linked to a workspace
/// function of the same name: the receiver is almost always a std type,
/// and a false edge into user code would manufacture taint chains.
const BUILTIN_METHODS: &[&str] = &[
    "new",
    "clone",
    "clone_from",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "contains",
    "contains_key",
    "clear",
    "drain",
    "retain",
    "keys",
    "values",
    "values_mut",
    "entry",
    "extend",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_by_key",
    "map",
    "filter",
    "fold",
    "collect",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "take",
    "replace",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "to_string",
    "to_vec",
    "to_owned",
    "into",
    "from",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "drop",
    "send",
    "recv",
    "join",
    "lock",
    "read",
    "write",
    "min",
    "max",
    "abs",
    "first",
    "last",
    "split",
    "trim",
    "parse",
    "chars",
    "lines",
    "bytes",
    "starts_with",
    "ends_with",
    "find",
    "position",
    "any",
    "all",
    "count",
    "sum",
    "product",
    "zip",
    "rev",
    "enumerate",
    "flat_map",
    "flatten",
    "chain",
    "skip",
    "windows",
    "chunks",
    "binary_search",
    "binary_search_by",
    "push_str",
    "get_or_init",
    "saturating_sub",
    "saturating_add",
    "wrapping_add",
    "checked_sub",
    "checked_add",
];

/// Rust keywords that look like call heads when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "ref",
    "mut", "box", "await", "yield", "where", "use", "pub", "unsafe", "dyn", "impl", "fn",
];

/// Per-file metadata carried alongside the lexed tokens.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// Root-relative path, forward slashes.
    pub rel: String,
    /// Owning crate key ([`workspace::crate_key`]).
    pub crate_key: String,
    /// Determinism tier of the owning crate.
    pub tier: Tier,
    /// Whole file is test-only (tests/, benches/, examples/).
    pub is_test_path: bool,
}

/// A function (free, associated or method) discovered in the workspace.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Function name (raw-identifier prefix stripped).
    pub name: String,
    /// `impl` owner type when inside an impl block.
    pub owner: Option<String>,
    /// Index into the graph's file table.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, braces included; `None` for
    /// bodyless declarations (trait methods, extern).
    pub body: Option<(usize, usize)>,
    /// True when the function lives in test-only code (path- or
    /// `#[cfg(test)]`-level).
    pub is_test: bool,
    /// The declared return type resolves to a hash container (possibly
    /// through `Arc`/`Box`/`Rc`/`&`).
    pub returns_hash: bool,
}

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallQual {
    /// Bare `name(…)`.
    Free,
    /// Method syntax `recv.name(…)`.
    Method,
    /// Path syntax `Qual::name(…)`; the qualifier is the path segment
    /// directly before the callee (`TentSet`, `ocpt_core`, `self`, …).
    Path(String),
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Index of the calling function.
    pub caller: usize,
    /// Callee name as written.
    pub name: String,
    /// Qualifier shape.
    pub qual: CallQual,
    /// 1-based line.
    pub line: u32,
}

/// An `enum` declaration.
#[derive(Clone, Debug)]
pub struct EnumInfo {
    /// Enum name.
    pub name: String,
    /// Declaring file index.
    pub file: usize,
    /// 1-based line of the declaration.
    pub line: u32,
    /// Variant names, declaration order.
    pub variants: Vec<String>,
}

/// A `Enum::Variant` path occurrence (pattern or expression position).
#[derive(Clone, Debug)]
pub struct VariantRef {
    /// Referenced enum name.
    pub enum_name: String,
    /// Referenced variant.
    pub variant: String,
    /// File index.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// Enclosing function, when inside one.
    pub in_fn: Option<usize>,
}

/// One arm of a `match` expression.
#[derive(Clone, Debug)]
pub struct MatchArm {
    /// 1-based line the pattern starts on.
    pub line: u32,
    /// `(Enum, Variant)` paths appearing in the pattern (guard included).
    pub pats: Vec<(String, String)>,
    /// The arm is a bare `_` or a bare binding — a catch-all.
    pub catch_all: bool,
}

/// A `match` expression with its parsed arms.
#[derive(Clone, Debug)]
pub struct MatchSite {
    /// File index.
    pub file: usize,
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// The match lives in test-only code.
    pub is_test: bool,
    /// Parsed arms.
    pub arms: Vec<MatchArm>,
}

/// A `const NAME` declaration.
#[derive(Clone, Debug)]
pub struct ConstInfo {
    /// Const name.
    pub name: String,
    /// File index.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
}

/// A reference to a known const (collected in the second phase).
#[derive(Clone, Debug)]
pub struct ConstRef {
    /// Referenced const name.
    pub name: String,
    /// File index.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// Enclosing function, when inside one.
    pub in_fn: Option<usize>,
}

/// A struct field whose type resolves to a hash container — the
/// cross-file half of D2's binding table.
#[derive(Clone, Debug)]
pub struct HashField {
    /// Field name.
    pub name: String,
    /// Declaring struct.
    pub owner: String,
    /// File index.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
}

/// The assembled workspace graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// File table (parallel to the lexed inputs).
    pub files: Vec<FileMeta>,
    /// All functions.
    pub fns: Vec<FnInfo>,
    /// All call sites.
    pub calls: Vec<CallSite>,
    /// All enum declarations.
    pub enums: Vec<EnumInfo>,
    /// All `Enum::Variant` references (second phase, known enums only).
    pub vrefs: Vec<VariantRef>,
    /// All match sites.
    pub matches: Vec<MatchSite>,
    /// All const declarations.
    pub consts: Vec<ConstInfo>,
    /// References to known consts (second phase).
    pub const_refs: Vec<ConstRef>,
    /// Hash-typed struct fields, workspace-wide.
    pub hash_fields: Vec<HashField>,
    /// Per-file imports: `(file, local name, source crate key)`; built
    /// from `use` declarations whose root is a workspace crate (or
    /// `crate`/`self`/`super`). Names imported from external roots map
    /// to the reserved key `"::external"`.
    pub imports: Vec<(usize, String, String)>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Map a `use`-path root to a crate key: `ocpt_sim`/`ocpt-sim` → `sim`,
/// `crate`/`self`/`super` → the current crate, known externals → the
/// reserved `"::external"` marker, anything else → `None` (unresolvable).
fn root_to_crate(root: &str, current: &str) -> Option<String> {
    if let Some(rest) = root.strip_prefix("ocpt_") {
        return Some(rest.to_string());
    }
    if root == "simlint" {
        return Some("simlint".to_string());
    }
    if root == "crate" || root == "self" || root == "super" {
        return Some(current.to_string());
    }
    if matches!(root, "std" | "core" | "alloc" | "bytes" | "proptest" | "criterion") {
        return Some("::external".to_string());
    }
    None
}

impl Graph {
    /// Build the graph over lexed files. `files` pairs each lexed source
    /// with its root-relative path.
    pub fn build(files: &[(String, Lexed)]) -> Graph {
        let mut g = Graph::default();
        for (rel, _) in files {
            let key = workspace::crate_key(rel);
            g.files.push(FileMeta {
                rel: rel.clone(),
                tier: workspace::tier_of(&key),
                is_test_path: workspace::path_is_test(rel),
                crate_key: key,
            });
        }
        // Phase 1: items, calls, matches, imports per file.
        for (fi, (_, lexed)) in files.iter().enumerate() {
            parse_file(&mut g, fi, lexed);
        }
        // Phase 2: enum-variant and const references need the full
        // declaration tables.
        let enum_table: BTreeMap<&str, &EnumInfo> =
            g.enums.iter().map(|e| (e.name.as_str(), e)).collect();
        let const_names: Vec<&str> = g.consts.iter().map(|c| c.name.as_str()).collect();
        let mut vrefs = Vec::new();
        let mut const_refs = Vec::new();
        for (fi, (_, lexed)) in files.iter().enumerate() {
            collect_refs(&g, fi, lexed, &enum_table, &const_names, &mut vrefs, &mut const_refs);
        }
        g.vrefs = vrefs;
        g.const_refs = const_refs;
        for (i, f) in g.fns.iter().enumerate() {
            g.by_name.entry(f.name.clone()).or_default().push(i);
        }
        g
    }

    /// Candidate callee function ids for a call site, conservatively
    /// resolved: exact name match, narrowed by qualifier (crate path,
    /// impl owner) and by `use` imports; `.method(` calls with std
    /// container names are never linked.
    pub fn resolve(&self, call: &CallSite) -> Vec<usize> {
        let Some(cands) = self.by_name.get(&call.name) else { return Vec::new() };
        let caller_file = self.fns[call.caller].file;
        let caller_crate = &self.files[caller_file].crate_key;
        match &call.qual {
            CallQual::Method => {
                if BUILTIN_METHODS.contains(&call.name.as_str()) {
                    return Vec::new();
                }
                cands.iter().copied().filter(|&i| self.fns[i].owner.is_some()).collect()
            }
            CallQual::Path(q) => {
                // Crate-qualified path: `ocpt_core::f`, `crate::f`, …
                if let Some(krate) = root_to_crate(q, caller_crate) {
                    if krate == "::external" {
                        return Vec::new();
                    }
                    return cands
                        .iter()
                        .copied()
                        .filter(|&i| self.files[self.fns[i].file].crate_key == krate)
                        .collect();
                }
                // Type-qualified associated call: `TentSet::from_wire`.
                let owner =
                    if q == "Self" { self.fns[call.caller].owner.clone() } else { Some(q.clone()) };
                cands
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].owner.as_deref() == owner.as_deref())
                    .collect()
            }
            CallQual::Free => {
                // An explicit import pins the source crate.
                if let Some((_, _, krate)) =
                    self.imports.iter().find(|(f, n, _)| *f == caller_file && n == &call.name)
                {
                    if krate == "::external" {
                        return Vec::new();
                    }
                    return cands
                        .iter()
                        .copied()
                        .filter(|&i| self.files[self.fns[i].file].crate_key == *krate)
                        .collect();
                }
                // Prefer same file, then same crate, then anywhere.
                let free: Vec<usize> =
                    cands.iter().copied().filter(|&i| self.fns[i].owner.is_none()).collect();
                let same_file: Vec<usize> =
                    free.iter().copied().filter(|&i| self.fns[i].file == caller_file).collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                let same_crate: Vec<usize> = free
                    .iter()
                    .copied()
                    .filter(|&i| &self.files[self.fns[i].file].crate_key == caller_crate)
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
                free
            }
        }
    }

    /// The function whose body span contains token index `tok` of file
    /// `file`, if any (innermost wins).
    pub fn fn_at(&self, file: usize, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut best_width = usize::MAX;
        for (i, f) in self.fns.iter().enumerate() {
            if f.file != file {
                continue;
            }
            if let Some((a, b)) = f.body {
                if a <= tok && tok < b && b - a < best_width {
                    best = Some(i);
                    best_width = b - a;
                }
            }
        }
        best
    }

    /// Human-readable qualified name `crate::Owner::name`.
    pub fn fq_name(&self, id: usize) -> String {
        let f = &self.fns[id];
        let krate = &self.files[f.file].crate_key;
        match &f.owner {
            Some(o) => format!("{krate}::{o}::{}", f.name),
            None => format!("{krate}::{}", f.name),
        }
    }
}

/// True when the token slice starting a type (or constructor expression)
/// resolves to a hash container. Deref-transparent wrappers (`Arc`,
/// `Box`, `Rc`, references) are looked through; ordered containers
/// (`Vec`, `Option`, `BTreeMap`, …) terminate the scan — iterating
/// `Vec<HashMap<…>>` yields the maps in Vec order, which is
/// deterministic, so the outer type decides.
pub fn type_is_hash(toks: &[Token]) -> bool {
    const HASH: &[&str] = &["HashMap", "HashSet"];
    const TRANSPARENT: &[&str] = &["Arc", "Rc", "Box", "Cow"];
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('&') | Tok::Punct('<') | Tok::Lifetime => i += 1,
            Tok::Ident(w) if w == "mut" || w == "dyn" || w == "impl" => i += 1,
            t => {
                let Some(w) = t.ident() else { return false };
                // Path prefix `seg::` — skip, unless the segment itself
                // is the hash type (`HashMap::new()`).
                let is_path_prefix = toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                    && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'));
                if HASH.contains(&w) {
                    return true;
                }
                if is_path_prefix {
                    i += 3;
                    continue;
                }
                if TRANSPARENT.contains(&w) {
                    // Look through the wrapper into its generic args.
                    i += 1;
                    continue;
                }
                return false;
            }
        }
    }
    false
}

/// Extent of a type starting at `start`: scan to the first
/// `, ; ) { } =` at angle depth 0 (the same boundary rules the binding
/// collector uses).
fn type_end(toks: &[Token], start: usize) -> usize {
    let mut angle = 0i32;
    let mut j = start;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct(',')
            | Tok::Punct(';')
            | Tok::Punct(')')
            | Tok::Punct('{')
            | Tok::Punct('}')
            | Tok::Punct('=')
                if angle <= 0 =>
            {
                break;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skip a balanced group opening at `toks[i]` (one of `( [ {` or `<`),
/// returning the index just past its close. For `<` only `<`/`>` nest.
fn skip_group(toks: &[Token], i: usize) -> usize {
    let (open, close) = match toks[i].tok {
        Tok::Punct('(') => ('(', ')'),
        Tok::Punct('[') => ('[', ']'),
        Tok::Punct('{') => ('{', '}'),
        Tok::Punct('<') => ('<', '>'),
        _ => return i + 1,
    };
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct(c) if c == open => depth += 1,
            Tok::Punct(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Phase-1 parse of one file: functions (with impl owners), calls,
/// enums, structs, consts, matches and imports.
fn parse_file(g: &mut Graph, fi: usize, lexed: &Lexed) {
    let toks = &lexed.tokens;
    let meta = g.files[fi].clone();
    let n = toks.len();

    // Stacks of open scopes, as (end token index, payload).
    let mut impl_stack: Vec<(usize, Option<String>)> = Vec::new();
    let mut fn_stack: Vec<(usize, usize)> = Vec::new(); // (body end, fn id)

    let mut i = 0usize;
    while i < n {
        impl_stack.retain(|&(end, _)| i < end);
        fn_stack.retain(|&(end, _)| i < end);
        let line = toks[i].line;
        let in_test = meta.is_test_path
            || lexed.in_test_code(line)
            || fn_stack.last().is_some_and(|&(_, id)| g.fns[id].is_test);

        match &toks[i].tok {
            Tok::Ident(w) if w == "impl" => {
                // Header runs to the opening brace; `for` marks a trait
                // impl whose subject follows it.
                let mut j = i + 1;
                if j < n && toks[j].tok == Tok::Punct('<') {
                    j = skip_group(toks, j);
                }
                let header_end = {
                    let mut k = j;
                    while k < n && toks[k].tok != Tok::Punct('{') && toks[k].tok != Tok::Punct(';')
                    {
                        k += 1;
                    }
                    k
                };
                let subject_start =
                    (j..header_end).find(|&k| toks[k].tok.is_kw("for")).map(|k| k + 1).unwrap_or(j);
                let owner = (subject_start..header_end).find_map(|k| match &toks[k].tok {
                    Tok::Ident(name) if name != "mut" && name != "dyn" => Some(name.clone()),
                    Tok::RawIdent(name) => Some(name.clone()),
                    _ => None,
                });
                if header_end < n && toks[header_end].tok == Tok::Punct('{') {
                    let end = skip_group(toks, header_end);
                    impl_stack.push((end, owner));
                    i = header_end + 1;
                } else {
                    i = header_end + 1;
                }
            }
            Tok::Ident(w) if w == "fn" => {
                let Some(name) = toks.get(i + 1).and_then(|t| t.tok.ident()) else {
                    i += 1;
                    continue;
                };
                let name = name.to_string();
                let mut j = i + 2;
                if j < n && toks[j].tok == Tok::Punct('<') {
                    j = skip_group(toks, j);
                }
                if j < n && toks[j].tok == Tok::Punct('(') {
                    j = skip_group(toks, j);
                }
                // Return type: between `->` and the body/`;`/`where`.
                let mut returns_hash = false;
                if j + 1 < n && toks[j].tok == Tok::Punct('-') && toks[j + 1].tok == Tok::Punct('>')
                {
                    let ty_start = j + 2;
                    let mut k = ty_start;
                    let mut angle = 0i32;
                    while k < n {
                        match &toks[k].tok {
                            Tok::Punct('<') => angle += 1,
                            Tok::Punct('>') => angle -= 1,
                            Tok::Punct('{') | Tok::Punct(';') if angle <= 0 => break,
                            Tok::Ident(kw) if kw == "where" && angle <= 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    returns_hash = type_is_hash(&toks[ty_start..k]);
                    j = k;
                }
                // Skip a where clause.
                while j < n && toks[j].tok != Tok::Punct('{') && toks[j].tok != Tok::Punct(';') {
                    j += 1;
                }
                let body = if j < n && toks[j].tok == Tok::Punct('{') {
                    Some((j, skip_group(toks, j)))
                } else {
                    None
                };
                let id = g.fns.len();
                g.fns.push(FnInfo {
                    name,
                    owner: impl_stack.last().and_then(|(_, o)| o.clone()),
                    file: fi,
                    line,
                    body,
                    is_test: in_test,
                    returns_hash,
                });
                if let Some((start, end)) = body {
                    fn_stack.push((end, id));
                    i = start + 1;
                } else {
                    i = j + 1;
                }
            }
            Tok::Ident(w) if w == "enum" => {
                let Some(name) = toks.get(i + 1).and_then(|t| t.tok.ident()) else {
                    i += 1;
                    continue;
                };
                let name = name.to_string();
                let mut j = i + 2;
                if j < n && toks[j].tok == Tok::Punct('<') {
                    j = skip_group(toks, j);
                }
                if j < n && toks[j].tok == Tok::Punct('{') {
                    let end = skip_group(toks, j);
                    let variants = parse_variants(toks, j + 1, end.saturating_sub(1));
                    g.enums.push(EnumInfo { name, file: fi, line, variants });
                    i = end;
                } else {
                    i = j;
                }
            }
            Tok::Ident(w) if w == "struct" => {
                let owner =
                    toks.get(i + 1).and_then(|t| t.tok.ident()).unwrap_or_default().to_string();
                let mut j = i + 2;
                if j < n && toks[j].tok == Tok::Punct('<') {
                    j = skip_group(toks, j);
                }
                if j < n && toks[j].tok == Tok::Punct('{') {
                    let end = skip_group(toks, j);
                    collect_hash_fields(g, fi, toks, j + 1, end.saturating_sub(1), &owner);
                    i = end;
                } else {
                    i = j;
                }
            }
            Tok::Ident(w) if w == "const" || w == "static" => {
                if let Some(name) = toks.get(i + 1).and_then(|t| t.tok.ident()) {
                    // `const fn` — not a const item.
                    if name != "fn" {
                        g.consts.push(ConstInfo { name: name.to_string(), file: fi, line });
                    }
                }
                i += 1;
            }
            Tok::Ident(w) if w == "use" => {
                let mut j = i + 1;
                while j < n && toks[j].tok != Tok::Punct(';') {
                    j += 1;
                }
                parse_use(g, fi, &toks[i + 1..j.min(n)], &meta.crate_key);
                i = j + 1;
            }
            Tok::Ident(w) if w == "match" => {
                if let Some(site) = parse_match(toks, i, fi, in_test) {
                    g.matches.push(site);
                }
                i += 1;
            }
            Tok::Ident(_) | Tok::RawIdent(_) => {
                // Call-site detection, only inside a function body.
                if let Some(&(_, caller)) = fn_stack.last() {
                    if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('(')) {
                        let name = toks[i].tok.ident().unwrap_or_default().to_string();
                        if !KEYWORDS.contains(&name.as_str()) {
                            let qual = call_qual(toks, i);
                            g.calls.push(CallSite { caller, name, qual, line });
                        }
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Classify the qualifier of a call whose head identifier is at `i`.
fn call_qual(toks: &[Token], i: usize) -> CallQual {
    if i >= 1 && toks[i - 1].tok == Tok::Punct('.') {
        return CallQual::Method;
    }
    if i >= 3 && toks[i - 1].tok == Tok::Punct(':') && toks[i - 2].tok == Tok::Punct(':') {
        if let Some(q) = toks[i - 3].tok.ident() {
            return CallQual::Path(q.to_string());
        }
        // `<T as Trait>::f(…)` and friends: treat as free (unresolvable).
    }
    CallQual::Free
}

/// Variant names of an enum body spanning tokens `[start, end)` at
/// depth 1 (the body braces are excluded by the caller).
fn parse_variants(toks: &[Token], start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = start;
    let mut at_variant_start = true;
    while i < end.min(toks.len()) {
        match &toks[i].tok {
            // Outer attribute on the variant.
            Tok::Punct('#') if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('[')) => {
                i = skip_group(toks, i + 1);
            }
            Tok::Punct('(') | Tok::Punct('{') | Tok::Punct('[') => {
                i = skip_group(toks, i);
            }
            Tok::Punct(',') => {
                at_variant_start = true;
                i += 1;
            }
            t => {
                if at_variant_start {
                    if let Some(name) = t.ident() {
                        out.push(name.to_string());
                        at_variant_start = false;
                    }
                }
                i += 1;
            }
        }
    }
    out
}

/// Record hash-typed named fields of a struct body `[start, end)`.
fn collect_hash_fields(
    g: &mut Graph,
    fi: usize,
    toks: &[Token],
    start: usize,
    end: usize,
    owner: &str,
) {
    let mut i = start;
    while i + 2 < end.min(toks.len()) {
        // `name : TYPE` at depth 0 of the struct body; skip nested groups.
        match &toks[i].tok {
            Tok::Punct('(') | Tok::Punct('{') | Tok::Punct('[') | Tok::Punct('<') => {
                i = skip_group(toks, i);
                continue;
            }
            _ => {}
        }
        if let Some(name) = toks[i].tok.ident() {
            if toks[i + 1].tok == Tok::Punct(':') && toks[i + 2].tok != Tok::Punct(':') {
                let ty_start = i + 2;
                let ty_end = type_end(toks, ty_start);
                if type_is_hash(&toks[ty_start..ty_end]) {
                    g.hash_fields.push(HashField {
                        name: name.to_string(),
                        owner: owner.to_string(),
                        file: fi,
                        line: toks[i].line,
                    });
                }
                i = ty_end;
                continue;
            }
        }
        i += 1;
    }
}

/// Parse a `use` declaration body (tokens between `use` and `;`) into
/// `(file, name, crate)` import rows. Handles nested group lists and
/// `as` renames; glob imports are ignored (nothing to name).
fn parse_use(g: &mut Graph, fi: usize, toks: &[Token], current: &str) {
    let Some(root) = toks.first().and_then(|t| t.tok.ident()) else { return };
    let Some(krate) = root_to_crate(root, current) else { return };
    // Collect leaf names: an ident is a leaf when not followed by `::`;
    // `a as b` imports `b`.
    let mut i = 0usize;
    while i < toks.len() {
        let Some(w) = toks[i].tok.ident() else {
            i += 1;
            continue;
        };
        let followed_by_path = toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
            && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'));
        if w == "as" {
            i += 1;
            continue;
        }
        if !followed_by_path {
            // `x as y` — the preceding `as` means `w` is the rename; the
            // plain case imports `w` itself. Either way `w` is the local
            // name.
            let name = w.to_string();
            if name != "self" {
                g.imports.push((fi, name, krate.clone()));
            } else if let Some(prev) = (0..i).rev().find_map(|k| toks[k].tok.ident()) {
                // `use a::b::{self}` imports `b`.
                if prev != "as" {
                    g.imports.push((fi, prev.to_string(), krate.clone()));
                }
            }
        }
        i += 1;
    }
}

/// Parse the `match` whose keyword is at token `i`. Returns `None` when
/// the shape is not a match expression (e.g. macro fragment).
fn parse_match(toks: &[Token], i: usize, fi: usize, is_test: bool) -> Option<MatchSite> {
    let n = toks.len();
    // Scrutinee: to the first `{` at bracket depth 0.
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < n {
        match toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') if depth == 0 => break,
            Tok::Punct(';') if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    if j >= n {
        return None;
    }
    let body_end = skip_group(toks, j) - 1; // index of the closing `}`
    let mut arms = Vec::new();
    let mut k = j + 1;
    while k < body_end {
        // Pattern: up to `=>` at depth 0 within the arm.
        let pat_start = k;
        let mut depth = 0i32;
        let mut arrow = None;
        while k < body_end {
            match toks[k].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Punct('=')
                    if depth == 0 && toks.get(k + 1).map(|t| &t.tok) == Some(&Tok::Punct('>')) =>
                {
                    arrow = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(arrow) = arrow else { break };
        let pat = &toks[pat_start..arrow];
        let guard_at = pat.iter().position(|t| t.tok.is_kw("if"));
        let head = &pat[..guard_at.unwrap_or(pat.len())];
        let catch_all = head.len() == 1 && matches!(&head[0].tok, Tok::Ident(w) if w == "_")
            || (head.len() == 1
                && matches!(&head[0].tok, Tok::Ident(_))
                && guard_at.is_none()
                && {
                    // A bare binding is a catch-all too — but only when it is
                    // genuinely a lone lowercase identifier (an uppercase
                    // lone ident is a unit variant/const pattern).
                    let Tok::Ident(w) = &head[0].tok else { unreachable!() };
                    w.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                });
        let mut pats = Vec::new();
        let mut p = 0usize;
        while p + 3 < pat.len() {
            if let (Some(a), Tok::Punct(':'), Tok::Punct(':'), Some(b)) =
                (pat[p].tok.ident(), &pat[p + 1].tok, &pat[p + 2].tok, pat[p + 3].tok.ident())
            {
                let more_path = pat.get(p + 4).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                    && pat.get(p + 5).map(|t| &t.tok) == Some(&Tok::Punct(':'));
                if !more_path {
                    pats.push((a.to_string(), b.to_string()));
                }
            }
            p += 1;
        }
        arms.push(MatchArm { line: toks[pat_start].line, pats, catch_all });
        // Arm value: a `{…}` block (optionally followed by `,`) or an
        // expression up to `,` at depth 0.
        k = arrow + 2;
        if k < body_end && toks[k].tok == Tok::Punct('{') {
            k = skip_group(toks, k);
            if k < body_end && toks[k].tok == Tok::Punct(',') {
                k += 1;
            }
        } else {
            let mut depth = 0i32;
            while k < body_end {
                match toks[k].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                    Tok::Punct(',') if depth == 0 => {
                        k += 1;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }
    Some(MatchSite { file: fi, line: toks[i].line, is_test, arms })
}

/// Phase-2 sweep: `Enum::Variant` and const references with their
/// enclosing functions.
#[allow(clippy::too_many_arguments)]
fn collect_refs(
    g: &Graph,
    fi: usize,
    lexed: &Lexed,
    enums: &BTreeMap<&str, &EnumInfo>,
    const_names: &[&str],
    vrefs: &mut Vec<VariantRef>,
    const_refs: &mut Vec<ConstRef>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let Some(w) = toks[i].tok.ident() else { continue };
        if let Some(e) = enums.get(w) {
            if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'))
            {
                if let Some(v) = toks.get(i + 3).and_then(|t| t.tok.ident()) {
                    if e.variants.iter().any(|x| x == v) {
                        vrefs.push(VariantRef {
                            enum_name: w.to_string(),
                            variant: v.to_string(),
                            file: fi,
                            line: toks[i].line,
                            in_fn: g.fn_at(fi, i),
                        });
                    }
                }
            }
        }
        if const_names.contains(&w) {
            // Skip the declaration itself (`const NAME`).
            let is_decl =
                i >= 1 && toks[i - 1].tok.ident().is_some_and(|p| p == "const" || p == "static");
            if !is_decl {
                const_refs.push(ConstRef {
                    name: w.to_string(),
                    file: fi,
                    line: toks[i].line,
                    in_fn: g.fn_at(fi, i),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn build(files: &[(&str, &str)]) -> Graph {
        let lexed: Vec<(String, Lexed)> =
            files.iter().map(|(rel, src)| (rel.to_string(), lex(src))).collect();
        Graph::build(&lexed)
    }

    #[test]
    fn functions_and_owners_are_discovered() {
        let g = build(&[(
            "crates/core/src/lib.rs",
            "pub fn free() {}\nstruct S;\nimpl S { fn method(&self) {} }\n\
             impl Display for S { fn fmt(&self) {} }",
        )]);
        let names: Vec<(String, Option<String>)> =
            g.fns.iter().map(|f| (f.name.clone(), f.owner.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("free".to_string(), None),
                ("method".to_string(), Some("S".to_string())),
                ("fmt".to_string(), Some("S".to_string())),
            ]
        );
    }

    #[test]
    fn calls_are_attributed_and_resolved() {
        let g = build(&[
            ("crates/core/src/a.rs", "pub fn helper() {}"),
            (
                "crates/sim/src/b.rs",
                "use ocpt_core::helper;\nfn driver() { helper(); leaf(); }\nfn leaf() {}",
            ),
        ]);
        let driver = g.fns.iter().position(|f| f.name == "driver").expect("driver parsed");
        let calls: Vec<&CallSite> = g.calls.iter().filter(|c| c.caller == driver).collect();
        assert_eq!(calls.len(), 2);
        let helper_ids = g.resolve(calls[0]);
        assert_eq!(helper_ids.len(), 1);
        assert_eq!(g.fq_name(helper_ids[0]), "core::helper");
        let leaf_ids = g.resolve(calls[1]);
        assert_eq!(leaf_ids.len(), 1);
        assert_eq!(g.fq_name(leaf_ids[0]), "sim::leaf");
    }

    #[test]
    fn builtin_method_calls_do_not_link() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "struct S;\nimpl S { fn get(&self) {} }\nfn f(m: &M) { m.get(1); m.custom(); }\nimpl S { fn custom(&self) {} }",
        )]);
        let f = g.fns.iter().position(|x| x.name == "f").expect("f parsed");
        let calls: Vec<&CallSite> = g.calls.iter().filter(|c| c.caller == f).collect();
        assert!(g.resolve(calls[0]).is_empty(), "builtin .get must not link");
        assert_eq!(g.resolve(calls[1]).len(), 1, ".custom links to the method");
    }

    #[test]
    fn enums_variants_and_matches_parse() {
        let src = "pub enum K { A, B(u32), C { x: u8 } }\n\
                   fn h(k: K) { match k { K::A => 1, K::B(v) => v, other => 0, } }";
        let g = build(&[("crates/core/src/k.rs", src)]);
        assert_eq!(g.enums.len(), 1);
        assert_eq!(g.enums[0].variants, vec!["A", "B", "C"]);
        assert_eq!(g.matches.len(), 1);
        let m = &g.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert_eq!(m.arms[0].pats, vec![("K".to_string(), "A".to_string())]);
        assert!(m.arms[2].catch_all, "bare binding arm is a catch-all");
        assert!(!m.arms[0].catch_all);
    }

    #[test]
    fn expression_position_variant_refs_do_not_make_a_protocol_match() {
        // Arms whose *patterns* are numbers only reference variants in
        // expression position — decode-style matches over u8.
        let src = "pub enum K { A, B }\nfn dec(x: u8) -> K { match x { 0 => K::A, 1 => K::B, t => K::A, } }";
        let g = build(&[("crates/core/src/k.rs", src)]);
        let m = &g.matches[0];
        assert!(m.arms.iter().all(|a| a.pats.is_empty()));
        // … but the refs are still collected for codec reconciliation.
        assert_eq!(g.vrefs.iter().filter(|r| r.enum_name == "K").count(), 3);
    }

    #[test]
    fn raw_identifier_match_is_not_a_match_site() {
        let g = build(&[("crates/core/src/r.rs", "fn f() { let r#match = 1; let y = r#match; }")]);
        assert!(g.matches.is_empty(), "r#match must not open a match site");
    }

    #[test]
    fn return_type_hash_detection_sees_through_wrappers_not_containers() {
        let src = "fn a() -> HashMap<u32, u32> { x }\n\
                   fn b() -> Arc<HashMap<u32, u32>> { x }\n\
                   fn c() -> Vec<HashMap<u32, u32>> { x }\n\
                   fn d() -> BTreeMap<u32, u32> { x }";
        let g = build(&[("crates/core/src/t.rs", src)]);
        let by: BTreeMap<&str, bool> =
            g.fns.iter().map(|f| (f.name.as_str(), f.returns_hash)).collect();
        assert!(by["a"] && by["b"], "{by:?}");
        assert!(!by["c"] && !by["d"], "{by:?}");
    }

    #[test]
    fn hash_fields_collected_with_outer_type_precision() {
        let src = "struct S { live: HashSet<u64>, ordered: Vec<HashMap<u8, u8>>, shared: Arc<HashMap<u8, u8>> }";
        let g = build(&[("crates/sim/src/s.rs", src)]);
        let names: Vec<&str> = g.hash_fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["live", "shared"]);
    }

    #[test]
    fn consts_and_refs_are_linked_to_functions() {
        let src = "pub const TAG_A: u8 = 0;\nfn to_bytes() { emit(TAG_A); }\nfn from_wire() { read(TAG_A); }";
        let g = build(&[("crates/core/src/w.rs", src)]);
        assert_eq!(g.consts.len(), 1);
        assert_eq!(g.const_refs.len(), 2);
        let fns: Vec<Option<&str>> =
            g.const_refs.iter().map(|r| r.in_fn.map(|i| g.fns[i].name.as_str())).collect();
        assert_eq!(fns, vec![Some("to_bytes"), Some("from_wire")]);
    }

    #[test]
    fn test_code_marks_functions() {
        let src = "fn live() {}\n#[cfg(test)]\nmod t {\n    fn helper() {}\n}";
        let g = build(&[("crates/core/src/x.rs", src)]);
        let by: BTreeMap<&str, bool> = g.fns.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert!(!by["live"]);
        assert!(by["helper"]);
    }
}
