//! CLI for simlint.
//!
//! ```text
//! simlint [--root <dir>] [--json] [--write-baseline]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                println!("usage: simlint [--root <dir>] [--json] [--write-baseline]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("simlint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match simlint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("simlint: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match simlint::run(&root, write_baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if write_baseline {
        eprintln!("simlint: wrote {}", root.join(simlint::baseline::BASELINE_FILE).display());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("simlint: {msg}\nusage: simlint [--root <dir>] [--json] [--write-baseline]");
    ExitCode::from(2)
}
