//! CLI for simlint.
//!
//! ```text
//! simlint [--root <dir>] [--json] [--sarif <path>] [--write-baseline]
//!         [--self-time] [--explain <rule>]
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or self-time budget blown), 2 usage
//! or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

/// CI budget for one full workspace lint, in milliseconds.
const SELF_TIME_BUDGET_MS: u128 = 5_000;

const USAGE: &str = "usage: simlint [--root <dir>] [--json] [--sarif <path>] \
                     [--write-baseline] [--self-time] [--explain <rule>]";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut write_baseline = false;
    let mut self_time = false;
    let mut sarif_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--self-time" => self_time = true,
            "--sarif" => match args.next() {
                Some(p) => sarif_path = Some(PathBuf::from(p)),
                None => return usage("--sarif needs a file path"),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--explain" => {
                return match args.next().as_deref().and_then(simlint::explain::explain) {
                    Some(text) => {
                        print!("{text}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        print!("{}", simlint::explain::listing());
                        ExitCode::SUCCESS
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("simlint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match simlint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("simlint: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    // simlint: allow(wall-clock, "the --self-time budget measures the linter itself")
    let t0 = self_time.then(std::time::Instant::now);
    let report = match simlint::run(&root, write_baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = t0.map(|t| t.elapsed().as_millis());

    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, simlint::sarif::render(&report)) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("simlint: wrote {}", path.display());
    }
    if write_baseline {
        eprintln!("simlint: wrote {}", root.join(simlint::baseline::BASELINE_FILE).display());
    }

    let mut over_budget = false;
    if let Some(ms) = elapsed_ms {
        over_budget = ms > SELF_TIME_BUDGET_MS;
        eprintln!(
            "simlint: self-time {ms} ms (budget {SELF_TIME_BUDGET_MS} ms){}",
            if over_budget { " — OVER BUDGET" } else { "" }
        );
    }

    if report.clean() && !over_budget {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("simlint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
