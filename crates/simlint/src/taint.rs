//! Inter-procedural nondeterminism taint: makes D1–D3 *transitive*.
//!
//! The per-file pass ([`crate::rules`]) flags a `Instant::now()` written
//! directly inside a deterministic-tier crate. What it cannot see is a
//! deterministic-tier function calling a helper — typically in an exempt
//! crate, where wall-clock and hash iteration are legal — whose result
//! depends on one of those sources. This module walks the workspace call
//! graph backwards from every source and reports the *boundary edge*:
//! the call, inside deterministic non-test code, into a tainted function
//! that is not itself held to D1–D3. The full chain from that callee to
//! the source is attached to the finding.
//!
//! Sources are, per rule:
//!
//! * `wall-clock` — `Instant`, `SystemTime`, `thread::sleep`;
//! * `ambient-entropy` — `thread_rng`, `from_entropy`, `RandomState`;
//! * `unordered-iter` — iteration of a hash-typed binding.
//!
//! Sources in test code never taint (test binaries are not replayed),
//! and a `simlint: allow` at the source line kills every chain through
//! it — excusing the source excuses its callers, which keeps one escape
//! hatch per root cause instead of one per transitive caller.
//!
//! Two more D2 refinements live here because they need the graph:
//!
//! * a binding assigned from a call to a *hash-returning* function is a
//!   hash binding — iterating it is a finding with the producer in the
//!   chain;
//! * hash-typed struct *fields* taint their field-access iterations
//!   across files of the same crate (the per-file pass only sees fields
//!   declared in the file it is looking at).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::graph::Graph;
use crate::lexer::{Lexed, Tok};
use crate::report::{ChainStep, Finding};
use crate::rules::{self, Allows};
use crate::workspace::Tier;

/// The three transitive rules.
const TAINT_RULES: [&str; 3] = ["wall-clock", "ambient-entropy", "unordered-iter"];

/// Why a function is tainted for one rule.
#[derive(Clone, Debug)]
enum Cause {
    /// The body touches the source itself.
    Direct {
        /// Source description (`Instant`, `` `m.iter()` ``, …).
        what: String,
        /// Source line.
        line: u32,
    },
    /// Via a call to a tainted function at `line`.
    Via {
        /// The tainted callee.
        callee: usize,
        /// Call line.
        line: u32,
    },
}

/// Run the transitive pass. `lexed` is parallel to `g.files`; `already`
/// holds `(file, line)` pairs of per-file `unordered-iter` findings so
/// the graph-level D2 refinements do not double-report.
pub fn run(
    g: &Graph,
    lexed: &[(String, Lexed)],
    allows: &mut Allows,
    already: &BTreeSet<(String, u32)>,
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // -- direct sources per (fn, rule) ---------------------------------
    let mut cause: BTreeMap<(&'static str, usize), Cause> = BTreeMap::new();
    for (fid, f) in g.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let Some((a, b)) = f.body else { continue };
        let (rel, lx) = &lexed[f.file];
        let toks = &lx.tokens[a..b];
        // D1/D3 ident scan.
        for (i, t) in toks.iter().enumerate() {
            let Some(w) = t.tok.ident() else { continue };
            let rule = match w {
                "Instant" | "SystemTime" => Some("wall-clock"),
                "sleep"
                    if i >= 3
                        && toks[i - 1].tok == Tok::Punct(':')
                        && toks[i - 2].tok == Tok::Punct(':')
                        && toks[i - 3].tok.ident() == Some("thread") =>
                {
                    Some("wall-clock")
                }
                w if rules::ENTROPY_IDENTS.contains(&w) => Some("ambient-entropy"),
                _ => None,
            };
            let Some(rule) = rule else { continue };
            if cause.contains_key(&(rule, fid)) || allows.suppress(rel, rule, t.line) {
                continue;
            }
            cause.insert((rule, fid), Cause::Direct { what: w.to_string(), line: t.line });
        }
        // D2 sources: iteration of this file's hash bindings inside the body.
        let hash_names = rules::collect_hash_names(&lx.tokens);
        for hit in rules::iteration_findings(rel, toks, &hash_names, |name, m, line| {
            let what = match m {
                Some(m) => format!("{name}.{m}()"),
                None => format!("for … in {name}"),
            };
            Finding::new(rel, line, "unordered-iter", what)
        }) {
            if cause.contains_key(&("unordered-iter", fid))
                || allows.suppress(rel, "unordered-iter", hit.line)
            {
                continue;
            }
            cause.insert(
                ("unordered-iter", fid),
                Cause::Direct { what: hit.message.clone(), line: hit.line },
            );
        }
    }

    // -- reverse edges and backwards BFS per rule ----------------------
    let mut reverse: BTreeMap<usize, Vec<(usize, u32)>> = BTreeMap::new();
    for c in &g.calls {
        if g.fns[c.caller].is_test {
            continue;
        }
        for target in g.resolve(c) {
            if target != c.caller {
                reverse.entry(target).or_default().push((c.caller, c.line));
            }
        }
    }
    for rule in TAINT_RULES {
        let mut queue: VecDeque<usize> =
            cause.iter().filter(|((r, _), _)| *r == rule).map(|((_, fid), _)| *fid).collect();
        while let Some(t) = queue.pop_front() {
            let Some(callers) = reverse.get(&t) else { continue };
            for &(caller, line) in callers {
                if let std::collections::btree_map::Entry::Vacant(e) = cause.entry((rule, caller)) {
                    e.insert(Cause::Via { callee: t, line });
                    queue.push_back(caller);
                }
            }
        }
    }

    // -- boundary-edge findings ----------------------------------------
    let mut seen: BTreeSet<(usize, usize, &'static str)> = BTreeSet::new();
    for c in &g.calls {
        let caller = &g.fns[c.caller];
        let cf = &g.files[caller.file];
        if cf.tier != Tier::Deterministic || caller.is_test {
            continue;
        }
        for target in g.resolve(c) {
            let tf = &g.fns[target];
            // Findings land on the boundary: a callee that is itself
            // deterministic-tier live code is held to D1–D3 directly (or
            // is the boundary of its own finding), so edges into it are
            // not re-reported.
            if g.files[tf.file].tier == Tier::Deterministic && !tf.is_test {
                continue;
            }
            for rule in TAINT_RULES {
                if !cause.contains_key(&(rule, target)) {
                    continue;
                }
                if !seen.insert((c.caller, target, rule)) {
                    continue;
                }
                if allows.suppress(&cf.rel, rule, c.line) {
                    continue;
                }
                let (chain, what) = build_chain(g, lexed, &cause, rule, target);
                let noun = match rule {
                    "wall-clock" => "wall-clock time",
                    "ambient-entropy" => "ambient entropy",
                    _ => "hash-order iteration",
                };
                findings.push(
                    Finding::new(
                        &cf.rel,
                        c.line,
                        rule,
                        format!(
                            "`{}` calls `{}`, which reaches {noun} (`{what}`) — the chain leaks \
                             it into deterministic code",
                            g.fq_name(c.caller),
                            g.fq_name(target),
                        ),
                    )
                    .with_chain(chain),
                );
            }
        }
    }

    findings.extend(hash_return_findings(g, lexed, allows, already));
    findings.extend(hash_field_findings(g, lexed, allows, already));
    findings
}

/// Walk `cause` links from `start` down to the source, rendering one
/// [`ChainStep`] per hop plus a final step for the source itself.
/// Returns `(chain, source description)`.
fn build_chain(
    g: &Graph,
    lexed: &[(String, Lexed)],
    cause: &BTreeMap<(&'static str, usize), Cause>,
    rule: &'static str,
    start: usize,
) -> (Vec<ChainStep>, String) {
    let mut chain = Vec::new();
    let mut cur = start;
    loop {
        let rel = &lexed[g.fns[cur].file].0;
        match cause.get(&(rule, cur)) {
            Some(Cause::Via { callee, line }) => {
                chain.push(ChainStep { func: g.fq_name(cur), file: rel.clone(), line: *line });
                cur = *callee;
            }
            Some(Cause::Direct { what, line }) => {
                chain.push(ChainStep { func: g.fq_name(cur), file: rel.clone(), line: *line });
                chain.push(ChainStep { func: what.clone(), file: rel.clone(), line: *line });
                return (chain, what.clone());
            }
            None => return (chain, String::from("?")),
        }
        if chain.len() > 64 {
            // Cycles cannot happen (BFS visits once) but cap defensively.
            return (chain, String::from("?"));
        }
    }
}

/// D2 refinement: a binding assigned from a call to a function whose
/// declared return type is a hash container is itself a hash binding.
fn hash_return_findings(
    g: &Graph,
    lexed: &[(String, Lexed)],
    allows: &mut Allows,
    already: &BTreeSet<(String, u32)>,
) -> Vec<Finding> {
    let mut producers: BTreeMap<&str, usize> = BTreeMap::new();
    for (fid, f) in g.fns.iter().enumerate() {
        if f.returns_hash && !f.is_test {
            producers.entry(f.name.as_str()).or_insert(fid);
        }
    }
    let mut out = Vec::new();
    if producers.is_empty() {
        return out;
    }
    for (fi, meta) in g.files.iter().enumerate() {
        if meta.tier != Tier::Deterministic || meta.is_test_path {
            continue;
        }
        let (rel, lx) = &lexed[fi];
        let toks = &lx.tokens;
        // Bindings whose rhs calls a hash-returning function.
        let mut names: Vec<(String, usize)> = Vec::new(); // (binding, producer)
        for i in 0..toks.len() {
            let Some(name) = toks[i].tok.ident() else { continue };
            if toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('='))
                || toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct('='))
            {
                continue;
            }
            let mut j = i + 2;
            let mut depth = 0i32;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') if depth > 0 => depth -= 1,
                    Tok::Punct(';') | Tok::Punct('}') if depth == 0 => break,
                    t => {
                        if let (Some(w), Some(Tok::Punct('('))) =
                            (t.ident(), toks.get(j + 1).map(|t| &t.tok))
                        {
                            if let Some(&pid) = producers.get(w) {
                                names.push((name.to_string(), pid));
                            }
                        }
                    }
                }
                j += 1;
            }
        }
        if names.is_empty() {
            continue;
        }
        let name_list: Vec<String> = names.iter().map(|(n, _)| n.clone()).collect();
        for hit in rules::iteration_findings(rel, toks, &name_list, |name, m, line| {
            let how = match m {
                Some(m) => format!("`{name}.{m}()`"),
                None => format!("`for … in {name}`"),
            };
            Finding::new(rel, line, "unordered-iter", format!("{how}\u{1}{name}"))
        }) {
            if lx.in_test_code(hit.line) || already.contains(&(rel.clone(), hit.line)) {
                continue;
            }
            if allows.suppress(rel, "unordered-iter", hit.line) {
                continue;
            }
            let (how, name) =
                hit.message.split_once('\u{1}').expect("marker inserted by the closure above");
            let pid = names
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, p)| p)
                .expect("names in hits come from the binding list");
            let p = &g.fns[pid];
            out.push(
                Finding::new(
                    rel,
                    hit.line,
                    "unordered-iter",
                    format!(
                        "{how} iterates a hash container built by `{}` — its order is a \
                         function of RandomState; return/collect into an ordered type first",
                        g.fq_name(pid)
                    ),
                )
                .with_chain(vec![ChainStep {
                    func: g.fq_name(pid),
                    file: g.files[p.file].rel.clone(),
                    line: p.line,
                }]),
            );
        }
    }
    out
}

/// D2 refinement: hash-typed struct fields taint `.field` iterations in
/// *other* files of the same crate.
fn hash_field_findings(
    g: &Graph,
    lexed: &[(String, Lexed)],
    allows: &mut Allows,
    already: &BTreeSet<(String, u32)>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    if g.hash_fields.is_empty() {
        return out;
    }
    for (fi, meta) in g.files.iter().enumerate() {
        if meta.tier != Tier::Deterministic || meta.is_test_path {
            continue;
        }
        let fields: Vec<&crate::graph::HashField> = g
            .hash_fields
            .iter()
            .filter(|h| g.files[h.file].crate_key == meta.crate_key && h.file != fi)
            .collect();
        if fields.is_empty() {
            continue;
        }
        let names: Vec<String> = fields.iter().map(|h| h.name.clone()).collect();
        let (rel, lx) = &lexed[fi];
        for hit in rules::iteration_findings(rel, &lx.tokens, &names, |name, m, line| {
            let how = match m {
                Some(m) => format!("`{name}.{m}()`"),
                None => format!("`for … in {name}`"),
            };
            Finding::new(rel, line, "unordered-iter", format!("{how}\u{1}{name}"))
        }) {
            if lx.in_test_code(hit.line) || already.contains(&(rel.clone(), hit.line)) {
                continue;
            }
            if allows.suppress(rel, "unordered-iter", hit.line) {
                continue;
            }
            let (how, name) =
                hit.message.split_once('\u{1}').expect("marker inserted by the closure above");
            let field = fields
                .iter()
                .find(|h| h.name == name)
                .expect("names in hits come from the field list");
            out.push(
                Finding::new(
                    rel,
                    hit.line,
                    "unordered-iter",
                    format!(
                        "{how} iterates hash-typed field `{}.{}` (declared in {}) — order is a \
                         function of RandomState, not of the run",
                        field.owner, field.name, g.files[field.file].rel
                    ),
                )
                .with_chain(vec![ChainStep {
                    func: format!("{}.{}", field.owner, field.name),
                    file: g.files[field.file].rel.clone(),
                    line: field.line,
                }]),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
        let lexed: Vec<(String, Lexed)> =
            files.iter().map(|(rel, src)| (rel.to_string(), lex(src))).collect();
        let g = Graph::build(&lexed);
        let mut allows = Allows::default();
        for (rel, lx) in &lexed {
            allows.parse_file(rel, &lx.comments);
        }
        run(&g, &lexed, &mut allows, &BTreeSet::new())
    }

    #[test]
    fn wall_clock_leak_through_exempt_helper_is_found_with_chain() {
        let fs = analyze(&[
            (
                "crates/runtime/src/clock.rs",
                "pub fn now_ms() -> u64 { Instant::now().elapsed().as_millis() as u64 }",
            ),
            (
                "crates/sim/src/engine.rs",
                "use ocpt_runtime::clock::now_ms;\nfn step() { let t = now_ms(); }",
            ),
        ]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        let f = &fs[0];
        assert_eq!(f.rule, "wall-clock");
        assert_eq!(f.file, "crates/sim/src/engine.rs");
        assert_eq!(f.line, 2);
        assert_eq!(f.chain.len(), 2, "{:?}", f.chain);
        assert_eq!(f.chain[0].func, "runtime::now_ms");
        assert_eq!(f.chain[1].func, "Instant");
    }

    #[test]
    fn multi_hop_chain_is_reported_once_at_the_boundary() {
        let fs = analyze(&[
            (
                "crates/runtime/src/a.rs",
                "pub fn deep() { let r = rand::thread_rng(); }\npub fn mid() { deep(); }",
            ),
            ("crates/core/src/b.rs", "fn top() { ocpt_runtime::mid(); }"),
        ]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "ambient-entropy");
        let funcs: Vec<&str> = fs[0].chain.iter().map(|s| s.func.as_str()).collect();
        assert_eq!(funcs, vec!["runtime::mid", "runtime::deep", "thread_rng"]);
    }

    #[test]
    fn allow_at_the_source_kills_the_whole_chain() {
        let fs = analyze(&[
            (
                "crates/runtime/src/a.rs",
                "pub fn helper() {\n    // simlint: allow(wall-clock, \"telemetry timestamp, not replayed\")\n    let t = Instant::now();\n}",
            ),
            ("crates/core/src/b.rs", "fn top() { ocpt_runtime::helper(); }"),
        ]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn test_code_neither_sources_nor_reports() {
        let fs = analyze(&[
            (
                "crates/runtime/src/a.rs",
                "#[cfg(test)]\nmod t {\n    pub fn helper() { let t = Instant::now(); }\n}",
            ),
            (
                "crates/core/src/b.rs",
                "#[cfg(test)]\nmod t {\n    fn top() { ocpt_runtime::helper(); }\n}",
            ),
        ]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn hash_iteration_in_exempt_helper_taints_det_callers() {
        let fs = analyze(&[
            (
                "crates/cli/src/dump.rs",
                "pub fn summarize(m: &HashMap<u32, u32>) -> u32 {\n    let mut s = 0;\n    for (_, v) in m.iter() { s += v; }\n    s\n}",
            ),
            ("crates/metrics/src/agg.rs", "fn total() { ocpt_cli::summarize(&x); }"),
        ]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "unordered-iter");
        assert!(fs[0].message.contains("hash-order"), "{}", fs[0].message);
    }

    #[test]
    fn hash_returning_fn_taints_caller_bindings() {
        let src = "fn make() -> HashMap<u32, u32> { x }\n\
                   fn use_it() {\n    let m = make();\n    for (k, v) in m.iter() { }\n}";
        let fs = analyze(&[("crates/sim/src/h.rs", src)]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "unordered-iter");
        assert_eq!(fs[0].line, 4);
        assert_eq!(fs[0].chain.len(), 1);
        assert_eq!(fs[0].chain[0].func, "sim::make");
    }

    #[test]
    fn cross_file_hash_field_iteration_is_found() {
        let fs = analyze(&[
            ("crates/sim/src/state.rs", "pub struct St { pub live: HashSet<u64> }"),
            ("crates/sim/src/scan.rs", "fn f(s: &St) { for p in s.live.iter() { } }"),
        ]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "unordered-iter");
        assert_eq!(fs[0].file, "crates/sim/src/scan.rs");
        assert_eq!(fs[0].chain[0].func, "St.live");
        // Other-crate fields of the same name do not leak across crates.
        let fs = analyze(&[
            ("crates/runtime/src/state.rs", "pub struct St { pub live: HashSet<u64> }"),
            ("crates/sim/src/scan.rs", "fn f(s: &St) { for p in s.live.iter() { } }"),
        ]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn det_tier_direct_sources_are_not_rereported_as_edges() {
        // `leaf` is deterministic-tier live code: its own Instant is the
        // per-file pass's finding; the call edge into it stays quiet.
        let fs = analyze(&[(
            "crates/sim/src/x.rs",
            "fn leaf() { let t = Instant::now(); }\nfn top() { leaf(); }",
        )]);
        assert!(fs.is_empty(), "{fs:?}");
    }
}
