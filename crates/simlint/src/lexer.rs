//! A lightweight Rust lexer — just enough structure for lint rules.
//!
//! The point of lexing (rather than grepping) is that rule tokens inside
//! string literals, comments, raw strings and char literals must *not*
//! fire, while tokens inside ordinary code must. The lexer therefore
//! classifies the source into identifiers, punctuation, literals and
//! comments, tracking line numbers throughout, and a post-pass marks the
//! line ranges of `#[cfg(test)]` / `#[test]` items so tier rules can skip
//! test-only code.

/// One lexical token (comments are kept separately).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A raw identifier `r#name`. Kept distinct from [`Tok::Ident`]
    /// because `r#match`/`r#fn` are *names*, never keywords — structural
    /// passes (match-site and item parsing) must not treat them as the
    /// keyword they spell. Hazard scans treat them like the plain
    /// identifier, since `r#Instant` resolves to the same item.
    RawIdent(String),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// A numeric literal (value irrelevant to every rule).
    Num,
    /// A string, byte-string, raw-string or char literal (contents opaque).
    Str,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

impl Tok {
    /// The identifier name, raw or not. Rule scans that care about *which
    /// item* is referenced (not about keyword-ness) go through this.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(w) | Tok::RawIdent(w) => Some(w),
            _ => None,
        }
    }

    /// True when this token is the plain (non-raw) keyword `kw`.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(w) if w == kw)
    }
}

/// A token with the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A comment (line or block) with its text and starting line.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text, delimiters stripped.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexed form of one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens, in order.
    pub tokens: Vec<Token>,
    /// Comments, in order.
    pub comments: Vec<Comment>,
    /// Inclusive line ranges covered by test-only items
    /// (`#[cfg(test)] mod …`, `#[test] fn …`, `#[cfg(all(test, …))] …`).
    pub test_ranges: Vec<(u32, u32)>,
}

impl Lexed {
    /// True when `line` lies inside a test-only item.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(a, b)| a <= line && line <= b)
    }
}

/// Lex `src`. Never fails: unrecognized bytes become punctuation tokens,
/// and unterminated literals simply run to end of file — for a linter,
/// graceful degradation beats rejection.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if chars[i + 1] == '/' {
                let start_line = line;
                let mut j = i + 2;
                // Strip any further leading slashes / bang of doc comments.
                while j < n && (chars[j] == '/' || chars[j] == '!') {
                    j += 1;
                }
                let mut text = String::new();
                while j < n && chars[j] != '\n' {
                    text.push(chars[j]);
                    j += 1;
                }
                out.comments.push(Comment { text: text.trim().to_string(), line: start_line });
                i = j;
                continue;
            }
            if chars[i + 1] == '*' {
                let start_line = line;
                let mut depth = 1usize;
                let mut j = i + 2;
                let mut text = String::new();
                while j < n && depth > 0 {
                    if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                        continue;
                    }
                    if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                        continue;
                    }
                    bump_line!(chars[j]);
                    text.push(chars[j]);
                    j += 1;
                }
                out.comments.push(Comment { text: text.trim().to_string(), line: start_line });
                i = j;
                continue;
            }
        }
        // String literal.
        if c == '"' {
            let start_line = line;
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    ch => {
                        bump_line!(ch);
                        i += 1;
                    }
                }
            }
            out.tokens.push(Token { tok: Tok::Str, line: start_line });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let start_line = line;
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal: consume to the closing quote.
                i += 2;
                while i < n && chars[i] != '\'' {
                    i += 1;
                }
                i += 1;
                out.tokens.push(Token { tok: Tok::Str, line: start_line });
                continue;
            }
            let is_lifetime = i + 1 < n
                && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
                && (i + 2 >= n || chars[i + 2] != '\'');
            if is_lifetime {
                i += 1;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token { tok: Tok::Lifetime, line: start_line });
            } else {
                // 'x' char literal (or a stray quote — consume defensively).
                i += 1;
                while i < n && chars[i] != '\'' && chars[i] != '\n' {
                    i += 1;
                }
                i += 1;
                out.tokens.push(Token { tok: Tok::Str, line: start_line });
            }
            continue;
        }
        // Identifier — or the r"/b"/br"/r#"…"# literal families.
        if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut j = i;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let word: String = chars[i..j].iter().collect();
            // Byte-char literal b'x' / b'\n': without this, the `b` would
            // leak as a stray identifier and the quote would be
            // re-classified from scratch (historically as a lifetime for
            // b'a-like shapes).
            if word == "b" && j < n && chars[j] == '\'' {
                i = j + 1;
                if i < n && chars[i] == '\\' {
                    i += 1; // skip the escaped char, then scan to the quote
                }
                i += 1;
                while i < n && chars[i] != '\'' && chars[i] != '\n' {
                    i += 1;
                }
                i += 1;
                out.tokens.push(Token { tok: Tok::Str, line: start_line });
                continue;
            }
            // Raw / byte string prefixes.
            if (word == "r" || word == "b" || word == "br" || word == "rb")
                && j < n
                && (chars[j] == '"' || chars[j] == '#')
            {
                if word == "b" && chars[j] == '"' {
                    // Byte string: same rules as a normal string.
                    i = j + 1;
                    while i < n {
                        match chars[i] {
                            '\\' => i += 2,
                            '"' => {
                                i += 1;
                                break;
                            }
                            ch => {
                                bump_line!(ch);
                                i += 1;
                            }
                        }
                    }
                    out.tokens.push(Token { tok: Tok::Str, line: start_line });
                    continue;
                }
                // Count hashes for the raw forms.
                let mut hashes = 0usize;
                let mut k = j;
                while k < n && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && chars[k] == '"' {
                    // Raw (byte) string: scan for `"` + `hashes` hashes.
                    k += 1;
                    'raw: while k < n {
                        if chars[k] == '"' {
                            let mut h = 0usize;
                            while k + 1 + h < n && h < hashes && chars[k + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break 'raw;
                            }
                        }
                        bump_line!(chars[k]);
                        k += 1;
                    }
                    out.tokens.push(Token { tok: Tok::Str, line: start_line });
                    i = k;
                    continue;
                }
                if word == "r"
                    && hashes == 1
                    && k < n
                    && (chars[k].is_alphabetic() || chars[k] == '_')
                {
                    // Raw identifier r#ident: a distinct token kind, so
                    // `r#match` is never mistaken for the `match` keyword
                    // by the structural passes.
                    let mut m = k;
                    while m < n && (chars[m].is_alphanumeric() || chars[m] == '_') {
                        m += 1;
                    }
                    let raw: String = chars[k..m].iter().collect();
                    out.tokens.push(Token { tok: Tok::RawIdent(raw), line: start_line });
                    i = m;
                    continue;
                }
            }
            out.tokens.push(Token { tok: Tok::Ident(word), line: start_line });
            i = j;
            continue;
        }
        // Numeric literal (digits, hex/bin/oct, underscores, float dots,
        // exponent signs — lumped into one token).
        if c.is_ascii_digit() {
            let start_line = line;
            let mut j = i;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            // `1.5` — but not `1..n` (range) and not `1.method()`.
            if j + 1 < n && chars[j] == '.' && chars[j + 1].is_ascii_digit() {
                j += 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
            }
            // `1e-9` / `1.5E+3`.
            if j < n
                && (chars[j] == '+' || chars[j] == '-')
                && j >= 1
                && (chars[j - 1] == 'e' || chars[j - 1] == 'E')
                && j + 1 < n
                && chars[j + 1].is_ascii_digit()
            {
                j += 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
            }
            out.tokens.push(Token { tok: Tok::Num, line: start_line });
            i = j;
            continue;
        }
        // Anything else: one punctuation token.
        out.tokens.push(Token { tok: Tok::Punct(c), line });
        i += 1;
    }

    out.test_ranges = test_ranges(&out.tokens);
    out
}

/// Identify line ranges of test-only items: an outer attribute whose token
/// stream contains the identifier `test` (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, …))]`, `#[cfg_attr(test, …)]`) marks the item that
/// follows, through the matching close brace (or terminating `;`).
fn test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    let n = tokens.len();
    while i < n {
        if tokens[i].tok != Tok::Punct('#') {
            i += 1;
            continue;
        }
        // Inner attribute `#![…]` — applies to the enclosing module, skip.
        if i + 1 < n && tokens[i + 1].tok == Tok::Punct('!') {
            i += 1;
            continue;
        }
        if i + 1 >= n || tokens[i + 1].tok != Tok::Punct('[') {
            i += 1;
            continue;
        }
        let attr_start_line = tokens[i].line;
        // Scan the attribute body for `test`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut is_test = false;
        while j < n && depth > 0 {
            match &tokens[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => depth -= 1,
                Tok::Ident(w) if w == "test" => is_test = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test {
            i = j;
            continue;
        }
        // Skip any further outer attributes stacked on the same item.
        while j + 1 < n && tokens[j].tok == Tok::Punct('#') && tokens[j + 1].tok == Tok::Punct('[')
        {
            let mut d = 0usize;
            loop {
                match &tokens[j].tok {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
                if j >= n {
                    break;
                }
            }
        }
        // Find the item extent: `;` before any `{` ends it; otherwise the
        // matching `}` of the first `{`.
        let mut brace = 0usize;
        let mut end_line = attr_start_line;
        while j < n {
            match tokens[j].tok {
                Tok::Punct(';') if brace == 0 => {
                    end_line = tokens[j].line;
                    j += 1;
                    break;
                }
                Tok::Punct('{') => brace += 1,
                Tok::Punct('}') => {
                    brace -= 1;
                    if brace == 0 {
                        end_line = tokens[j].line;
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            end_line = tokens[j].line;
            j += 1;
        }
        ranges.push((attr_start_line, end_line));
        i = j;
    }
    // Merge overlapping ranges (nested `#[test]` fns inside a
    // `#[cfg(test)] mod` collapse into the mod's range).
    ranges.sort_unstable();
    let mut merged: Vec<(u32, u32)> = Vec::new();
    for (a, b) in ranges {
        match merged.last_mut() {
            Some((_, pb)) if a <= *pb + 1 => *pb = (*pb).max(b),
            _ => merged.push((a, b)),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(w) => Some(w),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            let a = "Instant::now() inside a string";
            // Instant in a line comment
            /* Instant in a /* nested */ block */
            let b = r#"Instant in a raw string"#;
            let c = b"Instant in bytes";
            let real = 1;
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|w| w == "Instant"), "{ids:?}");
        assert!(ids.iter().any(|w| w == "real"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }";
        let lx = lex(src);
        let lifetimes = lx.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let strs = lx.tokens.iter().filter(|t| t.tok == Tok::Str).count();
        assert_eq!(lifetimes, 3);
        assert_eq!(strs, 1);
    }

    #[test]
    fn comment_text_is_captured_with_lines() {
        let src = "let x = 1;\n// simlint: allow(unordered-iter, \"why\")\nlet y = 2;";
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 1);
        assert_eq!(lx.comments[0].line, 2);
        assert!(lx.comments[0].text.contains("allow(unordered-iter"));
    }

    #[test]
    fn cfg_test_mod_range_is_detected() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n    }\n}\nfn live2() {}\n";
        let lx = lex(src);
        assert_eq!(lx.test_ranges, vec![(2, 7)]);
        assert!(!lx.in_test_code(1));
        assert!(lx.in_test_code(5));
        assert!(!lx.in_test_code(8));
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let src = "let a = r##\"end\"# not yet\"##; let tail = 9;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "tail"]);
    }

    #[test]
    fn raw_identifiers_are_not_keywords() {
        let src = "fn r#match(r#fn: u32) { let r#in = r#fn; }";
        let lx = lex(src);
        assert!(
            !lx.tokens.iter().any(|t| t.tok.is_kw("match") || t.tok.is_kw("in")),
            "raw identifiers must not surface as keywords: {:?}",
            lx.tokens
        );
        let raws: Vec<&str> = lx
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::RawIdent(w) => Some(w.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(raws, vec!["match", "fn", "in", "fn"]);
        // Hazard scans still see the underlying name through ident().
        assert_eq!(Tok::RawIdent("Instant".into()).ident(), Some("Instant"));
    }

    #[test]
    fn byte_char_literals_do_not_leak_a_stray_b() {
        let src = "let a = b'x'; let b2 = b'\\n'; let c = b'\\''; let tail = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b2", "let", "c", "let", "tail"]);
        let strs = lex(src).tokens.iter().filter(|t| t.tok == Tok::Str).count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn lifetimes_vs_chars_in_nested_turbofish() {
        // Every quote here is a lifetime except the final char literal.
        let src = "let v = Vec::<&'a str>::with::<Map<&'b str, u8>>(); let c = '<';";
        let lx = lex(src);
        let lifetimes = lx.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let strs = lx.tokens.iter().filter(|t| t.tok == Tok::Str).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(strs, 1);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "for i in 0..n { let x = 1.5e-3; let y = 2.max(3); }";
        let lx = lex(src);
        let nums = lx.tokens.iter().filter(|t| t.tok == Tok::Num).count();
        // 0, 1.5e-3, 2, 3 — and `n`/`max` survive as idents.
        assert_eq!(nums, 4);
        let ids = idents(src);
        assert!(ids.iter().any(|w| w == "max"));
        assert!(ids.iter().any(|w| w == "n"));
    }
}
