//! `--explain <rule>`: the rationale, scope and a minimal good/bad pair
//! for every rule, so a CI failure is self-serve debuggable without
//! opening DESIGN.md. Examples mirror the fixture corpus in
//! `tests/fixtures.rs` — each bad snippet is one the test suite pins as
//! failing, each good snippet as passing.

/// One rule's documentation.
struct RuleDoc {
    /// Canonical rule id (what findings print).
    id: &'static str,
    /// Short alias (`D1` … `D7`).
    alias: &'static str,
    /// Which code the rule applies to.
    scope: &'static str,
    /// Why the rule exists.
    rationale: &'static str,
    /// A failing snippet.
    bad: &'static str,
    /// The corrected snippet.
    good: &'static str,
}

const DOCS: &[RuleDoc] = &[
    RuleDoc {
        id: "wall-clock",
        alias: "D1",
        scope: "deterministic-tier crates, non-test code; transitive through calls",
        rationale: "Simulation results must replay bit-identically from a seed. `Instant`, \
                    `SystemTime` and `thread::sleep` read the host clock, so two runs of the \
                    same seed diverge. Sim code must take time from the simulated clock only. \
                    The check is transitive: calling a helper (in any crate) that reaches a \
                    wall-clock source is reported at the call site with the full chain.",
        bad: "let t0 = Instant::now();          // host time leaks into sim state\n\
              run_round(&mut cluster);\n\
              metrics.round_ns = t0.elapsed().as_nanos();",
        good: "let t0 = cluster.now();           // simulated clock\n\
               run_round(&mut cluster);\n\
               metrics.round_ticks = cluster.now() - t0;",
    },
    RuleDoc {
        id: "unordered-iter",
        alias: "D2",
        scope: "deterministic-tier crates, non-test code; transitive through calls, returns \
                and struct fields",
        rationale: "HashMap/HashSet iteration order depends on RandomState and allocation \
                    history, so iterating one in protocol or metrics code produces run-to-run \
                    drift. Deterministic crates use BTreeMap/BTreeSet (or sort before \
                    iterating). Hash bindings are tracked through let-types, turbofish \
                    collects, function returns and struct fields across files.",
        bad: "let peers: HashMap<ProcessId, Peer> = connect_all();\n\
              for (id, p) in &peers { send(id, p); } // order varies per run",
        good: "let peers: BTreeMap<ProcessId, Peer> = connect_all();\n\
               for (id, p) in &peers { send(id, p); } // sorted, stable",
    },
    RuleDoc {
        id: "ambient-entropy",
        alias: "D3",
        scope: "deterministic-tier crates, non-test code; transitive through calls",
        rationale: "`thread_rng`, `from_entropy` and `RandomState` pull OS entropy, which no \
                    seed controls. All randomness in sim code must come from the run's seeded \
                    RNG so a trace can be replayed from its config. As with D1, helper chains \
                    that reach an entropy source are reported at the boundary call site.",
        bad: "let jitter = thread_rng().gen_range(0..10);",
        good: "let jitter = self.rng.gen_range(0..10); // seeded per-run RNG",
    },
    RuleDoc {
        id: "forbid-unsafe",
        alias: "D4",
        scope: "every crate except explicitly exempt ones",
        rationale: "Crate roots must carry `#![forbid(unsafe_code)]` so determinism arguments \
                    only have to reason about safe Rust. The paired `anchor` rule keeps the \
                    OCPT section markers in code and DESIGN.md in sync, both directions.",
        bad: "// lib.rs with no forbid attribute",
        good: "#![forbid(unsafe_code)]\n//! Crate docs …",
    },
    RuleDoc {
        id: "unwrap-budget",
        alias: "D5",
        scope: "whole workspace, via the committed `simlint.baseline` (v2)",
        rationale: "`.unwrap()` panics carry no invariant message. Each crate has a committed \
                    budget that can only ratchet down; new unwraps must become \
                    `.expect(\"<invariant>\")`. The v2 baseline also carries `accept` lines \
                    for reviewed workspace-graph findings; stale entries of either kind are \
                    themselves findings.",
        bad: "let ck = store.latest(pid).unwrap();",
        good: "let ck = store.latest(pid).expect(\"recovery always follows a checkpoint\");",
    },
    RuleDoc {
        id: "lock-order",
        alias: "D6",
        scope: "every tier, non-test code (concurrency hazards ignore the sim boundary)",
        rationale: "Nested lock acquisitions form a workspace-wide graph; a cycle means two \
                    threads can deadlock by taking the same locks in different orders. \
                    Re-acquiring a held lock deadlocks immediately, and holding a guard \
                    across a channel `.send()` or `.join()` extends the critical section \
                    across a synchronous handoff. Drop guards in a scoped block first.",
        bad: "let g = self.observers.lock();\n\
              self.status_tx.send(Snapshot::from(&*g)); // guard held across send",
        good: "let snap = { let g = self.observers.lock(); Snapshot::from(&*g) };\n\
               self.status_tx.send(snap); // guard dropped before the handoff",
    },
    RuleDoc {
        id: "protocol-exhaustiveness",
        alias: "D7",
        scope: "workspace enums referenced by both an encoder and a decoder in their crate \
                (`*Error` enums exempt), non-test code",
        rationale: "rustc's match exhaustiveness stops at the function boundary: it cannot \
                    see that a variant is serialized but never reconstructed, and a `_` arm \
                    silences it entirely — exactly how a new control-message kind slips \
                    through an old handler. Every protocol variant must round-trip through \
                    the codecs and every protocol match must list variants explicitly (or \
                    justify a catch-all with an allow). Wire-tag consts must be used by both \
                    codec sides.",
        bad: "match cm.kind {\n    CtrlKind::CkBgn => begin(),\n    _ => {} // swallows CkReq, \
              CkEnd, CkGrpDone and anything added later\n}",
        good: "match cm.kind {\n    CtrlKind::CkBgn => begin(),\n    CtrlKind::CkReq => \
               request(),\n    CtrlKind::CkEnd => finish(),\n    CtrlKind::CkGrpDone => \
               group_done(),\n}",
    },
];

/// All canonical rule ids, in D-number order.
pub fn rule_ids() -> Vec<&'static str> {
    DOCS.iter().map(|d| d.id).collect()
}

/// Render the documentation for `rule` (canonical id or `D1`…`D7` alias,
/// case-insensitive for the alias). `None` for unknown rules.
pub fn explain(rule: &str) -> Option<String> {
    let doc = DOCS.iter().find(|d| d.id == rule || d.alias.eq_ignore_ascii_case(rule))?;
    let mut s = String::new();
    s.push_str(&format!("{} ({})\n", doc.id, doc.alias));
    s.push_str(&"=".repeat(doc.id.len() + doc.alias.len() + 3));
    s.push('\n');
    s.push_str(&format!("\napplies to: {}\n", doc.scope));
    s.push_str(&format!("\n{}\n", doc.rationale));
    s.push_str("\nfails:\n");
    for line in doc.bad.lines() {
        s.push_str(&format!("    {line}\n"));
    }
    s.push_str("\npasses:\n");
    for line in doc.good.lines() {
        s.push_str(&format!("    {line}\n"));
    }
    s.push_str(
        "\nsuppression: `// simlint: allow(<rule>, \"<why>\")` on (or directly above) the \
         line; unused or unjustified allows are findings themselves.\n",
    );
    Some(s)
}

/// The listing printed for `--explain` with no/unknown rule.
pub fn listing() -> String {
    let mut s = String::from("rules:\n");
    for d in DOCS {
        s.push_str(&format!("  {:28} {}  {}\n", d.id, d.alias, first_sentence(d.rationale)));
    }
    s.push_str("\nuse `--explain <rule>` (id or D-number) for details.\n");
    s
}

fn first_sentence(text: &str) -> &str {
    match text.find(". ") {
        Some(i) => &text[..i + 1],
        None => text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_docs_with_both_examples() {
        for id in rule_ids() {
            let text = explain(id).expect("documented rule");
            assert!(text.contains("fails:"), "{id}");
            assert!(text.contains("passes:"), "{id}");
            assert!(text.contains("applies to:"), "{id}");
        }
    }

    #[test]
    fn aliases_resolve_case_insensitively() {
        assert_eq!(explain("D6"), explain("lock-order"));
        assert_eq!(explain("d7"), explain("protocol-exhaustiveness"));
    }

    #[test]
    fn unknown_rule_yields_listing_path() {
        assert!(explain("no-such-rule").is_none());
        let l = listing();
        assert!(l.contains("lock-order"));
        assert!(l.contains("D7"));
    }

    #[test]
    fn d_numbers_cover_one_through_seven() {
        let aliases: Vec<&str> = DOCS.iter().map(|d| d.alias).collect();
        assert_eq!(aliases, vec!["D1", "D2", "D3", "D4", "D5", "D6", "D7"]);
    }
}
