//! simlint — zero-dependency determinism & protocol-safety analyzer for
//! the OCPT workspace.
//!
//! The simulation's headline claim is bit-identical replay from (config,
//! seed). That property is global: one `Instant::now()` or one
//! `HashMap` iteration anywhere inside the simulation boundary silently
//! breaks it. simlint tokenizes every `.rs` file with its own small
//! lexer (so rule tokens inside strings, comments and test modules never
//! fire) and enforces:
//!
//! * **D1 `wall-clock`** — no `Instant`/`SystemTime`/`thread::sleep` in
//!   deterministic crates;
//! * **D2 `unordered-iter`** — no iteration of `HashMap`/`HashSet`
//!   bindings (point access by key is fine);
//! * **D3 `ambient-entropy`** — no `thread_rng`/`from_entropy`/
//!   `RandomState`;
//! * **D4 `forbid-unsafe` / `anchor`** — every crate root keeps
//!   `#![forbid(unsafe_code)]`, and the protocol anchors cited in
//!   DESIGN.md §7 stay in sync with the source;
//! * **D5 `unwrap-budget`** — the per-crate `.unwrap()` count may only
//!   ratchet down (committed in `simlint.baseline`).
//!
//! Escape hatch: `simlint: allow(<rule>, "<why>")` in a line comment
//! excuses that line and the next; empty justifications and unused
//! allows are findings themselves.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

pub use report::{Finding, Report};
pub use workspace::{find_root, Tier};

/// Lint the workspace at `root`. When `write_baseline` is set, the
/// unwrap budget is rewritten from live counts instead of being checked.
pub fn run(root: &Path, write_baseline: bool) -> io::Result<Report> {
    let files = workspace::collect_rs_files(root)?;
    let mut report = Report { files_scanned: files.len(), ..Report::default() };

    // Per-file pass: D1–D3 + allow hygiene, plus the raw material for the
    // cross-file rules.
    let mut unwraps: BTreeMap<String, usize> = BTreeMap::new();
    let mut source_anchors: Vec<(String, String, u32)> = Vec::new(); // (label, file, line)
    let mut crate_roots: BTreeMap<String, (String, bool)> = BTreeMap::new(); // key -> (file, forbid)
    for (rel, path) in &files {
        let src = fs::read_to_string(path)?;
        let lexed = lexer::lex(&src);
        let key = workspace::crate_key(rel);
        let tier = workspace::tier_of(&key);
        let checked = rules::check_source(rel, tier, &lexed, workspace::path_is_test(rel));
        report.findings.extend(checked.findings);
        *unwraps.entry(key.clone()).or_insert(0) += checked.unwraps;
        for (label, line) in checked.anchors {
            source_anchors.push((label, rel.clone(), line));
        }
        // D4a: the crate root is src/lib.rs, falling back to src/main.rs
        // for binary-only crates.
        let is_lib = rel == "src/lib.rs" || rel == &format!("crates/{key}/src/lib.rs");
        let is_main = rel == "src/main.rs" || rel == &format!("crates/{key}/src/main.rs");
        if is_lib || (is_main && !crate_roots.contains_key(&key)) {
            crate_roots.insert(key, (rel.clone(), checked.has_forbid_unsafe));
        }
    }

    // D4a: every crate root must carry the forbid.
    for (key, (rel, has)) in &crate_roots {
        if !has {
            report.findings.push(Finding {
                file: rel.clone(),
                line: 1,
                rule: "forbid-unsafe",
                message: format!("crate `{key}` root is missing `#![forbid(unsafe_code)]`"),
            });
        }
    }

    // D4b: anchors cited in DESIGN.md and anchors present in source must
    // agree, in both directions.
    let design_path = root.join("DESIGN.md");
    let design = fs::read_to_string(&design_path).unwrap_or_default();
    let mut design_labels: Vec<(String, u32)> = Vec::new();
    for (idx, line) in design.lines().enumerate() {
        for label in rules::extract_anchor_labels(line) {
            design_labels.push((label, idx as u32 + 1));
        }
    }
    for (label, line) in &design_labels {
        if !source_anchors.iter().any(|(l, _, _)| l == label) {
            report.findings.push(Finding {
                file: "DESIGN.md".to_string(),
                line: *line,
                rule: "anchor",
                message: format!(
                    "DESIGN.md cites protocol anchor {label} but no source comment carries it"
                ),
            });
        }
    }
    for (label, file, line) in &source_anchors {
        if !design_labels.iter().any(|(l, _)| l == label) {
            report.findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: "anchor",
                message: format!(
                    "source anchor {label} is not cited in DESIGN.md \u{a7}7 — add it to the \
                     anchor table or drop the comment"
                ),
            });
        }
    }

    // D5: the ratcheting unwrap budget.
    report.unwraps = unwraps;
    let baseline_path = root.join(baseline::BASELINE_FILE);
    if write_baseline {
        fs::write(&baseline_path, baseline::format(&report.unwraps))?;
    } else {
        let text = fs::read_to_string(&baseline_path).ok();
        report.findings.extend(baseline::compare(text.as_deref(), &report.unwraps));
    }

    report.sort();
    Ok(report)
}
