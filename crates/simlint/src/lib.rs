//! simlint — zero-dependency determinism & protocol-safety analyzer for
//! the OCPT workspace.
//!
//! The simulation's headline claim is bit-identical replay from (config,
//! seed). That property is global: one `Instant::now()` or one
//! `HashMap` iteration anywhere inside the simulation boundary silently
//! breaks it. simlint tokenizes every `.rs` file with its own small
//! lexer (so rule tokens inside strings, comments and test modules never
//! fire), builds a workspace-wide symbol graph (functions, calls, enums,
//! matches, consts) on top of the token streams, and enforces:
//!
//! * **D1 `wall-clock`** — no `Instant`/`SystemTime`/`thread::sleep` in
//!   deterministic crates, *transitively*: a det-tier function calling a
//!   helper chain (in any crate) that reaches a wall-clock source is
//!   reported at the boundary call with the full chain;
//! * **D2 `unordered-iter`** — no iteration of `HashMap`/`HashSet`
//!   bindings (point access by key is fine), including bindings that
//!   arrive via function returns and struct fields across files;
//! * **D3 `ambient-entropy`** — no `thread_rng`/`from_entropy`/
//!   `RandomState`, transitive like D1;
//! * **D4 `forbid-unsafe` / `anchor`** — every crate root keeps
//!   `#![forbid(unsafe_code)]`, and the protocol anchors cited in
//!   DESIGN.md §7 stay in sync with the source;
//! * **D5 `unwrap-budget`** — the per-crate `.unwrap()` count may only
//!   ratchet down (committed in `simlint.baseline`, v2 format);
//! * **D6 `lock-order`** — lock acquisitions form a workspace graph:
//!   cycles, double-acquires and guards held across `.send()`/`.join()`
//!   are findings, on every tier;
//! * **D7 `protocol-exhaustiveness`** — protocol enums must round-trip
//!   through their codecs and be matched exhaustively (no silent `_`
//!   arms) everywhere.
//!
//! Escape hatch: `simlint: allow(<rule>, "<why>")` in a line comment
//! excuses that line and the next; empty justifications and unused
//! allows are findings themselves. Workspace-graph findings (chains,
//! D6, D7) can alternatively be accepted in the baseline's `accept`
//! lines; stale accepts are findings, keeping the ratchet honest.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod explain;
pub mod graph;
pub mod lexer;
pub mod locks;
pub mod proto;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod taint;
pub mod workspace;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

pub use report::{Finding, Report};
pub use workspace::{find_root, Tier};

/// Rule id for baseline `accept` lines that no longer match a finding.
const STALE_ACCEPT_RULE: &str = "stale-accept";

/// A finding that may be suppressed by a baseline `accept` line: it
/// carries a chain (transitive D1–D3) or belongs to a workspace-graph
/// rule. Purely local findings must be fixed or `allow`ed in source.
fn acceptable(f: &Finding) -> bool {
    !f.chain.is_empty() || f.rule == locks::RULE || f.rule == proto::RULE
}

/// The fingerprint payload for an acceptable finding: the chain's
/// function names (stable across line drift) or, for chain-less D6/D7
/// findings, the message text.
fn accept_extra(f: &Finding) -> String {
    if f.chain.is_empty() {
        f.message.clone()
    } else {
        f.chain.iter().map(|s| s.func.as_str()).collect::<Vec<_>>().join(">")
    }
}

/// Lint a fully in-memory workspace: `files` are `(root-relative path,
/// source)` pairs, `design` is the DESIGN.md text, `baseline_text` the
/// committed baseline (None ⇒ missing-file finding). Pure — all I/O
/// lives in [`run`].
pub fn analyze(files: &[(String, String)], design: &str, baseline_text: Option<&str>) -> Report {
    analyze_impl(files, design, baseline_text, true)
}

fn analyze_impl(
    files: &[(String, String)],
    design: &str,
    baseline_text: Option<&str>,
    check_budget: bool,
) -> Report {
    let lexed: Vec<(String, lexer::Lexed)> =
        files.iter().map(|(rel, src)| (rel.clone(), lexer::lex(src))).collect();
    let g = graph::Graph::build(&lexed);
    let mut allows = rules::Allows::default();
    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    let mut findings: Vec<Finding> = Vec::new();

    // -- per-file pass: D1–D3 local, allow hygiene, raw material -------
    let mut unwraps: BTreeMap<String, usize> = BTreeMap::new();
    let mut source_anchors: Vec<(String, String, u32)> = Vec::new();
    let mut crate_roots: BTreeMap<String, (String, bool)> = BTreeMap::new();
    for (rel, lx) in &lexed {
        let key = workspace::crate_key(rel);
        let tier = workspace::tier_of(&key);
        let checked = rules::check_file(rel, tier, lx, workspace::path_is_test(rel), &mut allows);
        findings.extend(checked.findings);
        *unwraps.entry(key.clone()).or_insert(0) += checked.unwraps;
        for (label, line) in checked.anchors {
            source_anchors.push((label, rel.clone(), line));
        }
        let is_lib = rel == "src/lib.rs" || rel == &format!("crates/{key}/src/lib.rs");
        let is_main = rel == "src/main.rs" || rel == &format!("crates/{key}/src/main.rs");
        if is_lib || (is_main && !crate_roots.contains_key(&key)) {
            crate_roots.insert(key, (rel.clone(), checked.has_forbid_unsafe));
        }
    }

    // -- workspace-graph rules -----------------------------------------
    let already: BTreeSet<(String, u32)> = findings
        .iter()
        .filter(|f| f.rule == "unordered-iter")
        .map(|f| (f.file.clone(), f.line))
        .collect();
    findings.extend(taint::run(&g, &lexed, &mut allows, &already));
    let (lock_findings, locks_tracked) = locks::run(&g, &lexed, &mut allows);
    findings.extend(lock_findings);
    let (proto_findings, enums_checked) = proto::run(&g, &mut allows);
    findings.extend(proto_findings);
    report.stats = report::Stats {
        functions: g.fns.len(),
        call_edges: g.calls.iter().filter(|c| !g.resolve(c).is_empty()).count(),
        enums_checked,
        locks_tracked,
    };

    // -- D4a: every crate root must carry the forbid -------------------
    for (key, (rel, has)) in &crate_roots {
        if !has {
            findings.push(Finding::new(
                rel,
                1,
                "forbid-unsafe",
                format!("crate `{key}` root is missing `#![forbid(unsafe_code)]`"),
            ));
        }
    }

    // -- D4b: DESIGN.md anchors ↔ source anchors, both directions ------
    let mut design_labels: Vec<(String, u32)> = Vec::new();
    for (idx, line) in design.lines().enumerate() {
        for label in rules::extract_anchor_labels(line) {
            design_labels.push((label, idx as u32 + 1));
        }
    }
    for (label, line) in &design_labels {
        if !source_anchors.iter().any(|(l, _, _)| l == label) {
            findings.push(Finding::new(
                "DESIGN.md",
                *line,
                "anchor",
                format!("DESIGN.md cites protocol anchor {label} but no source comment carries it"),
            ));
        }
    }
    for (label, file, line) in &source_anchors {
        if !design_labels.iter().any(|(l, _)| l == label) {
            findings.push(Finding::new(
                file,
                *line,
                "anchor",
                format!(
                    "source anchor {label} is not cited in DESIGN.md \u{a7}7 — add it to the \
                     anchor table or drop the comment"
                ),
            ));
        }
    }

    // -- allow hygiene: only now is "unused" decidable -----------------
    findings.extend(allows.unused_findings());

    // -- baseline accepts: suppress reviewed graph findings ------------
    let base = baseline_text.map(baseline::parse);
    if let Some(base) = &base {
        let mut used = vec![false; base.accepts.len()];
        findings.retain(|f| {
            if !acceptable(f) {
                return true;
            }
            let fp = baseline::fingerprint(f.rule, &f.file, &accept_extra(f));
            match base
                .accepts
                .iter()
                .position(|a| a.rule == f.rule && a.file == f.file && a.fp == fp)
            {
                Some(i) => {
                    used[i] = true;
                    report.applied_accepts.push((f.rule.to_string(), f.file.clone(), fp));
                    false
                }
                None => true,
            }
        });
        for (a, used) in base.accepts.iter().zip(&used) {
            if !used {
                findings.push(Finding::new(
                    baseline::BASELINE_FILE,
                    a.line,
                    STALE_ACCEPT_RULE,
                    format!(
                        "accept entry for `{}` in {} no longer matches any finding — \
                         regenerate with `--write-baseline`",
                        a.rule, a.file
                    ),
                ));
            }
        }
    }

    // -- D5: the ratcheting unwrap budget ------------------------------
    report.unwraps = unwraps;
    if check_budget {
        findings.extend(baseline::compare(baseline_text, &report.unwraps));
    }

    report.findings = findings;
    report.sort();
    report
}

/// Render the v2 baseline a `--write-baseline` run should commit: live
/// unwrap counts plus accept lines for every accept still applied and
/// every acceptable finding still live.
pub fn render_baseline(report: &Report) -> String {
    let mut accepts = report.applied_accepts.clone();
    for f in &report.findings {
        if acceptable(f) {
            accepts.push((
                f.rule.to_string(),
                f.file.clone(),
                baseline::fingerprint(f.rule, &f.file, &accept_extra(f)),
            ));
        }
    }
    baseline::format(&report.unwraps, &accepts)
}

/// Lint the workspace at `root`. When `write_baseline` is set, the
/// baseline (unwrap budget + accepts) is rewritten from the live tree
/// instead of being checked.
pub fn run(root: &Path, write_baseline: bool) -> io::Result<Report> {
    let files = workspace::collect_rs_files(root)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for (rel, path) in &files {
        sources.push((rel.clone(), fs::read_to_string(path)?));
    }
    let design = fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    let baseline_path = root.join(baseline::BASELINE_FILE);
    let baseline_text = fs::read_to_string(&baseline_path).ok();

    if write_baseline {
        let report = analyze_impl(&sources, &design, baseline_text.as_deref(), false);
        fs::write(&baseline_path, render_baseline(&report))?;
        // Re-check against what was just written so the exit status and
        // displayed findings reflect the committed state.
        Ok(analyze_impl(&sources, &design, Some(&fs::read_to_string(&baseline_path)?), true))
    } else {
        Ok(analyze_impl(&sources, &design, baseline_text.as_deref(), true))
    }
}
