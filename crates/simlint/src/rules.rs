//! The rule set.
//!
//! | id                       | tier          | what it catches                                   |
//! |--------------------------|---------------|---------------------------------------------------|
//! | `wall-clock`             | deterministic | `Instant`, `SystemTime`, `thread::sleep` — direct or through a call chain |
//! | `unordered-iter`         | deterministic | iterating a `HashMap`/`HashSet` binding, field or hash-returning call |
//! | `ambient-entropy`        | deterministic | `thread_rng`, `from_entropy`, `RandomState` — direct or through a call chain |
//! | `forbid-unsafe`          | all           | crate root missing `#![forbid(unsafe_code)]`      |
//! | `anchor`                 | all           | `[OCPT` §x.y`]` anchors out of sync with DESIGN.md|
//! | `unwrap-budget`          | all           | per-crate `.unwrap()` count above the baseline    |
//! | `lock-order`             | all           | lock-acquisition cycles, double-acquire, guard held across send/join |
//! | `protocol-exhaustiveness`| all           | protocol enum variants without handler or codec arms |
//! | `allow-*`                | all           | malformed / unjustified / unused escape hatches   |
//!
//! Escape hatch: a line (or the line directly below) can be excused with
//! a comment of the form `simlint: allow(<rule>, "<why>")` — the `<why>`
//! is mandatory and unused allows are themselves findings, so the hatch
//! cannot rot silently.
//!
//! This module owns the *per-file* rules; the workspace-graph rules live
//! in [`crate::taint`] (transitive D1–D3), [`crate::locks`] (D6) and
//! [`crate::proto`] (D7), all sharing the [`Allows`] table so one escape
//! hatch grammar serves every rule.

use std::collections::BTreeMap;

use crate::graph::type_is_hash;
use crate::lexer::{Comment, Lexed, Tok, Token};
use crate::report::Finding;
use crate::workspace::Tier;

/// Methods that observe iteration order when called on a hash container.
pub(crate) const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Identifiers that pull entropy from the environment.
pub(crate) const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "RandomState"];

/// Result of linting one file in isolation (cross-file rules — anchors,
/// unwrap budget, forbid-unsafe — are assembled by the caller from the
/// `unwraps` / `anchors` / `has_forbid_unsafe` fields).
#[derive(Clone, Debug, Default)]
pub struct SourceCheck {
    /// D1–D3 and allow-hygiene findings for this file.
    pub findings: Vec<Finding>,
    /// Number of `.unwrap(` call sites (test code included — the budget
    /// covers everything).
    pub unwraps: usize,
    /// Protocol anchors found in comments, as `(label, line)` where the
    /// label is e.g. `3.4.1`.
    pub anchors: Vec<(String, u32)>,
    /// True when the token stream contains `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
}

/// One parsed escape-hatch comment.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule it excuses.
    pub rule: String,
    /// The mandatory justification (may be empty — that is itself a
    /// finding, emitted at parse time).
    pub why: String,
    /// 1-based line of the comment; it covers this line and the next.
    pub line: u32,
    /// Set when some finding was actually suppressed by it.
    pub used: bool,
}

/// The workspace-wide escape-hatch table. Per-file and workspace-graph
/// passes all suppress through the same table, so `allow-unused` can only
/// be decided once *every* rule has run.
#[derive(Clone, Debug, Default)]
pub struct Allows {
    by_file: BTreeMap<String, Vec<Allow>>,
}

impl Allows {
    /// Parse the escape hatches of one file into the table, returning
    /// hygiene findings (malformed shape, empty justification).
    pub fn parse_file(&mut self, rel_path: &str, comments: &[Comment]) -> Vec<Finding> {
        let (allows, findings) = parse_allows(rel_path, comments);
        self.by_file.entry(rel_path.to_string()).or_default().extend(allows);
        findings
    }

    /// True when an allow for `rule` covers `line` of `file`; marks the
    /// matching allow used.
    pub fn suppress(&mut self, file: &str, rule: &str, line: u32) -> bool {
        let Some(allows) = self.by_file.get_mut(file) else { return false };
        match allows.iter_mut().find(|a| a.rule == rule && (a.line == line || a.line + 1 == line)) {
            Some(a) => {
                a.used = true;
                true
            }
            None => false,
        }
    }

    /// `allow-unused` findings for every justified allow that never
    /// suppressed anything. Call once, after all rules have run.
    pub fn unused_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for (file, allows) in &self.by_file {
            for a in allows {
                if !a.used && !a.why.is_empty() {
                    out.push(Finding::new(
                        file,
                        a.line,
                        "allow-unused",
                        format!(
                            "allow({}) suppresses nothing on this or the next line — remove it",
                            a.rule
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// Lint one lexed file against a shared [`Allows`] table. Escape hatches
/// are parsed into the table and D1–D3 suppression is recorded there;
/// `allow-unused` is *not* emitted here — the caller decides once every
/// pass (including the workspace-graph rules) has had its chance.
pub fn check_file(
    rel_path: &str,
    tier: Tier,
    lexed: &Lexed,
    path_is_test: bool,
    allows: &mut Allows,
) -> SourceCheck {
    let mut out = SourceCheck {
        unwraps: count_unwraps(&lexed.tokens),
        anchors: extract_anchors_from_comments(&lexed.comments),
        has_forbid_unsafe: has_forbid_unsafe(&lexed.tokens),
        ..SourceCheck::default()
    };

    let mut findings = allows.parse_file(rel_path, &lexed.comments);

    if tier == Tier::Deterministic && !path_is_test {
        for f in deterministic_findings(rel_path, lexed) {
            if lexed.in_test_code(f.line) {
                continue;
            }
            if allows.suppress(rel_path, f.rule, f.line) {
                continue;
            }
            findings.push(f);
        }
    }

    out.findings = findings;
    out
}

/// Lint one lexed file in isolation (the v1 entry point): same as
/// [`check_file`] with a file-local allow table, with `allow-unused`
/// decided immediately.
pub fn check_source(rel_path: &str, tier: Tier, lexed: &Lexed, path_is_test: bool) -> SourceCheck {
    let mut allows = Allows::default();
    let mut out = check_file(rel_path, tier, lexed, path_is_test, &mut allows);
    out.findings.extend(allows.unused_findings());
    out
}

/// D1 + D2 + D3 for one file, before allow/test-region filtering.
pub(crate) fn deterministic_findings(rel_path: &str, lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mk = |line: u32, rule: &'static str, message: String| {
        Finding::new(rel_path, line, rule, message)
    };

    // D1 wall-clock and D3 ambient entropy: single-identifier scans.
    // Raw identifiers count too — `r#Instant` resolves to the same item.
    for (i, t) in toks.iter().enumerate() {
        let Some(w) = t.tok.ident() else { continue };
        match w {
            "Instant" | "SystemTime" => out.push(mk(
                t.line,
                "wall-clock",
                format!("`{w}` in deterministic code — simulated VirtualTime only"),
            )),
            "sleep" if path_prefix_is(toks, i, "thread") => out.push(mk(
                t.line,
                "wall-clock",
                "`thread::sleep` in deterministic code — schedule a simulated timer".to_string(),
            )),
            w if ENTROPY_IDENTS.contains(&w) => out.push(mk(
                t.line,
                "ambient-entropy",
                format!("`{w}` draws ambient entropy — derive all randomness from the run seed"),
            )),
            _ => {}
        }
    }

    // D2: collect hash-typed binding names, then flag iterations of them.
    let hash_names = collect_hash_names(toks);
    out.extend(iteration_findings(rel_path, toks, &hash_names, |name, method, line| {
        let how = match method {
            Some(m) => format!("`{name}.{m}()`"),
            None => format!("`for … in {name}`"),
        };
        Finding::new(
            rel_path,
            line,
            "unordered-iter",
            format!(
                "{how} iterates a hash container — order is a function of RandomState, not of \
                 the run; use BTreeMap/BTreeSet or sort first"
            ),
        )
    }));

    out
}

/// Flag every iteration (method-style or `for … in`) of a name from
/// `names`. The `mk` callback builds the finding: `(name, Some(method))`
/// for `.iter()`-style sites, `(name, None)` for for-loops.
pub(crate) fn iteration_findings(
    _rel_path: &str,
    toks: &[Token],
    names: &[String],
    mk: impl Fn(&str, Option<&str>, u32) -> Finding,
) -> Vec<Finding> {
    let mut out = Vec::new();
    if names.is_empty() {
        return out;
    }
    for i in 0..toks.len() {
        // name.method( … ) where method observes iteration order.
        if let (Some(name), Some(Tok::Punct('.')), Some(Tok::Ident(m)), Some(Tok::Punct('('))) = (
            toks[i].tok.ident(),
            toks.get(i + 1).map(|t| &t.tok),
            toks.get(i + 2).map(|t| &t.tok),
            toks.get(i + 3).map(|t| &t.tok),
        ) {
            if names.iter().any(|n| n == name) && ITER_METHODS.contains(&m.as_str()) {
                out.push(mk(name, Some(m), toks[i + 2].line));
            }
        }
        // for … in [&[mut]] path::to::name {
        if toks[i].tok.is_kw("in") && i > 0 {
            if let Some((name, line)) = for_loop_hash_target(toks, i, names) {
                out.push(mk(&name, None, line));
            }
        }
    }
    out
}

/// True when tokens `i-3..i` spell `prefix::` (e.g. `thread::sleep`).
fn path_prefix_is(toks: &[Token], i: usize, prefix: &str) -> bool {
    i >= 3
        && toks[i - 1].tok == Tok::Punct(':')
        && toks[i - 2].tok == Tok::Punct(':')
        && toks[i - 3].tok.ident() == Some(prefix)
}

/// Names bound with a hash-container type, from two shapes:
///
///  * `name : TYPE` (struct fields, fn params, typed lets) — decided by
///    [`type_is_hash`], which looks *through* deref wrappers
///    (`Arc<HashMap<…>>` binds) but *not* into ordered containers
///    (`Vec<HashMap<…>>` does not — iterating the Vec is ordered);
///  * `name = HashMap::…` / `name = …collect::<HashSet<…>>()` (inferred
///    lets, assignments of constructor or collector calls).
pub(crate) fn collect_hash_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        let Some(name) = toks[i].tok.ident() else { continue };
        // `name :` but not `name ::`.
        if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
            && toks.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct(':'))
        {
            let ty_start = i + 2;
            let ty_end = type_span_end(toks, ty_start);
            if type_is_hash(&toks[ty_start..ty_end]) {
                names.push(name.to_string());
            }
        }
        // `name = RHS` (skip `==`, `!=`, `<=`, `>=`): binds when RHS
        // starts with a hash constructor or contains a hash turbofish
        // (`collect::<HashMap<…>>`).
        if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('='))
            && toks.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct('='))
        {
            let rhs_start = i + 2;
            if let Some(Tok::Ident(w)) = toks.get(rhs_start).map(|t| &t.tok) {
                if w == "HashMap" || w == "HashSet" {
                    names.push(name.to_string());
                    continue;
                }
            }
            // Scan the statement's rhs for a turbofish whose type is hash.
            let mut j = rhs_start;
            let mut depth = 0i32;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') if depth > 0 => depth -= 1,
                    Tok::Punct(';') | Tok::Punct('}') if depth == 0 => break,
                    Tok::Punct('<')
                        if j >= 2
                            && toks[j - 1].tok == Tok::Punct(':')
                            && toks[j - 2].tok == Tok::Punct(':') =>
                    {
                        let end = type_span_end(toks, j + 1);
                        if type_is_hash(&toks[j + 1..end]) {
                            names.push(name.to_string());
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// Extent of a type starting at `start`: up to the first
/// `, ; ) { } =` at angle-depth 0.
fn type_span_end(toks: &[Token], start: usize) -> usize {
    let mut angle = 0i32;
    let mut j = start;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct(',')
            | Tok::Punct(';')
            | Tok::Punct(')')
            | Tok::Punct('{')
            | Tok::Punct('}')
            | Tok::Punct('=')
                if angle <= 0 =>
            {
                break;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// For a `for … in EXPR {` loop, return the hash-container name when the
/// loop target is a plain (possibly `&`/`&mut`/field-path) reference to
/// one. Method calls in EXPR are left to the `.method(` check.
fn for_loop_hash_target(
    toks: &[Token],
    in_idx: usize,
    hash_names: &[String],
) -> Option<(String, u32)> {
    // Confirm this `in` belongs to a `for` loop: scan back to the `for`
    // within the same statement (bounded lookbehind keeps this cheap).
    let mut saw_for = false;
    for k in in_idx.saturating_sub(12)..in_idx {
        if toks[k].tok.is_kw("for") {
            saw_for = true;
        }
    }
    if !saw_for {
        return None;
    }
    let mut depth = 0i32;
    let mut last_ident: Option<(String, u32)> = None;
    let mut j = in_idx + 1;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => {
                // A call or index in the target expression: not a bare
                // container reference, leave it to the method check.
                return None;
            }
            Tok::Punct('{') if depth == 0 => break,
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => depth -= 1,
            Tok::Ident(w) => last_ident = Some((w.clone(), toks[j].line)),
            _ => {}
        }
        j += 1;
    }
    let (name, line) = last_ident?;
    if hash_names.contains(&name) {
        Some((name, line))
    } else {
        None
    }
}

/// Count `.unwrap(` call sites.
fn count_unwraps(toks: &[Token]) -> usize {
    let mut n = 0usize;
    for i in 0..toks.len() {
        if toks[i].tok == Tok::Punct('.')
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(w)) if w == "unwrap")
            && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct('('))
        {
            n += 1;
        }
    }
    n
}

/// True when the stream contains `# ! [ forbid ( unsafe_code ) ]`.
fn has_forbid_unsafe(toks: &[Token]) -> bool {
    toks.windows(4).any(|w| {
        matches!(&w[0].tok, Tok::Ident(a) if a == "forbid")
            && w[1].tok == Tok::Punct('(')
            && matches!(&w[2].tok, Tok::Ident(b) if b == "unsafe_code")
            && w[3].tok == Tok::Punct(')')
    })
}

/// The protocol-anchor marker scanned for in comments.
const ANCHOR_MARKER: &str = "OCPT \u{a7}";

/// Pull `(label, line)` pairs out of comment text for every
/// `ANCHOR_MARKER<label>]` occurrence; labels are dotted section numbers.
pub fn extract_anchors_from_comments(comments: &[Comment]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for c in comments {
        for label in extract_anchor_labels(&c.text) {
            out.push((label, c.line));
        }
    }
    out
}

/// Extract anchor labels from arbitrary text (also used on DESIGN.md).
pub fn extract_anchor_labels(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(ANCHOR_MARKER) {
        rest = &rest[pos + ANCHOR_MARKER.len()..];
        let label: String = rest.chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
        let label = label.trim_end_matches('.').to_string();
        if !label.is_empty() {
            out.push(label);
        }
    }
    out
}

/// Parse every escape-hatch comment in the file. Returns the parsed
/// allows plus hygiene findings (malformed shape, empty justification).
fn parse_allows(rel_path: &str, comments: &[Comment]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        // Only a comment that *starts* with the marker is an escape
        // hatch; prose mentioning the syntax mid-sentence is not.
        let Some(body) = c.text.strip_prefix("simlint:") else { continue };
        let body = body.trim();
        match parse_allow_body(body) {
            Some((rule, why)) => {
                if why.trim().is_empty() {
                    findings.push(Finding::new(
                        rel_path,
                        c.line,
                        "allow-unjustified",
                        format!(
                            "allow({rule}) has an empty justification — say why the rule is \
                             safe to break here"
                        ),
                    ));
                }
                allows.push(Allow { rule, why: why.trim().to_string(), line: c.line, used: false });
            }
            None => findings.push(Finding::new(
                rel_path,
                c.line,
                "allow-malformed",
                "expected `simlint: allow(<rule>, \"<why>\")`".to_string(),
            )),
        }
    }
    (allows, findings)
}

/// Parse `allow(<rule>, "<why>")`; returns `(rule, why)`.
fn parse_allow_body(body: &str) -> Option<(String, String)> {
    let body = body.strip_prefix("allow")?.trim_start();
    let body = body.strip_prefix('(')?;
    let (rule, rest) = body.split_once(',')?;
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return None;
    }
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    let (why, tail) = rest.split_once('"')?;
    if tail.trim_start().strip_prefix(')').is_none() {
        return None;
    }
    Some((rule.to_string(), why.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(tier: Tier, src: &str) -> SourceCheck {
        check_source("fixture.rs", tier, &lex(src), false)
    }

    fn rules_of(c: &SourceCheck) -> Vec<&'static str> {
        c.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn wall_clock_fires_on_instant_and_thread_sleep() {
        let c = check(Tier::Deterministic, "let t = Instant::now();\nthread::sleep(d);");
        assert_eq!(rules_of(&c), vec!["wall-clock", "wall-clock"]);
        assert_eq!(c.findings[0].line, 1);
        assert_eq!(c.findings[1].line, 2);
    }

    #[test]
    fn wall_clock_ignores_other_sleeps_and_exempt_tier() {
        let c = check(Tier::Deterministic, "scheduler.sleep(d); let s = my::sleep();");
        assert!(c.findings.is_empty(), "{:?}", c.findings);
        let c = check(Tier::Exempt, "let t = Instant::now();");
        assert!(c.findings.is_empty());
    }

    #[test]
    fn entropy_fires_on_thread_rng_and_random_state() {
        let c = check(
            Tier::Deterministic,
            "let r = rand::thread_rng();\nlet s: RandomState = Default::default();",
        );
        assert_eq!(rules_of(&c), vec!["ambient-entropy", "ambient-entropy"]);
    }

    #[test]
    fn unordered_iter_fires_on_declared_hashmap_methods() {
        let src = "struct S { m: HashMap<u32, u32> }\nfn f(s: &S) { for (k, v) in s.m.iter() { } }";
        let c = check(Tier::Deterministic, src);
        assert_eq!(rules_of(&c), vec!["unordered-iter"]);
        assert_eq!(c.findings[0].line, 2);
    }

    #[test]
    fn unordered_iter_fires_on_for_loop_over_hash_binding() {
        let src = "let mut seen = HashSet::new();\nfor x in &seen { }";
        let c = check(Tier::Deterministic, src);
        assert_eq!(rules_of(&c), vec!["unordered-iter"]);
    }

    #[test]
    fn unordered_iter_quiet_on_btreemap_and_point_access() {
        let src = "let m: BTreeMap<u32, u32> = BTreeMap::new();\nfor (k, v) in m.iter() { }\n\
                   let h: HashMap<u32, u32> = HashMap::new();\nlet v = h.get(&1);";
        let c = check(Tier::Deterministic, src);
        assert!(c.findings.is_empty(), "{:?}", c.findings);
    }

    #[test]
    fn vec_of_hashmaps_is_ordered_iteration() {
        // Iterating the outer Vec yields elements in index order — only
        // iterating the *inner* maps would be unordered, and that shows
        // up as its own binding when it happens.
        let src = "struct S { timers: Vec<HashMap<u64, u32>> }\n\
                   fn f(s: &S) { for m in s.timers.iter() { } }";
        let c = check(Tier::Deterministic, src);
        assert!(c.findings.is_empty(), "{:?}", c.findings);
    }

    #[test]
    fn arc_wrapped_hashmap_still_binds() {
        let src = "struct S { shared: Arc<HashMap<u64, u32>> }\n\
                   fn f(s: &S) { for m in s.shared.iter() { } }";
        let c = check(Tier::Deterministic, src);
        assert_eq!(rules_of(&c), vec!["unordered-iter"]);
    }

    #[test]
    fn collect_turbofish_into_hash_binds() {
        let src = "let picked = xs.iter().collect::<HashSet<u32>>();\nfor x in &picked { }";
        let c = check(Tier::Deterministic, src);
        assert_eq!(rules_of(&c), vec!["unordered-iter"]);
        // …but collecting into a Vec of maps does not.
        let src = "let rows = xs.iter().collect::<Vec<HashMap<u32, u32>>>();\nfor r in &rows { }";
        let c = check(Tier::Deterministic, src);
        assert!(c.findings.is_empty(), "{:?}", c.findings);
    }

    #[test]
    fn allow_suppresses_same_and_next_line_and_must_be_used() {
        let src = "// simlint: allow(wall-clock, \"self-measurement only\")\n\
                   let t = Instant::now();";
        let c = check(Tier::Deterministic, src);
        assert!(c.findings.is_empty(), "{:?}", c.findings);

        let unused = "// simlint: allow(wall-clock, \"nothing here\")\nlet x = 1;";
        let c = check(Tier::Deterministic, unused);
        assert_eq!(rules_of(&c), vec!["allow-unused"]);
    }

    #[test]
    fn allow_requires_justification_and_shape() {
        let c = check(
            Tier::Deterministic,
            "// simlint: allow(wall-clock, \"\")\nlet t = Instant::now();",
        );
        assert_eq!(rules_of(&c), vec!["allow-unjustified"]);
        let c = check(Tier::Deterministic, "// simlint: allow wall-clock\nlet x = 1;");
        assert_eq!(rules_of(&c), vec!["allow-malformed"]);
    }

    #[test]
    fn cfg_test_regions_are_exempt_from_d1_d3() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let i = Instant::now(); }\n}";
        let c = check(Tier::Deterministic, src);
        assert!(c.findings.is_empty(), "{:?}", c.findings);
    }

    #[test]
    fn hazards_inside_strings_and_comments_do_not_fire() {
        let src = "let s = \"Instant::now() and thread_rng()\";\n// Instant is banned here\nlet r = r#\"HashMap .iter()\"#;";
        let c = check(Tier::Deterministic, src);
        assert!(c.findings.is_empty(), "{:?}", c.findings);
    }

    #[test]
    fn raw_identifier_hazards_still_fire() {
        let c = check(Tier::Deterministic, "let t = r#Instant::now();");
        assert_eq!(rules_of(&c), vec!["wall-clock"]);
    }

    #[test]
    fn unwrap_counting_includes_test_code() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\nlet s = \".unwrap()\";";
        let c = check(Tier::Deterministic, src);
        assert_eq!(c.unwraps, 2);
    }

    #[test]
    fn forbid_unsafe_detection() {
        assert!(check(Tier::Deterministic, "#![forbid(unsafe_code)]\nfn f() {}").has_forbid_unsafe);
        assert!(!check(Tier::Deterministic, "fn f() {}").has_forbid_unsafe);
    }

    #[test]
    fn anchors_extracted_from_comments_only() {
        let marker = format!("[{}{}]", super::ANCHOR_MARKER, "3.4.1");
        let src = format!("// {marker} initiation\nlet s = \"{marker}\";");
        let c = check(Tier::Deterministic, &src);
        assert_eq!(c.anchors, vec![("3.4.1".to_string(), 1)]);
    }

    #[test]
    fn anchor_labels_parse_from_text() {
        let text = format!(
            "cites {}2.2] and {}3.5.1] twice {}3.5.1]",
            super::ANCHOR_MARKER,
            super::ANCHOR_MARKER,
            super::ANCHOR_MARKER
        );
        assert_eq!(extract_anchor_labels(&text), vec!["2.2", "3.5.1", "3.5.1"]);
    }

    #[test]
    fn path_level_test_files_skip_d1_d3_but_count_unwraps() {
        let lexed = lex("fn t() { let i = Instant::now(); x.unwrap(); }");
        let c = check_source("crates/core/tests/x.rs", Tier::Deterministic, &lexed, true);
        assert!(c.findings.is_empty());
        assert_eq!(c.unwraps, 1);
    }

    #[test]
    fn shared_allow_table_defers_unused_decision() {
        let mut allows = Allows::default();
        let lexed =
            lex("// simlint: allow(lock-order, \"drops before send by construction\")\nlet x = 1;");
        let c = check_file("fixture.rs", Tier::Deterministic, &lexed, false, &mut allows);
        assert!(c.findings.is_empty(), "{:?}", c.findings);
        // A later workspace pass suppresses through the same table…
        assert!(allows.suppress("fixture.rs", "lock-order", 2));
        // …so the final sweep reports nothing.
        assert!(allows.unused_findings().is_empty());
    }
}
