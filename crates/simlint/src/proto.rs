//! D7 `protocol-exhaustiveness`: protocol enums cross-checked against
//! their codecs and their match sites.
//!
//! The protocol surface of this repo is a handful of enums (`Envelope`,
//! `Status`, `CtrlKind`, `Direction`) that must round-trip through
//! `wire.rs`-style codecs and be handled by every consumer. rustc's own
//! match exhaustiveness stops at the function boundary: it cannot see
//! that a variant is serialized but never reconstructed, and it is
//! silenced entirely by a `_` arm — which is exactly how a newly added
//! control-message kind slips through an old handler unprocessed.
//!
//! A **protocol enum** is any workspace enum (test code and `*Error`
//! enums excluded) whose variants are referenced by at least one
//! *encoder* function (`encode*`, `to_bytes*`, `to_wire*`, `serialize*`)
//! AND at least one *decoder* function (`decode*`, `from_wire*`,
//! `from_bytes*`, `deserialize*`) in its defining crate. For each one:
//!
//! 1. **Codec reconciliation** — every variant must be referenced by
//!    ≥1 encoder and ≥1 decoder. Expression-position refs count (the
//!    decoder's tag `match` constructs variants on the arm bodies).
//! 2. **Handler coverage** — every non-test `match` whose patterns
//!    reference the enum must either list every variant explicitly or
//!    carry an allow-justified catch-all.
//! 3. **Wildcard suppression** — a catch-all arm in a protocol match is
//!    a finding (allow-able with justification): it swallows future
//!    variants without a compile error.
//! 4. **Tag symmetry** — in a file that contains both an encoder and a
//!    decoder, every `*TAG*` const must be referenced by both sides;
//!    a one-sided tag means the codec pair has drifted.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::Graph;
use crate::report::Finding;
use crate::rules::Allows;

/// Rule id.
pub const RULE: &str = "protocol-exhaustiveness";

/// Function-name prefixes that mark wire writers.
const ENCODER_PREFIXES: &[&str] = &["encode", "to_bytes", "to_wire", "serialize"];
/// Function-name prefixes that mark wire readers.
const DECODER_PREFIXES: &[&str] = &["decode", "from_wire", "from_bytes", "deserialize"];

/// `name` is `prefix` or `prefix_…` for one of the prefixes.
fn is_codec_name(name: &str, prefixes: &[&str]) -> bool {
    prefixes
        .iter()
        .any(|p| name == *p || name.strip_prefix(p).is_some_and(|rest| rest.starts_with('_')))
}

/// Run D7 over the workspace. Returns `(findings, protocol_enums)`.
pub fn run(g: &Graph, allows: &mut Allows) -> (Vec<Finding>, usize) {
    // -- codec function classification ---------------------------------
    let mut encoders: BTreeSet<usize> = BTreeSet::new();
    let mut decoders: BTreeSet<usize> = BTreeSet::new();
    for (i, f) in g.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        if is_codec_name(&f.name, ENCODER_PREFIXES) {
            encoders.insert(i);
        }
        if is_codec_name(&f.name, DECODER_PREFIXES) {
            decoders.insert(i);
        }
    }

    let mut findings = Vec::new();
    let mut protocol_enums = 0usize;

    for e in &g.enums {
        if e.name.ends_with("Error") || g.files[e.file].is_test_path {
            continue;
        }
        let crate_key = &g.files[e.file].crate_key;

        // Variants seen on each codec side, within the defining crate.
        let mut enc_vars: BTreeSet<&str> = BTreeSet::new();
        let mut dec_vars: BTreeSet<&str> = BTreeSet::new();
        for r in g.vrefs.iter().filter(|r| r.enum_name == e.name) {
            let Some(fi) = r.in_fn else { continue };
            if g.files[g.fns[fi].file].crate_key != *crate_key {
                continue;
            }
            if encoders.contains(&fi) {
                enc_vars.insert(&r.variant);
            }
            if decoders.contains(&fi) {
                dec_vars.insert(&r.variant);
            }
        }
        if enc_vars.is_empty() || dec_vars.is_empty() {
            continue; // plain data enum, not protocol surface
        }
        protocol_enums += 1;
        let decl_rel = &g.files[e.file].rel;

        // 1. Codec reconciliation.
        for v in &e.variants {
            if !enc_vars.contains(v.as_str()) && !allows.suppress(decl_rel, RULE, e.line) {
                findings.push(Finding::new(
                    decl_rel,
                    e.line,
                    RULE,
                    format!(
                        "variant `{}::{v}` is never written by an encoder \
                         (encode*/to_bytes*/to_wire*/serialize*) — it cannot appear on the wire",
                        e.name
                    ),
                ));
            }
            if !dec_vars.contains(v.as_str()) && !allows.suppress(decl_rel, RULE, e.line) {
                findings.push(Finding::new(
                    decl_rel,
                    e.line,
                    RULE,
                    format!(
                        "variant `{}::{v}` is never reconstructed by a decoder \
                         (decode*/from_wire*/from_bytes*/deserialize*) — round-trips drop it",
                        e.name
                    ),
                ));
            }
        }

        // 2 + 3. Handler coverage and wildcard suppression, per match
        // site whose patterns reference this enum.
        for m in &g.matches {
            if m.is_test {
                continue;
            }
            let references = m.arms.iter().any(|a| a.pats.iter().any(|(en, _)| en == &e.name));
            if !references {
                continue;
            }
            let m_rel = &g.files[m.file].rel;
            if let Some(arm) = m.arms.iter().find(|a| a.catch_all) {
                if !allows.suppress(m_rel, RULE, arm.line) {
                    findings.push(Finding::new(
                        m_rel,
                        arm.line,
                        RULE,
                        format!(
                            "match on protocol enum `{}` has a catch-all arm — a future variant \
                             would be silently absorbed; list every variant, or justify with an \
                             allow",
                            e.name
                        ),
                    ));
                }
            } else {
                let handled: BTreeSet<&str> = m
                    .arms
                    .iter()
                    .flat_map(|a| a.pats.iter())
                    .filter(|(en, _)| en == &e.name)
                    .map(|(_, v)| v.as_str())
                    .collect();
                for v in &e.variants {
                    if !handled.contains(v.as_str()) && !allows.suppress(m_rel, RULE, m.line) {
                        findings.push(Finding::new(
                            m_rel,
                            m.line,
                            RULE,
                            format!(
                                "match on protocol enum `{}` does not handle variant `{}::{v}` — \
                                 add an explicit arm",
                                e.name, e.name
                            ),
                        ));
                    }
                }
            }
        }
    }

    // 4. Tag symmetry in codec files.
    let mut file_enc: BTreeSet<usize> = BTreeSet::new();
    let mut file_dec: BTreeSet<usize> = BTreeSet::new();
    for (i, f) in g.fns.iter().enumerate() {
        if encoders.contains(&i) {
            file_enc.insert(f.file);
        }
        if decoders.contains(&i) {
            file_dec.insert(f.file);
        }
    }
    // const name → (encoder-side ref seen, decoder-side ref seen)
    let mut tag_refs: BTreeMap<&str, (bool, bool)> = BTreeMap::new();
    for r in &g.const_refs {
        let Some(fi) = r.in_fn else { continue };
        let entry = tag_refs.entry(r.name.as_str()).or_default();
        entry.0 |= encoders.contains(&fi);
        entry.1 |= decoders.contains(&fi);
    }
    for c in &g.consts {
        if !c.name.contains("TAG")
            || g.files[c.file].is_test_path
            || !(file_enc.contains(&c.file) && file_dec.contains(&c.file))
        {
            continue;
        }
        let (enc, dec) = tag_refs.get(c.name.as_str()).copied().unwrap_or((false, false));
        // Only one-sided use is codec drift; a const no codec touches is
        // not a wire tag at all (digest salts, log markers, …).
        if enc == dec {
            continue;
        }
        let rel = &g.files[c.file].rel;
        if !allows.suppress(rel, RULE, c.line) {
            let side = if enc { "a decoder" } else { "an encoder" };
            findings.push(Finding::new(
                rel,
                c.line,
                RULE,
                format!(
                    "wire tag `{}` is not referenced by {side} — one-sided tags mean the \
                     encoder and decoder have drifted apart",
                    c.name
                ),
            ));
        }
    }

    (findings, protocol_enums)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, Lexed};

    fn analyze(files: &[(&str, &str)]) -> (Vec<Finding>, usize) {
        let lexed: Vec<(String, Lexed)> =
            files.iter().map(|(rel, src)| (rel.to_string(), lex(src))).collect();
        let g = Graph::build(&lexed);
        let mut allows = Allows::default();
        for (rel, lx) in &lexed {
            allows.parse_file(rel, &lx.comments);
        }
        run(&g, &mut allows)
    }

    const CLEAN: &str = "pub enum K { A, B }\n\
                         fn encode_k(k: &K) -> u8 { match k { K::A => 0, K::B => 1 } }\n\
                         fn decode_k(x: u8) -> K { if x == 0 { K::A } else { K::B } }\n\
                         fn handle(k: &K) { match k { K::A => {}, K::B => {} } }";

    #[test]
    fn clean_round_trip_with_exhaustive_handler_passes() {
        let (fs, n) = analyze(&[("crates/core/src/k.rs", CLEAN)]);
        assert_eq!(n, 1);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn missing_decoder_arm_is_found() {
        let src = "pub enum K { A, B }\n\
                   fn encode_k(k: &K) -> u8 { match k { K::A => 0, K::B => 1 } }\n\
                   fn decode_k(_x: u8) -> K { K::A }";
        let (fs, n) = analyze(&[("crates/core/src/k.rs", src)]);
        assert_eq!(n, 1);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("never reconstructed"), "{}", fs[0].message);
        assert!(fs[0].message.contains("K::B"));
    }

    #[test]
    fn missing_encoder_ref_is_found() {
        let src = "pub enum K { A, B }\n\
                   fn encode_k(_k: &K) -> u8 { let _ = K::A; 0 }\n\
                   fn decode_k(x: u8) -> K { if x == 0 { K::A } else { K::B } }";
        let (fs, _) = analyze(&[("crates/core/src/k.rs", src)]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("never written"), "{}", fs[0].message);
    }

    #[test]
    fn missing_handler_arm_is_found() {
        let src = "pub enum K { A, B, C }\n\
                   fn encode_k(k: &K) -> u8 { match k { K::A => 0, K::B => 1, K::C => 2 } }\n\
                   fn decode_k(x: u8) -> K { if x == 0 { K::A } else if x == 1 { K::B } else { K::C } }\n\
                   fn handle(k: &K) { match k { K::A => {}, K::B => {} } }";
        let (fs, _) = analyze(&[("crates/core/src/k.rs", src)]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("does not handle variant `K::C`"), "{}", fs[0].message);
        assert_eq!(fs[0].line, 4);
    }

    #[test]
    fn wildcard_match_is_a_finding_unless_allowed() {
        let bad = "pub enum K { A, B }\n\
                   fn encode_k(k: &K) -> u8 { match k { K::A => 0, K::B => 1 } }\n\
                   fn decode_k(x: u8) -> K { if x == 0 { K::A } else { K::B } }\n\
                   fn handle(k: &K) { match k { K::A => {}, _ => {} } }";
        let (fs, _) = analyze(&[("crates/core/src/k.rs", bad)]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("catch-all"), "{}", fs[0].message);

        let allowed = "pub enum K { A, B }\n\
                       fn encode_k(k: &K) -> u8 { match k { K::A => 0, K::B => 1 } }\n\
                       fn decode_k(x: u8) -> K { if x == 0 { K::A } else { K::B } }\n\
                       fn handle(k: &K) {\n    match k {\n        K::A => {},\n\
                       // simlint: allow(protocol-exhaustiveness, \"B and future kinds are opaque here\")\n\
                       _ => {},\n    }\n}";
        let (fs, _) = analyze(&[("crates/core/src/k.rs", allowed)]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn decoder_tag_match_over_bytes_is_not_a_protocol_match() {
        // The decode-side `match x { 0 => K::A, … t => K::A }` has number
        // patterns and a bare-binding fallback: its catch-all must not be
        // flagged, because the patterns never reference the enum.
        let src = "pub enum K { A, B }\n\
                   fn encode_k(k: &K) -> u8 { match k { K::A => 0, K::B => 1 } }\n\
                   fn decode_k(x: u8) -> K { match x { 0 => K::A, 1 => K::B, _ => K::A } }";
        let (fs, _) = analyze(&[("crates/core/src/k.rs", src)]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn data_enums_without_codecs_are_out_of_scope() {
        let src = "pub enum Mode { Fast, Slow }\n\
                   fn pick(m: &Mode) -> u8 { match m { Mode::Fast => 0, _ => 1 } }";
        let (fs, n) = analyze(&[("crates/core/src/m.rs", src)]);
        assert_eq!(n, 0);
        assert!(fs.is_empty(), "wildcards on data enums are fine: {fs:?}");
    }

    #[test]
    fn error_enums_are_exempt() {
        let src = "pub enum WireError { Truncated, BadTag }\n\
                   fn encode_e(e: &WireError) -> u8 { match e { WireError::Truncated => 0, _ => 1 } }\n\
                   fn decode_e(_x: u8) -> WireError { WireError::Truncated }";
        let (fs, n) = analyze(&[("crates/core/src/w.rs", src)]);
        assert_eq!(n, 0);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn one_sided_tag_const_is_found() {
        let src = "pub const FRAME_TAG_A: u8 = 0;\npub const FRAME_TAG_B: u8 = 1;\n\
                   pub enum K { A, B }\n\
                   fn encode_k(k: &K) -> u8 { match k { K::A => FRAME_TAG_A, K::B => FRAME_TAG_B } }\n\
                   fn decode_k(x: u8) -> K { if x == FRAME_TAG_A { K::A } else { K::B } }";
        let (fs, _) = analyze(&[("crates/core/src/k.rs", src)]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("FRAME_TAG_B"), "{}", fs[0].message);
        assert!(fs[0].message.contains("an encoder") || fs[0].message.contains("a decoder"));
        assert_eq!(fs[0].line, 2);
    }

    #[test]
    fn symmetric_tags_pass() {
        let src = "pub const FRAME_TAG_A: u8 = 0;\n\
                   pub enum K { A }\n\
                   fn encode_k(_k: &K) -> u8 { let _ = K::A; FRAME_TAG_A }\n\
                   fn decode_k(x: u8) -> K { if x == FRAME_TAG_A { K::A } else { K::A } }";
        let (fs, _) = analyze(&[("crates/core/src/k.rs", src)]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn test_code_matches_are_exempt() {
        let src = "pub enum K { A, B }\n\
                   fn encode_k(k: &K) -> u8 { match k { K::A => 0, K::B => 1 } }\n\
                   fn decode_k(x: u8) -> K { if x == 0 { K::A } else { K::B } }\n\
                   #[cfg(test)]\nmod t {\n    use super::K;\n\
                   fn probe(k: &K) -> bool { match k { K::A => true, _ => false } }\n}";
        let (fs, _) = analyze(&[("crates/core/src/k.rs", src)]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn cross_file_handler_in_same_crate_is_seen() {
        let codec = "pub enum K { A, B }\n\
                     pub fn encode_k(k: &K) -> u8 { match k { K::A => 0, K::B => 1 } }\n\
                     pub fn decode_k(x: u8) -> K { if x == 0 { K::A } else { K::B } }";
        let handler = "use crate::k::K;\nfn route(k: &K) { match k { K::A => {}, _ => {} } }";
        let (fs, _) =
            analyze(&[("crates/core/src/k.rs", codec), ("crates/core/src/route.rs", handler)]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].file, "crates/core/src/route.rs");
        assert!(fs[0].message.contains("catch-all"));
    }
}
