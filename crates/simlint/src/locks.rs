//! D6 `lock-order`: lock-acquisition order and guard-lifetime hazards.
//!
//! The threaded runtime (`ocpt-runtime`), the work-stealing harness grid
//! and the telemetry sinks all hold real locks. Three shapes of bug are
//! caught here, on *every* tier (concurrency hazards do not care about
//! the simulation boundary), excluding test code:
//!
//! 1. **Acquisition cycles** — if one function acquires `a` then `b`
//!    while another acquires `b` then `a`, the interleaving deadlocks.
//!    Every nested acquisition contributes an edge `outer → inner` to a
//!    workspace-wide acquisition graph; any cycle is a finding.
//! 2. **Double-acquire** — re-acquiring a lock already held on the same
//!    path (a self-edge) deadlocks immediately with a non-reentrant
//!    mutex.
//! 3. **Guard across send/join** — holding a guard across a channel
//!    `.send(…)` or a `.join()` extends the critical section across a
//!    synchronous handoff; if the receiving side ever needs the same
//!    lock, that is a deadlock, and even when it does not it serializes
//!    the receiver against the critical section. The repo convention is
//!    to drop the guard first (scoped `{ … }` block), so surviving
//!    instances are findings.
//!
//! Locks are discovered by *name*: a struct field or binding whose type
//! resolves to `Mutex`/`RwLock` (`runtime::sync::Mutex`, `std::sync::
//! {Mutex,RwLock}`, wrapped in `Arc` or not), or a binding assigned from
//! `Mutex::new`/`RwLock::new`. An acquisition is `name.lock()`,
//! `name.read()` or `name.write()` where `name` is in the pool of the
//! file's crate — pool-gating keeps io `.write(buf)` and str `.read()`
//! lookalikes out. Guard lifetimes follow Rust scopes: a `let`-bound
//! guard lives to the end of its block (or an explicit `drop(g)`); a
//! temporary lives to the end of its statement.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::Graph;
use crate::lexer::{Lexed, Tok, Token};
use crate::report::Finding;
use crate::rules::Allows;

/// Rule id.
pub const RULE: &str = "lock-order";

/// Methods that acquire a lock when called on a pooled name.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// One acquisition edge's representative site.
#[derive(Clone, Debug)]
struct Edge {
    file: String,
    line: u32,
}

/// A held guard.
#[derive(Clone, Debug)]
struct Held {
    lock: String,
    /// Binding name, when `let`-bound.
    guard: Option<String>,
    /// Brace depth at declaration; the guard dies when the depth drops
    /// below it. `None` for statement-scoped temporaries.
    depth: Option<i32>,
}

/// Run D6 over the workspace. Returns `(findings, locks_tracked)`.
pub fn run(g: &Graph, lexed: &[(String, Lexed)], allows: &mut Allows) -> (Vec<Finding>, usize) {
    // -- lock pools per crate ------------------------------------------
    let mut pools: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (fi, (_, lx)) in lexed.iter().enumerate() {
        let key = &g.files[fi].crate_key;
        let pool = pools.entry(key.clone()).or_default();
        collect_lock_names(&lx.tokens, pool);
    }
    let locks_tracked = pools.values().map(|p| p.len()).sum();

    // -- per-function guard tracking -----------------------------------
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for f in &g.fns {
        if f.is_test {
            continue;
        }
        let Some((a, b)) = f.body else { continue };
        let (rel, lx) = &lexed[f.file];
        let pool = &pools[&g.files[f.file].crate_key];
        if pool.is_empty() {
            continue;
        }
        scan_body(rel, &lx.tokens[a..b], pool, allows, &mut edges, &mut findings);
    }

    // -- cycle detection over the acquisition graph --------------------
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    if let Some(cycle) = find_cycle(&adj) {
        // Report at one edge of the cycle, deterministically: the
        // lexicographically smallest (from, to) pair on it.
        let mut pairs: Vec<(String, String)> =
            cycle.windows(2).map(|w| (w[0].clone(), w[1].clone())).collect();
        pairs.sort();
        let site = &edges[&pairs[0]];
        if !allows.suppress(&site.file, RULE, site.line) {
            findings.push(Finding::new(
                &site.file,
                site.line,
                RULE,
                format!(
                    "lock acquisition cycle: {} — concurrent paths taking these locks in \
                     different orders deadlock; pick one global order",
                    cycle.join(" \u{2192} ")
                ),
            ));
        }
    }

    (findings, locks_tracked)
}

/// Names in `toks` declared with a lock type (`name: [Arc<]Mutex<…>` /
/// `RwLock<…>`) or assigned a lock constructor (`name = Mutex::new`).
fn collect_lock_names(toks: &[Token], pool: &mut BTreeSet<String>) {
    for i in 0..toks.len() {
        let Some(name) = toks[i].tok.ident() else { continue };
        if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
            && toks.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct(':'))
            && type_is_lock(toks, i + 2)
        {
            pool.insert(name.to_string());
        }
        if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('='))
            && toks.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct('='))
        {
            // `name = Mutex::new(…)`, possibly through `Arc::new(…)`:
            // accept a lock constructor anywhere before the statement ends.
            let mut j = i + 2;
            let mut depth = 0i32;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') if depth > 0 => depth -= 1,
                    Tok::Punct(';') | Tok::Punct('}') if depth == 0 => break,
                    Tok::Ident(w) if w == "Mutex" || w == "RwLock" => {
                        pool.insert(name.to_string());
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
}

/// True when the type starting at `start` is a lock, looking through
/// `&`, `Arc`, `Rc`, `Box`, lifetimes and path prefixes.
fn type_is_lock(toks: &[Token], start: usize) -> bool {
    let mut i = start;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('&') | Tok::Punct('<') | Tok::Lifetime => i += 1,
            Tok::Ident(w) if w == "mut" || w == "dyn" => i += 1,
            Tok::Ident(w) if w == "Arc" || w == "Rc" || w == "Box" => i += 1,
            t => {
                let Some(w) = t.ident() else { return false };
                if w == "Mutex" || w == "RwLock" {
                    return true;
                }
                // A path prefix (`sync::Mutex`): skip segment + `::`.
                if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                    && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                {
                    i += 3;
                    continue;
                }
                return false;
            }
        }
    }
    false
}

/// Walk one function body, tracking held guards and emitting edges,
/// double-acquire and guard-across-send findings.
fn scan_body(
    rel: &str,
    toks: &[Token],
    pool: &BTreeSet<String>,
    allows: &mut Allows,
    edges: &mut BTreeMap<(String, String), Edge>,
    findings: &mut Vec<Finding>,
) {
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                held.retain(|h| h.depth.is_none_or(|d| d <= depth));
            }
            Tok::Punct(';') => {
                // Temporaries die at statement end.
                held.retain(|h| h.depth.is_some());
            }
            Tok::Ident(w) if w == "drop" => {
                // `drop ( g )` releases g early.
                if let (Some(Tok::Punct('(')), Some(Tok::Ident(gname))) =
                    (toks.get(i + 1).map(|t| &t.tok), toks.get(i + 2).map(|t| &t.tok))
                {
                    if toks.get(i + 3).map(|t| &t.tok) == Some(&Tok::Punct(')')) {
                        held.retain(|h| h.guard.as_deref() != Some(gname.as_str()));
                    }
                }
            }
            _ => {}
        }

        // Acquisition: `name . lock|read|write (` with name in the pool.
        if let (Some(name), Some(Tok::Punct('.')), Some(Tok::Ident(m)), Some(Tok::Punct('('))) = (
            toks[i].tok.ident(),
            toks.get(i + 1).map(|t| &t.tok),
            toks.get(i + 2).map(|t| &t.tok),
            toks.get(i + 3).map(|t| &t.tok),
        ) {
            if pool.contains(name) && ACQUIRE_METHODS.contains(&m.as_str()) {
                let line = toks[i + 2].line;
                for h in &held {
                    if h.lock == name {
                        if !allows.suppress(rel, RULE, line) {
                            findings.push(Finding::new(
                                rel,
                                line,
                                RULE,
                                format!(
                                    "`{name}` is acquired again while a guard on `{name}` is \
                                     still live — immediate deadlock with a non-reentrant lock"
                                ),
                            ));
                        }
                    } else {
                        edges
                            .entry((h.lock.clone(), name.to_string()))
                            .or_insert(Edge { file: rel.to_string(), line });
                    }
                }
                // `let [mut] g = name.lock()…` binds a guard; otherwise
                // the acquisition is a statement-scoped temporary.
                let guard = guard_binding(toks, i);
                held.push(Held {
                    lock: name.to_string(),
                    depth: guard.as_ref().map(|_| depth),
                    guard,
                });
                i += 3;
                continue;
            }
        }

        // Guard across a synchronous handoff: `.send(` (channels) or
        // `.join()` (thread handles; the empty-paren requirement keeps
        // `Vec::join(", ")` out).
        if toks[i].tok == Tok::Punct('.') {
            if let Some(Tok::Ident(m)) = toks.get(i + 1).map(|t| &t.tok) {
                let is_send =
                    m == "send" && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct('('));
                let is_join = m == "join"
                    && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct('('))
                    && toks.get(i + 3).map(|t| &t.tok) == Some(&Tok::Punct(')'));
                if is_send || is_join {
                    let line = toks[i + 1].line;
                    // Only let-bound guards count: a temporary guard in
                    // the same statement (e.g. `m.lock().send(x)` on a
                    // locked queue) *is* the handoff, not a held lock.
                    if let Some(h) = held.iter().find(|h| h.depth.is_some()) {
                        if !allows.suppress(rel, RULE, line) {
                            findings.push(Finding::new(
                                rel,
                                line,
                                RULE,
                                format!(
                                    "guard on `{}` is still live across `.{m}(…)` — drop it \
                                     first (scoped block) so the critical section does not \
                                     extend across the handoff",
                                    h.lock
                                ),
                            ));
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// When the acquisition at token `i` (the pooled name) is the rhs of a
/// `let` in the same statement, return the bound guard name.
fn guard_binding(toks: &[Token], i: usize) -> Option<String> {
    // Scan back over path/field segments to the `=`:
    // `let g = self.state.lock()` → the pooled name is the segment tail.
    let mut j = i;
    while j > 0 {
        match &toks[j - 1].tok {
            Tok::Punct('.') | Tok::Punct(':') | Tok::Punct('&') => j -= 1,
            Tok::Ident(_) | Tok::RawIdent(_) => j -= 1,
            _ => break,
        }
    }
    if j == 0 || toks[j - 1].tok != Tok::Punct('=') {
        return None;
    }
    // `… let [mut] g =`
    let mut k = j - 1;
    let name = loop {
        if k == 0 {
            return None;
        }
        k -= 1;
        match &toks[k].tok {
            Tok::Ident(w) if w == "mut" => continue,
            Tok::Ident(w) => break w.clone(),
            _ => return None,
        }
    };
    while k > 0 {
        k -= 1;
        match &toks[k].tok {
            Tok::Ident(w) if w == "mut" => continue,
            Tok::Ident(w) if w == "let" => return Some(name),
            _ => return None,
        }
    }
    None
}

/// Any cycle in `adj`, as a node path `[a, b, …, a]`; deterministic
/// (nodes and successors visited in sorted order).
fn find_cycle<'a>(adj: &BTreeMap<&'a str, Vec<&'a str>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        marks.insert(node, Mark::Grey);
        stack.push(node);
        let mut succs: Vec<&str> = adj.get(node).cloned().unwrap_or_default();
        succs.sort_unstable();
        for s in succs {
            match marks.get(s).copied().unwrap_or(Mark::White) {
                Mark::Grey => {
                    let start = stack
                        .iter()
                        .position(|&n| n == s)
                        .expect("grey nodes are on the DFS stack");
                    let mut cycle: Vec<String> =
                        stack[start..].iter().map(|s| s.to_string()).collect();
                    cycle.push(s.to_string());
                    return Some(cycle);
                }
                Mark::White => {
                    if let Some(c) = dfs(s, adj, marks, stack) {
                        return Some(c);
                    }
                }
                Mark::Black => {}
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
        None
    }
    let mut marks: BTreeMap<&str, Mark> = BTreeMap::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for n in nodes {
        if marks.get(n).copied().unwrap_or(Mark::White) == Mark::White {
            let mut stack = Vec::new();
            if let Some(c) = dfs(n, adj, &mut marks, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn analyze(files: &[(&str, &str)]) -> (Vec<Finding>, usize) {
        let lexed: Vec<(String, Lexed)> =
            files.iter().map(|(rel, src)| (rel.to_string(), lex(src))).collect();
        let g = Graph::build(&lexed);
        let mut allows = Allows::default();
        for (rel, lx) in &lexed {
            allows.parse_file(rel, &lx.comments);
        }
        run(&g, &lexed, &mut allows)
    }

    #[test]
    fn nested_acquisition_in_opposite_orders_is_a_cycle() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }\n\
                   fn g(s: &S) { let gb = s.b.lock(); let ga = s.a.lock(); }";
        let (fs, locks) = analyze(&[("crates/runtime/src/x.rs", src)]);
        assert_eq!(locks, 2);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, RULE);
        assert!(fs[0].message.contains("cycle"), "{}", fs[0].message);
    }

    #[test]
    fn consistent_hierarchy_is_clean() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }\n\
                   fn g(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }";
        let (fs, _) = analyze(&[("crates/runtime/src/x.rs", src)]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn double_acquire_is_immediate() {
        let src = "struct S { a: Mutex<u32> }\n\
                   fn f(s: &S) { let g1 = s.a.lock(); let g2 = s.a.lock(); }";
        let (fs, _) = analyze(&[("crates/runtime/src/x.rs", src)]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("acquired again"), "{}", fs[0].message);
    }

    #[test]
    fn guard_across_send_found_scoped_drop_clean() {
        let bad = "struct S { obs: Mutex<u32> }\n\
                   fn f(s: &S, tx: &Sender<u32>) {\n    let g = s.obs.lock();\n    tx.send(1);\n}";
        let (fs, _) = analyze(&[("crates/runtime/src/x.rs", bad)]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("across `.send"), "{}", fs[0].message);
        assert_eq!(fs[0].line, 4);

        let good = "struct S { obs: Mutex<u32> }\n\
                    fn f(s: &S, tx: &Sender<u32>) {\n    { let g = s.obs.lock(); }\n    tx.send(1);\n}";
        let (fs, _) = analyze(&[("crates/runtime/src/x.rs", good)]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "struct S { obs: Mutex<u32> }\n\
                   fn f(s: &S, tx: &Sender<u32>) {\n    let g = s.obs.lock();\n    drop(g);\n    tx.send(1);\n}";
        let (fs, _) = analyze(&[("crates/runtime/src/x.rs", src)]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn join_with_args_is_not_a_thread_join() {
        let src = "struct S { a: Mutex<u32> }\n\
                   fn f(s: &S, parts: &[String]) {\n    let g = s.a.lock();\n    let j = parts.join(\", \");\n}";
        let (fs, _) = analyze(&[("crates/runtime/src/x.rs", src)]);
        assert!(fs.is_empty(), "{fs:?}");

        let bad = "struct S { a: Mutex<u32> }\n\
                   fn f(s: &S, h: Handle) {\n    let g = s.a.lock();\n    h.join();\n}";
        let (fs, _) = analyze(&[("crates/runtime/src/x.rs", bad)]);
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn pool_gating_keeps_io_write_out() {
        let src = "fn f(mut file: File, buf: &[u8]) { file.write(buf); let r = reader.read(); }";
        let (fs, locks) = analyze(&[("crates/runtime/src/x.rs", src)]);
        assert_eq!(locks, 0);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn rwlock_read_write_acquisitions_count() {
        let src = "struct S { idx: RwLock<u32>, log: Mutex<u32> }\n\
                   fn f(s: &S) { let g = s.idx.read(); let h = s.log.lock(); }\n\
                   fn g(s: &S) { let h = s.log.lock(); let g = s.idx.write(); }";
        let (fs, locks) = analyze(&[("crates/runtime/src/x.rs", src)]);
        assert_eq!(locks, 2);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("cycle"));
    }

    #[test]
    fn arc_mutex_constructor_binding_is_pooled() {
        let src = "fn f() { let shared = Arc::new(Mutex::new(0)); let g = shared.lock(); let h = shared.lock(); }";
        let (fs, locks) = analyze(&[("crates/runtime/src/x.rs", src)]);
        assert_eq!(locks, 1);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("acquired again"));
    }

    #[test]
    fn allow_suppresses_a_known_send_site() {
        let src = "struct S { obs: Mutex<u32> }\n\
                   fn f(s: &S, tx: &Sender<u32>) {\n    let g = s.obs.lock();\n    // simlint: allow(lock-order, \"receiver never takes obs\")\n    tx.send(1);\n}";
        let (fs, _) = analyze(&[("crates/runtime/src/x.rs", src)]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "struct S { a: Mutex<u32> }\n#[cfg(test)]\nmod t {\n    fn f(s: &super::S) { let g1 = s.a.lock(); let g2 = s.a.lock(); }\n}";
        let (fs, _) = analyze(&[("crates/runtime/src/x.rs", src)]);
        assert!(fs.is_empty(), "{fs:?}");
    }
}
