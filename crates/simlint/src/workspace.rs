//! Workspace discovery: find the root, walk the tree, map files to
//! crates and crates to determinism tiers.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How strictly a crate is held to the determinism rules (D1–D3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Inside the simulation boundary: everything must be a pure function
    /// of (config, seed). Wall-clock, ambient entropy and hash-order
    /// iteration are findings.
    Deterministic,
    /// Outside the boundary (threaded runtime, benches, CLI): D1–D3 do
    /// not apply, but the meta-rules (D4) and the unwrap budget (D5) do.
    Exempt,
}

/// Crates inside the simulation boundary. Everything else is exempt.
/// `runtime` is exempt by design — it is the real-thread harness whose
/// whole job is to exercise wall-clock behaviour; `bench`/`cli` talk to
/// the outside world; `root` is the integration-test umbrella package.
const DETERMINISTIC: &[&str] = &[
    "sim",
    "core",
    "causality",
    "baselines",
    "storage",
    "metrics",
    "harness",
    "telemetry",
    "simlint",
];

/// Directories never descended into. `compat/` holds vendored
/// third-party subsets we do not own the style of.
const SKIP_DIRS: &[&str] = &["target", ".git", "compat", ".github"];

/// The tier of a crate key from [`crate_key`].
pub fn tier_of(key: &str) -> Tier {
    if DETERMINISTIC.contains(&key) {
        Tier::Deterministic
    } else {
        Tier::Exempt
    }
}

/// Map a root-relative path (forward slashes) to its owning crate key:
/// `crates/<name>/…` → `<name>`, anything else (root `src/`, `tests/`,
/// `examples/`) → `root`.
pub fn crate_key(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    "root".to_string()
}

/// True when the path itself marks test-only code: integration tests,
/// benches and examples are compiled into separate test/bench binaries,
/// so the determinism rules D1–D3 do not apply (the unwrap budget still
/// does).
pub fn path_is_test(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

/// Walk up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collect every `.rs` file under `root` (skipping `SKIP_DIRS`),
/// keyed by root-relative forward-slash path. The BTreeMap makes the
/// scan order — and therefore every diagnostic and the JSON report —
/// independent of filesystem enumeration order.
pub fn collect_rs_files(root: &Path) -> io::Result<BTreeMap<String, PathBuf>> {
    let mut out = BTreeMap::new();
    walk(root, root, &mut out)?;
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| io::Error::new(io::ErrorKind::Other, "path escaped root"))?;
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.insert(rel, path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_keys_map_as_expected() {
        assert_eq!(crate_key("crates/sim/src/lib.rs"), "sim");
        assert_eq!(crate_key("crates/core/tests/proptests.rs"), "core");
        assert_eq!(crate_key("src/lib.rs"), "root");
        assert_eq!(crate_key("tests/determinism.rs"), "root");
    }

    #[test]
    fn tiers_split_on_the_simulation_boundary() {
        for k in ["sim", "core", "causality", "harness", "telemetry", "simlint", "storage"] {
            assert_eq!(tier_of(k), Tier::Deterministic, "{k}");
        }
        for k in ["runtime", "bench", "cli", "root", "unknown-crate"] {
            assert_eq!(tier_of(k), Tier::Exempt, "{k}");
        }
    }

    #[test]
    fn path_test_detection() {
        assert!(path_is_test("tests/determinism.rs"));
        assert!(path_is_test("crates/core/tests/proptests.rs"));
        assert!(path_is_test("crates/bench/benches/scheduler_micro.rs"));
        assert!(!path_is_test("crates/core/src/protocol.rs"));
    }

    #[test]
    fn find_root_locates_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root must exist above simlint");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates/simlint").exists());
    }
}
