//! Fixture corpus: every rule exercised in both directions (firing and
//! deliberately quiet), with the lexer edge cases that make a
//! token-level linter worth having over grep — rule tokens inside
//! strings, comments, raw strings and test modules.

use simlint::lexer::lex;
use simlint::report::{Finding, Report};
use simlint::rules::check_source;
use simlint::workspace::Tier;
use simlint::{baseline, rules, workspace};

fn det(src: &str) -> Vec<Finding> {
    // Sort the way Report::sort does — rule evaluation order within one
    // file is an implementation detail.
    let mut f = check_source("fixture.rs", Tier::Deterministic, &lex(src), false).findings;
    f.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    f
}

fn rule_ids(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_fires_on_each_wall_clock_source() {
    let f = det("let a = Instant::now();\nlet b = SystemTime::now();\nstd::thread::sleep(d);");
    assert_eq!(rule_ids(&f), vec!["wall-clock"; 3]);
    assert_eq!(f.iter().map(|x| x.line).collect::<Vec<_>>(), vec![1, 2, 3]);
}

#[test]
fn d1_quiet_on_exempt_tier_simulated_time_and_unrelated_sleep() {
    let f = check_source(
        "fixture.rs",
        Tier::Exempt,
        &lex("let a = Instant::now(); thread::sleep(d);"),
        false,
    );
    assert!(f.findings.is_empty());
    assert!(det("let t = VirtualTime::ZERO; sched.sleep(dur); let instant_ish = 3;").is_empty());
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_fires_on_every_iteration_method() {
    for m in ["iter", "iter_mut", "keys", "values", "values_mut", "drain", "retain", "into_iter"] {
        let src = format!("let m: HashMap<u32, u32> = make();\nlet v = m.{m}(|_| true);");
        let f = det(&src);
        assert_eq!(rule_ids(&f), vec!["unordered-iter"], "method {m}");
        assert_eq!(f[0].line, 2, "method {m}");
    }
}

#[test]
fn d2_fires_on_struct_field_and_for_loop() {
    let f = det("struct S { seen: HashSet<u64> }\nfn f(s: &S) { for x in &s.seen { use_it(x) } }");
    assert_eq!(rule_ids(&f), vec!["unordered-iter"]);
    let f = det("let mut pending = HashMap::new();\nfor (k, v) in &mut pending { touch(k, v) }");
    assert_eq!(rule_ids(&f), vec!["unordered-iter"]);
}

#[test]
fn d2_quiet_on_point_access_btree_and_vec() {
    let quiet = "let m: HashMap<u32, u32> = make();\n\
                 let a = m.get(&1); let b = m.contains_key(&2); m.insert(3, 4); m.remove(&3);\n\
                 let t: BTreeMap<u32, u32> = make();\nfor (k, v) in t.iter() { use_it(k, v) }\n\
                 let v: Vec<u32> = make();\nfor x in v.iter() { use_it(x) }";
    assert!(det(quiet).is_empty(), "{:?}", det(quiet));
}

// ---------------------------------------------------------------- D3

#[test]
fn d3_fires_on_each_entropy_source() {
    let f =
        det("let r = thread_rng();\nlet s = SmallRng::from_entropy();\nlet h: RandomState = d();");
    assert_eq!(rule_ids(&f), vec!["ambient-entropy"; 3]);
}

#[test]
fn d3_quiet_on_seeded_rng() {
    assert!(det("let r = SimRng::seed_from_u64(cfg.seed); let x = r.next_u64();").is_empty());
}

// ------------------------------------------------- lexer edge cases

#[test]
fn rule_tokens_hidden_in_literals_and_comments_never_fire() {
    let src = r##"
        let doc = "Instant::now(), thread_rng() and HashMap iteration are banned";
        // Instant, SystemTime, thread_rng — discussing, not invoking
        /* HashMap .keys() inside /* a nested */ block comment */
        let raw = r#"RandomState "with # inside" and .drain()"#;
        let bytes = b"SystemTime";
        let ch = 'I';
    "##;
    assert!(det(src).is_empty(), "{:?}", det(src));
}

#[test]
fn cfg_test_modules_and_test_fns_are_exempt_from_d1_d3() {
    let src = "fn live() {}\n\
               #[cfg(test)]\nmod tests {\n    use super::*;\n\
               #[test]\n    fn t() {\n        let i = Instant::now();\n        let r = thread_rng();\n\
               let m: HashMap<u8, u8> = make();\n        for k in m.keys() { use_it(k) }\n    }\n}";
    assert!(det(src).is_empty(), "{:?}", det(src));
}

#[test]
fn hazards_before_and_after_a_test_mod_still_fire() {
    let src =
        "let a = Instant::now();\n#[cfg(test)]\nmod tests { fn t() {} }\nlet b = Instant::now();";
    let f = det(src);
    assert_eq!(f.iter().map(|x| x.line).collect::<Vec<_>>(), vec![1, 4]);
}

#[test]
fn integration_test_paths_skip_d1_d3() {
    let c = check_source(
        "crates/core/tests/proptests.rs",
        Tier::Deterministic,
        &lex("let i = Instant::now();"),
        workspace::path_is_test("crates/core/tests/proptests.rs"),
    );
    assert!(c.findings.is_empty());
}

// ------------------------------------------------------------ allows

#[test]
fn allow_suppresses_only_the_named_rule_nearby() {
    let ok = "// simlint: allow(wall-clock, \"self-measurement only\")\nlet t = Instant::now();";
    assert!(det(ok).is_empty());

    // Wrong rule name: the finding stands and the allow is unused.
    let wrong = "// simlint: allow(ambient-entropy, \"mismatched\")\nlet t = Instant::now();";
    let f = det(wrong);
    assert_eq!(rule_ids(&f), vec!["allow-unused", "wall-clock"]);

    // Too far away: two lines below the allow.
    let far = "// simlint: allow(wall-clock, \"too far\")\nlet x = 1;\nlet t = Instant::now();";
    let f = det(far);
    assert_eq!(rule_ids(&f), vec!["allow-unused", "wall-clock"]);
}

#[test]
fn allow_hygiene_is_enforced() {
    let f = det("// simlint: allow(wall-clock, \"\")\nlet t = Instant::now();");
    assert_eq!(rule_ids(&f), vec!["allow-unjustified"]);
    let f = det("// simlint: allou(wall-clock, \"typo\")\nlet t = Instant::now();");
    assert_eq!(rule_ids(&f), vec!["allow-malformed", "wall-clock"]);
    // Prose that merely mentions the syntax is not an allow.
    let f =
        det("// the `simlint: allow(rule, \"why\")` form is documented in DESIGN.md\nlet x = 1;");
    assert!(f.is_empty(), "{f:?}");
}

// ---------------------------------------------------------------- D4

#[test]
fn d4_forbid_unsafe_both_directions() {
    let with =
        check_source("crates/x/src/lib.rs", Tier::Exempt, &lex("#![forbid(unsafe_code)]"), false);
    assert!(with.has_forbid_unsafe);
    let without =
        check_source("crates/x/src/lib.rs", Tier::Exempt, &lex("//! docs only\nfn f() {}"), false);
    assert!(!without.has_forbid_unsafe);
    // The string form must not count.
    let fake = check_source("x.rs", Tier::Exempt, &lex("let s = \"forbid(unsafe_code)\";"), false);
    assert!(!fake.has_forbid_unsafe);
}

#[test]
fn d4_anchor_extraction_from_comments_not_strings() {
    let marker = "OCPT \u{a7}";
    let src = format!("// [{marker}3.4.3] receive-side case analysis\nlet s = \"[{marker}9.9]\";");
    let c = check_source("x.rs", Tier::Deterministic, &lex(&src), false);
    assert_eq!(c.anchors, vec![("3.4.3".to_string(), 1)]);
    assert_eq!(
        rules::extract_anchor_labels(&format!("| [{marker}2.2] | table row |")),
        vec!["2.2"]
    );
    assert!(rules::extract_anchor_labels("no anchors here").is_empty());
}

// ---------------------------------------------------------------- D5

#[test]
fn d5_budget_fires_above_is_stale_below_and_quiet_at_exact() {
    let counts = |n: usize| std::collections::BTreeMap::from([("core".to_string(), n)]);
    let base = baseline::format(&counts(2), &[]);
    assert!(baseline::compare(Some(&base), &counts(2)).is_empty());
    let over = baseline::compare(Some(&base), &counts(3));
    assert_eq!(rule_ids(&over), vec!["unwrap-budget"]);
    assert!(over[0].message.contains("expect"));
    let stale = baseline::compare(Some(&base), &counts(1));
    assert_eq!(rule_ids(&stale), vec!["unwrap-budget"]);
    assert!(stale[0].message.contains("stale"));
}

#[test]
fn d5_counts_unwraps_everywhere_but_not_in_literals() {
    let src = "fn f() { a.unwrap(); }\n#[cfg(test)]\nmod t { fn g() { b.unwrap(); } }\n\
               let s = \".unwrap()\"; // .unwrap() in comment\nlet w = c.unwrap_or(0);";
    let c = check_source("x.rs", Tier::Deterministic, &lex(src), false);
    assert_eq!(c.unwraps, 2);
}

// ------------------------------------------------------------ report

#[test]
fn report_output_is_sorted_and_json_parses_shape() {
    let mut r = Report {
        findings: vec![
            Finding::new("z.rs", 1, "wall-clock", "m".into()),
            Finding::new("a.rs", 7, "anchor", "q\"uote".into()),
        ],
        unwraps: std::collections::BTreeMap::from([("core".to_string(), 0usize)]),
        files_scanned: 2,
        ..Report::default()
    };
    r.sort();
    assert_eq!(r.findings[0].file, "a.rs");
    let text = r.to_text();
    assert!(text.lines().next().is_some_and(|l| l.starts_with("a.rs:7: [anchor]")));
    let json = r.to_json();
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("q\\\"uote"));
    assert!(json.contains("\"core\": 0"));
}

// ------------------------------------------ workspace analysis helpers

/// Analyze an in-memory workspace with an empty (but valid v2) baseline.
fn ws(files: &[(&str, &str)]) -> Report {
    let files: Vec<(String, String)> =
        files.iter().map(|&(rel, src)| (rel.to_string(), src.to_string())).collect();
    let base = baseline::format(&std::collections::BTreeMap::new(), &[]);
    simlint::analyze(&files, "", Some(&base))
}

// ----------------------------------------------- transitive D1–D3

#[test]
fn transitive_wall_clock_chain_crosses_crates_and_prints_via_lines() {
    let r = ws(&[
        ("crates/harness/src/x.rs", "fn drive() { helper(); }"),
        ("crates/runtime/src/h.rs", "pub fn helper() { let t = Instant::now(); }"),
    ]);
    let leaks: Vec<&Finding> = r.findings.iter().filter(|f| f.rule == "wall-clock").collect();
    assert_eq!(leaks.len(), 1, "{:?}", r.findings);
    let f = leaks[0];
    assert_eq!(f.file, "crates/harness/src/x.rs");
    assert!(!f.chain.is_empty(), "boundary finding must carry its chain");
    assert_eq!(f.chain.last().expect("chain has a source step").func, "Instant");
    let text = r.to_text();
    assert!(text.contains("via "), "{text}");
    let json = r.to_json();
    assert!(json.contains("\"chain\": [{\"func\""), "{json}");
}

#[test]
fn clean_cross_crate_call_stays_quiet() {
    let r = ws(&[
        ("crates/harness/src/x.rs", "fn drive() { helper(); }"),
        ("crates/runtime/src/h.rs", "pub fn helper() { let t = now_ticks(); }"),
    ]);
    assert!(r.clean(), "{:?}", r.findings);
    assert!(r.stats.functions >= 2);
    assert!(r.stats.call_edges >= 1);
}

// ------------------------------------------------------- D6 fixtures

const D6_CYCLE: &str = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                        fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }\n\
                        fn g(s: &S) { let gb = s.b.lock(); let ga = s.a.lock(); }";

#[test]
fn d6_cycle_fires_and_consistent_hierarchy_is_clean() {
    let r = ws(&[("crates/runtime/src/l.rs", D6_CYCLE)]);
    assert_eq!(rule_ids(&r.findings), vec!["lock-order"], "{:?}", r.findings);
    assert!(r.findings[0].message.contains("cycle"));
    assert_eq!(r.stats.locks_tracked, 2);

    let clean = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                 fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }\n\
                 fn g(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }";
    let r = ws(&[("crates/runtime/src/l.rs", clean)]);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn d6_guard_across_send_fires_and_scoped_drop_is_clean() {
    let bad = "struct S { obs: Mutex<u32> }\n\
               fn f(s: &S, tx: &Sender<u32>) {\n    let g = s.obs.lock();\n    tx.send(1);\n}";
    let r = ws(&[("crates/runtime/src/l.rs", bad)]);
    assert_eq!(rule_ids(&r.findings), vec!["lock-order"], "{:?}", r.findings);
    assert!(r.findings[0].message.contains("across `.send"));

    let good = "struct S { obs: Mutex<u32> }\n\
                fn f(s: &S, tx: &Sender<u32>) {\n    { let g = s.obs.lock(); }\n    tx.send(1);\n}";
    let r = ws(&[("crates/runtime/src/l.rs", good)]);
    assert!(r.clean(), "{:?}", r.findings);
}

// ------------------------------------------------------- D7 fixtures

const D7_CODECS: &str = "pub enum K { A, B }\n\
                         pub fn encode_k(k: &K) -> u8 { match k { K::A => 0, K::B => 1 } }\n\
                         pub fn decode_k(x: u8) -> K { if x == 0 { K::A } else { K::B } }\n";

#[test]
fn d7_missing_handler_arm_fires_and_exhaustive_match_is_clean() {
    let src = "pub enum K { A, B, C }\n\
               pub fn encode_k(k: &K) -> u8 { match k { K::A => 0, K::B => 1, K::C => 2 } }\n\
               pub fn decode_k(x: u8) -> K { if x == 0 { K::A } else if x == 1 { K::B } else { K::C } }\n\
               fn handle(k: &K) { match k { K::A => {}, K::B => {} } }";
    let r = ws(&[("crates/core/src/k.rs", src)]);
    assert_eq!(rule_ids(&r.findings), vec!["protocol-exhaustiveness"], "{:?}", r.findings);
    assert!(r.findings[0].message.contains("K::C"), "{}", r.findings[0].message);
    assert_eq!(r.stats.enums_checked, 1);

    let full =
        format!("{D7_CODECS}fn handle(k: &K) {{ match k {{ K::A => {{}}, K::B => {{}} }} }}");
    let r = ws(&[("crates/core/src/k.rs", &full)]);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn d7_missing_decoder_arm_fires() {
    let src = "pub enum K { A, B }\n\
               pub fn encode_k(k: &K) -> u8 { match k { K::A => 0, K::B => 1 } }\n\
               pub fn decode_k(_x: u8) -> K { K::A }";
    let r = ws(&[("crates/core/src/k.rs", src)]);
    assert_eq!(rule_ids(&r.findings), vec!["protocol-exhaustiveness"], "{:?}", r.findings);
    assert!(r.findings[0].message.contains("never reconstructed"), "{}", r.findings[0].message);
}

#[test]
fn d7_wildcard_match_fires_and_justified_allow_silences_it() {
    let bad = format!("{D7_CODECS}fn handle(k: &K) {{ match k {{ K::A => {{}}, _ => {{}} }} }}");
    let r = ws(&[("crates/core/src/k.rs", &bad)]);
    assert_eq!(rule_ids(&r.findings), vec!["protocol-exhaustiveness"], "{:?}", r.findings);
    assert!(r.findings[0].message.contains("catch-all"));

    let allowed = format!(
        "{D7_CODECS}fn handle(k: &K) {{\n    match k {{\n        K::A => {{}},\n\
         // simlint: allow(protocol-exhaustiveness, \"only A is routed here; the rest are opaque\")\n\
         _ => {{}},\n    }}\n}}"
    );
    let r = ws(&[("crates/core/src/k.rs", &allowed)]);
    assert!(r.clean(), "{:?}", r.findings);
}

// --------------------------------------------- baseline v2 accepts

#[test]
fn baseline_v2_accept_round_trip_suppresses_then_goes_stale() {
    let files = [("crates/runtime/src/l.rs", D6_CYCLE)];
    let r1 = ws(&files);
    assert_eq!(rule_ids(&r1.findings), vec!["lock-order"]);

    // --write-baseline output: carries an accept line for the finding.
    let base2 = simlint::render_baseline(&r1);
    assert!(base2.contains("version 2"), "{base2}");
    assert!(base2.contains("accept lock-order crates/runtime/src/l.rs"), "{base2}");

    // Re-linting against the regenerated baseline is clean, and the
    // accept is recorded as applied (so a further rewrite keeps it).
    let files_owned: Vec<(String, String)> =
        files.iter().map(|&(rel, src)| (rel.to_string(), src.to_string())).collect();
    let r2 = simlint::analyze(&files_owned, "", Some(&base2));
    assert!(r2.clean(), "{:?}", r2.findings);
    assert_eq!(r2.applied_accepts.len(), 1);
    assert!(simlint::render_baseline(&r2).contains("accept lock-order"), "rewrite keeps accepts");

    // Fixing the cycle turns the accept stale.
    let fixed = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                 fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }\n\
                 fn g(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }";
    let fixed_owned = vec![("crates/runtime/src/l.rs".to_string(), fixed.to_string())];
    let r3 = simlint::analyze(&fixed_owned, "", Some(&base2));
    assert_eq!(rule_ids(&r3.findings), vec!["stale-accept"], "{:?}", r3.findings);
    assert!(r3.findings[0].message.contains("regenerate"));
}

#[test]
fn local_findings_cannot_be_baseline_accepted() {
    // A direct (chain-less) D1 hit must not be acceptable: only source
    // allows can excuse it.
    let files =
        vec![("crates/sim/src/t.rs".to_string(), "fn f() { let t = Instant::now(); }".to_string())];
    let base = baseline::format(&std::collections::BTreeMap::new(), &[]);
    let r1 = simlint::analyze(&files, "", Some(&base));
    assert_eq!(rule_ids(&r1.findings), vec!["wall-clock"]);
    let rewritten = simlint::render_baseline(&r1);
    assert!(!rewritten.lines().any(|l| l.starts_with("accept ")), "{rewritten}");
    let r2 = simlint::analyze(&files, "", Some(&rewritten));
    assert_eq!(rule_ids(&r2.findings), vec!["wall-clock"], "still failing after rewrite");
}

// ------------------------------------------------------ explain docs

#[test]
fn explain_covers_every_rule_with_fixture_style_examples() {
    for (alias, id) in [
        ("D1", "wall-clock"),
        ("D2", "unordered-iter"),
        ("D3", "ambient-entropy"),
        ("D4", "forbid-unsafe"),
        ("D5", "unwrap-budget"),
        ("D6", "lock-order"),
        ("D7", "protocol-exhaustiveness"),
    ] {
        let text = simlint::explain::explain(id).expect(id);
        assert_eq!(simlint::explain::explain(alias).expect(alias), text, "{alias}");
        assert!(text.contains("fails:") && text.contains("passes:"), "{id}");
    }
    // The D6/D7 examples describe the same hazards the fixtures pin.
    let d6 = simlint::explain::explain("D6").expect("d6");
    assert!(d6.contains(".send"), "{d6}");
    let d7 = simlint::explain::explain("D7").expect("d7");
    assert!(d7.contains("CtrlKind"), "{d7}");
}
