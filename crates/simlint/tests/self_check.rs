//! The lint linting the repo that ships it: `cargo test` fails if the
//! live workspace has any finding, so determinism violations cannot land
//! without either fixing them or leaving a justified, visible allow.

use std::path::Path;

#[test]
fn live_workspace_is_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = simlint::find_root(here).expect("simlint lives inside the workspace");
    let report = simlint::run(&root, false).expect("workspace scan must succeed");
    assert!(report.clean(), "simlint findings in the live workspace:\n{}", report.to_text());
    // Sanity: the scan really covered the tree (not an empty walk).
    assert!(report.files_scanned > 80, "only {} files scanned", report.files_scanned);
    let zero = |k: &str| report.unwraps.get(k).copied().unwrap_or(0);
    assert_eq!(zero("core"), 0, "core must stay unwrap-free (use expect with an invariant)");
    assert_eq!(zero("sim"), 0, "sim must stay unwrap-free (use expect with an invariant)");
}

#[test]
fn workspace_json_report_is_well_formed() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = simlint::find_root(here).expect("simlint lives inside the workspace");
    let report = simlint::run(&root, false).expect("workspace scan must succeed");
    let json = report.to_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"unwraps\""));
}
