//! The lint linting the repo that ships it: `cargo test` fails if the
//! live workspace has any finding, so determinism violations cannot land
//! without either fixing them or leaving a justified, visible allow.

use std::path::Path;

#[test]
fn live_workspace_is_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = simlint::find_root(here).expect("simlint lives inside the workspace");
    let report = simlint::run(&root, false).expect("workspace scan must succeed");
    assert!(report.clean(), "simlint findings in the live workspace:\n{}", report.to_text());
    // Sanity: the scan really covered the tree (not an empty walk).
    assert!(report.files_scanned > 80, "only {} files scanned", report.files_scanned);
    let zero = |k: &str| report.unwraps.get(k).copied().unwrap_or(0);
    assert_eq!(zero("core"), 0, "core must stay unwrap-free (use expect with an invariant)");
    assert_eq!(zero("sim"), 0, "sim must stay unwrap-free (use expect with an invariant)");
    // The symbol graph really resolved the tree — a lexer or parser
    // regression that drops every function would otherwise read as clean.
    assert!(report.stats.functions > 200, "only {} functions in graph", report.stats.functions);
    assert!(report.stats.call_edges > 500, "only {} call edges", report.stats.call_edges);
    assert!(
        report.stats.enums_checked >= 4,
        "Envelope, Status, CtrlKind and Direction are protocol enums; got {}",
        report.stats.enums_checked
    );
}

#[test]
fn committed_baseline_is_v2_and_byte_exact() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = simlint::find_root(here).expect("simlint lives inside the workspace");
    let committed = std::fs::read_to_string(root.join(simlint::baseline::BASELINE_FILE))
        .expect("baseline is committed");
    assert!(committed.lines().any(|l| l.trim() == "version 2"), "committed baseline must be v2");
    // `--write-baseline` must be a no-op on a clean tree: what a rewrite
    // would produce is exactly what is committed.
    let report = simlint::run(&root, false).expect("workspace scan must succeed");
    assert_eq!(
        simlint::render_baseline(&report),
        committed,
        "committed simlint.baseline is stale — run `cargo run -p simlint -- --write-baseline`"
    );
}

#[test]
fn workspace_json_report_is_well_formed() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = simlint::find_root(here).expect("simlint lives inside the workspace");
    let report = simlint::run(&root, false).expect("workspace scan must succeed");
    let json = report.to_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"unwraps\""));
}
