//! Cluster orchestration: spawn N node threads, wire the channel mesh,
//! inject workload, await finalizations, shut down cleanly.

use std::collections::HashSet;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ocpt_causality::GlobalObserver;
use ocpt_core::{Csn, OcptConfig};
use ocpt_sim::ProcessId;

use crate::node::{run_node, Command, NodeCtx, NodeInput, StatusEvent};
use crate::storage::StableStore;
use crate::sync::Mutex;

/// A running cluster of OCPT nodes on OS threads.
pub struct Cluster {
    n: usize,
    cmd_tx: Vec<Sender<NodeInput>>,
    status_rx: Receiver<StatusEvent>,
    store: Arc<StableStore>,
    observer: Arc<Mutex<GlobalObserver>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Errors from cluster-level waits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// A node reported a protocol error.
    Node(String),
    /// The wait deadline passed.
    Timeout,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Node(d) => write!(f, "node error: {d}"),
            ClusterError::Timeout => write!(f, "timed out"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl Cluster {
    /// Spawn `n` nodes with the given protocol configuration.
    pub fn start(n: usize, cfg: OcptConfig) -> Cluster {
        assert!(n >= 2);
        cfg.validate().expect("invalid config");
        let store = Arc::new(StableStore::new());
        let observer = Arc::new(Mutex::new(GlobalObserver::new(n)));
        let (status_tx, status_rx) = channel();
        let mut inboxes_tx = Vec::with_capacity(n);
        let mut inboxes_rx = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            inboxes_tx.push(tx);
            inboxes_rx.push(rx);
        }
        let mut cmd_tx = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (i, inbox) in inboxes_rx.into_iter().enumerate() {
            // Commands ride the same merged inbox as network bytes.
            cmd_tx.push(inboxes_tx[i].clone());
            let ctx = NodeCtx {
                pid: ProcessId(i as u32),
                n,
                cfg,
                inbox,
                peers: inboxes_tx.clone(),
                status: status_tx.clone(),
                store: store.clone(),
                observer: observer.clone(),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ocpt-node-{i}"))
                    .spawn(move || run_node(ctx))
                    .expect("spawn node"),
            );
        }
        Cluster { n, cmd_tx, status_rx, store, observer, handles }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Inject an application send.
    pub fn send_app(&self, src: ProcessId, dst: ProcessId, len: u32) {
        self.cmd_tx[src.index()]
            .send(NodeInput::Cmd(Command::SendApp { dst, len }))
            .expect("node alive");
    }

    /// Ask a node to take its scheduled checkpoint now.
    pub fn checkpoint(&self, pid: ProcessId) {
        self.cmd_tx[pid.index()].send(NodeInput::Cmd(Command::Checkpoint)).expect("node alive");
    }

    /// Block until every node has finalized checkpoint `csn` (or error).
    pub fn wait_for_round(&self, csn: Csn, timeout: Duration) -> Result<(), ClusterError> {
        let deadline = Instant::now() + timeout;
        let mut done: HashSet<ProcessId> = HashSet::new();
        while done.len() < self.n {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ClusterError::Timeout);
            }
            match self.status_rx.recv_timeout(left) {
                Ok(StatusEvent::Finalized { pid, csn: c }) if c == csn => {
                    done.insert(pid);
                }
                Ok(StatusEvent::Finalized { .. }) | Ok(StatusEvent::Stopped { .. }) => {}
                Ok(StatusEvent::Error { detail, .. }) => {
                    return Err(ClusterError::Node(detail));
                }
                Err(_) => return Err(ClusterError::Timeout),
            }
        }
        Ok(())
    }

    /// The shared stable store.
    pub fn store(&self) -> &Arc<StableStore> {
        &self.store
    }

    /// The shared consistency oracle.
    pub fn observer(&self) -> &Arc<Mutex<GlobalObserver>> {
        &self.observer
    }

    /// Stop all nodes and join their threads.
    pub fn shutdown(self) {
        for tx in &self.cmd_tx {
            let _ = tx.send(NodeInput::Cmd(Command::Shutdown));
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}
