//! Shared in-memory stable storage for the threaded runtime.
//!
//! Plays the role of the network file server: one shared, synchronised
//! store all nodes write finalized checkpoints to. Writes are durable the
//! moment `put` returns (the runtime exists to exercise the protocol under
//! real concurrency; storage *timing* is the simulator's job).

use std::collections::BTreeMap;

use bytes::Bytes;
use ocpt_core::Csn;
use ocpt_sim::ProcessId;

use crate::sync::Mutex;

/// One durable checkpoint record.
#[derive(Clone, Debug)]
pub struct DurableCheckpoint {
    /// Encoded tentative-checkpoint state.
    pub state: Bytes,
    /// Encoded message log.
    pub log: Bytes,
}

/// The shared store.
///
/// Keyed `(pid, csn)` in an ordered map: `recovery_line` walks the keys,
/// and the walk order must not depend on hash state even here — the
/// threaded runtime's assertions compare against the simulator's output.
#[derive(Debug, Default)]
pub struct StableStore {
    inner: Mutex<BTreeMap<(u32, Csn), DurableCheckpoint>>,
}

impl StableStore {
    /// An empty store.
    pub fn new() -> Self {
        StableStore::default()
    }

    /// Persist a finalized checkpoint.
    pub fn put(&self, pid: ProcessId, csn: Csn, state: Bytes, log: Bytes) {
        let mut g = self.inner.lock();
        let prev = g.insert((pid.0, csn), DurableCheckpoint { state, log });
        debug_assert!(prev.is_none(), "{pid} wrote checkpoint {csn} twice");
    }

    /// Fetch a durable checkpoint.
    pub fn get(&self, pid: ProcessId, csn: Csn) -> Option<DurableCheckpoint> {
        self.inner.lock().get(&(pid.0, csn)).cloned()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Greatest `csn` durable on all `n` processes (0 if none).
    pub fn recovery_line(&self, n: usize) -> Csn {
        let g = self.inner.lock();
        let mut per: BTreeMap<Csn, usize> = BTreeMap::new();
        for (_, csn) in g.keys() {
            *per.entry(*csn).or_insert(0) += 1;
        }
        per.into_iter().filter(|&(_, c)| c == n).map(|(k, _)| k).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_and_line() {
        let s = StableStore::new();
        assert!(s.is_empty());
        s.put(ProcessId(0), 1, Bytes::from_static(b"a"), Bytes::new());
        s.put(ProcessId(1), 1, Bytes::from_static(b"b"), Bytes::new());
        assert_eq!(s.len(), 2);
        assert_eq!(s.recovery_line(2), 1);
        assert_eq!(s.recovery_line(3), 0);
        assert_eq!(s.get(ProcessId(0), 1).unwrap().state, Bytes::from_static(b"a"));
        assert!(s.get(ProcessId(0), 2).is_none());
    }
}
