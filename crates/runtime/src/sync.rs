//! Minimal synchronisation wrapper: a `Mutex` with parking_lot-style
//! ergonomics (`lock()` returns the guard directly) built on
//! `std::sync::Mutex`.
//!
//! Poisoning is deliberately ignored: a panicked node thread already
//! fails the run through its status channel, and the observer/store data
//! are plain values that remain internally consistent under panic.

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
