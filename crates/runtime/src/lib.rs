//! # ocpt-runtime — the OCPT protocol on real threads
//!
//! The simulator (`ocpt-harness`) proves properties deterministically; this
//! crate shows the same sans-io state machine is not simulator-bound. Each
//! process is an OS thread; envelopes travel as encoded bytes over
//! `std::sync::mpsc` channels (so the `ocpt_core::wire` codec is exercised
//! for real); the convergence timer is a wall-clock deadline; finalized
//! checkpoints land in a shared [`StableStore`]; and a mutex-guarded
//! [`ocpt_causality::GlobalObserver`] checks Theorem 2 against genuine
//! thread interleavings.
//!
//! ```no_run
//! use ocpt_runtime::Cluster;
//! use ocpt_core::OcptConfig;
//! use ocpt_sim::ProcessId;
//! use std::time::Duration;
//!
//! let cluster = Cluster::start(4, OcptConfig::default());
//! cluster.send_app(ProcessId(0), ProcessId(1), 1024);
//! cluster.checkpoint(ProcessId(0));
//! cluster.wait_for_round(1, Duration::from_secs(5)).unwrap();
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod node;
pub mod storage;
pub mod sync;

pub use cluster::{Cluster, ClusterError};
pub use node::{Command, NodeInput, StatusEvent};
pub use storage::{DurableCheckpoint, StableStore};
