//! One node of the threaded cluster: an OS thread driving an
//! [`OcptProcess`] over real channels, real bytes and a wall clock.
//!
//! Everything that was virtual in the simulator is real here: envelopes
//! are encoded with `ocpt_core::wire` and decoded on receipt, the
//! convergence timer is `recv_timeout` against `Instant`s, and the shared
//! consistency observer is fed in true arrival order — so the test-suite's
//! Theorem 2 check runs against genuine thread interleavings.
//!
//! Each node has a **single** `std::sync::mpsc` inbox carrying both peer
//! network bytes and driver commands ([`NodeInput`]); merging the streams
//! into one channel preserves arrival order without needing a
//! multi-channel `select!`.

use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use ocpt_causality::GlobalObserver;
use ocpt_core::{
    decode_envelope, encode_envelope, Action, AppPayload, AppSnapshot, Csn, Envelope, OcptConfig,
    OcptProcess,
};
use ocpt_sim::{MsgId, ProcessId};

use crate::storage::StableStore;
use crate::sync::Mutex;

/// Driver → node commands.
#[derive(Clone, Debug)]
pub enum Command {
    /// Send an application message of `len` bytes to `dst`.
    SendApp {
        /// Destination node.
        dst: ProcessId,
        /// Payload size.
        len: u32,
    },
    /// Take a scheduled checkpoint now (initiate if `Normal`).
    Checkpoint,
    /// Stop the node thread.
    Shutdown,
}

/// Everything that can arrive on a node's (single, merged) inbox.
#[derive(Clone, Debug)]
pub enum NodeInput {
    /// Encoded envelope bytes from a peer.
    Net(ProcessId, Bytes),
    /// A driver command.
    Cmd(Command),
}

/// Node → driver status events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StatusEvent {
    /// The node finalized checkpoint `csn`.
    Finalized {
        /// Reporting node.
        pid: ProcessId,
        /// Finalized sequence number.
        csn: Csn,
    },
    /// The node hit a protocol error (fatal; tests assert this never fires).
    Error {
        /// Reporting node.
        pid: ProcessId,
        /// Description.
        detail: String,
    },
    /// The node stopped.
    Stopped {
        /// Reporting node.
        pid: ProcessId,
        /// Final checkpoint sequence number.
        csn: Csn,
        /// Checkpoints finalized over the node's lifetime.
        finalized: u64,
    },
}

/// Everything a node thread needs.
pub struct NodeCtx {
    /// This node's id.
    pub pid: ProcessId,
    /// System size.
    pub n: usize,
    /// Protocol configuration.
    pub cfg: OcptConfig,
    /// Merged inbox: peer bytes and driver commands in arrival order.
    pub inbox: Receiver<NodeInput>,
    /// Peer inboxes, indexed by destination.
    pub peers: Vec<Sender<NodeInput>>,
    /// Status stream to the driver.
    pub status: Sender<StatusEvent>,
    /// Shared stable storage.
    pub store: Arc<StableStore>,
    /// Shared consistency oracle.
    pub observer: Arc<Mutex<GlobalObserver>>,
}

/// The node main loop. Runs until `Command::Shutdown`.
pub fn run_node(ctx: NodeCtx) {
    let NodeCtx { pid, n, cfg, inbox, peers, status, store, observer } = ctx;
    let mut proto = OcptProcess::new(pid, n, cfg);
    let mut app = AppSnapshot::initial(pid.0 as u64, cfg.state_bytes);
    let mut next_msg: u64 = 0;
    let mut conv_deadline: Option<(Instant, Csn)> = None;
    let mut pending_snapshot: Option<AppSnapshot> = None;
    let mut finalized: u64 = 0;

    // Executes protocol actions; returns false on fatal error.
    let handle_actions = |proto: &OcptProcess,
                          actions: Vec<Action>,
                          app: &AppSnapshot,
                          pending_snapshot: &mut Option<AppSnapshot>,
                          conv_deadline: &mut Option<(Instant, Csn)>,
                          finalized: &mut u64,
                          trigger_back: &mut u32| {
        for a in actions {
            match a {
                Action::TakeTentative { .. } => {
                    *pending_snapshot = Some(*app);
                }
                Action::Finalize { csn, log, excluded } => {
                    let snap = pending_snapshot.take().unwrap_or(*app);
                    store.put(pid, csn, snap.encode(), log.encode());
                    *finalized += 1;
                    *trigger_back = u32::from(excluded.is_some());
                    {
                        let mut obs = observer.lock();
                        let pos = obs.positions()[pid.index()] - *trigger_back as u64;
                        obs.on_finalize(pid, csn, pos, ocpt_sim::SimTime::ZERO);
                    }
                    let _ = status.send(StatusEvent::Finalized { pid, csn });
                }
                Action::SendCtrl { dst, cm } => {
                    let raw = encode_envelope(&Envelope::Ctrl(cm), n);
                    let _ = peers[dst.index()].send(NodeInput::Net(pid, raw));
                }
                Action::SetTimer { csn } => {
                    *conv_deadline =
                        Some((Instant::now() + to_std(proto.config().convergence_timeout), csn));
                }
                Action::CancelTimer => {
                    *conv_deadline = None;
                }
            }
        }
    };

    let mut trigger_back = 0u32;
    'main: loop {
        // Fire the convergence timer whenever its deadline has passed —
        // checked both on timeout wakeups and between messages, so heavy
        // traffic cannot starve it.
        if let Some((at, csn)) = conv_deadline {
            if Instant::now() >= at {
                conv_deadline = None;
                let mut out = Vec::new();
                proto.on_timer(csn, &mut out);
                handle_actions(
                    &proto,
                    out,
                    &app,
                    &mut pending_snapshot,
                    &mut conv_deadline,
                    &mut finalized,
                    &mut trigger_back,
                );
            }
        }
        let timeout = conv_deadline
            .map(|(at, _)| at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        let input = match inbox.recv_timeout(timeout) {
            Ok(input) => input,
            Err(RecvTimeoutError::Timeout) => continue 'main,
            Err(RecvTimeoutError::Disconnected) => break 'main,
        };
        match input {
            NodeInput::Net(src, raw) => {
                let (env, _) = match decode_envelope(raw) {
                    Ok(v) => v,
                    Err(e) => {
                        let _ = status.send(StatusEvent::Error { pid, detail: e.to_string() });
                        break 'main;
                    }
                };
                match env {
                    Envelope::Ctrl(cm) => {
                        let mut out = Vec::new();
                        if let Err(e) = proto.on_ctrl_receive(src, cm, &mut out) {
                            let _ = status.send(StatusEvent::Error { pid, detail: e.to_string() });
                            break 'main;
                        }
                        handle_actions(
                            &proto,
                            out,
                            &app,
                            &mut pending_snapshot,
                            &mut conv_deadline,
                            &mut finalized,
                            &mut trigger_back,
                        );
                    }
                    Envelope::App { pb, payload } => {
                        // Process first (paper §3.4.3), then the case analysis.
                        let msg_id = MsgId(payload.id);
                        observer.lock().on_recv(pid, msg_id);
                        app.apply_recv(payload);
                        let mut out = Vec::new();
                        if let Err(e) = proto.on_app_receive(src, msg_id, payload, &pb, &mut out) {
                            let _ = status.send(StatusEvent::Error { pid, detail: e.to_string() });
                            break 'main;
                        }
                        handle_actions(
                            &proto,
                            out,
                            &app,
                            &mut pending_snapshot,
                            &mut conv_deadline,
                            &mut finalized,
                            &mut trigger_back,
                        );
                    }
                }
            }
            NodeInput::Cmd(Command::SendApp { dst, len }) => {
                // Globally unique message id: node id in the high bits.
                let msg_id = MsgId(((pid.0 as u64) << 40) | next_msg);
                next_msg += 1;
                let payload = AppPayload { id: msg_id.0, len };
                // Record the send before the bytes can possibly be
                // received (observer lock orders it).
                observer.lock().on_send(pid, msg_id);
                app.apply_send(payload);
                let pb = proto.on_app_send(dst, msg_id, payload);
                let raw = encode_envelope(&Envelope::App { pb, payload }, n);
                let _ = peers[dst.index()].send(NodeInput::Net(pid, raw));
            }
            NodeInput::Cmd(Command::Checkpoint) => {
                let mut out = Vec::new();
                proto.initiate_checkpoint(&mut out);
                handle_actions(
                    &proto,
                    out,
                    &app,
                    &mut pending_snapshot,
                    &mut conv_deadline,
                    &mut finalized,
                    &mut trigger_back,
                );
            }
            NodeInput::Cmd(Command::Shutdown) => break 'main,
        }
    }
    let _ = status.send(StatusEvent::Stopped { pid, csn: proto.csn(), finalized });
}

fn to_std(d: ocpt_sim::SimDuration) -> Duration {
    Duration::from_nanos(d.as_nanos())
}
