//! Index-based communication-induced checkpointing (Briatico-style),
//! standing in for the CIC class the paper cites as [1, 8].
//!
//! Every checkpoint carries an index; every application message piggybacks
//! the sender's index. A receiver whose index is behind the piggybacked
//! one must take a **forced checkpoint, before processing the message** —
//! the exact behaviour the paper criticises in §1 ("communication-induced
//! checkpoints have to be taken in general before processing a received
//! message, which may significantly prolong the response time"). The set
//! of checkpoints with equal index forms a consistent global checkpoint.
//!
//! Experiments E3/E8 use this baseline to quantify forced-checkpoint
//! counts and the pre-processing latency OCPT avoids.

use ocpt_core::AppPayload;
use ocpt_metrics::Counters;
use ocpt_sim::{MsgId, ProcessId};

use crate::api::{wire_cost, CheckpointProtocol, EnvTelemetry, ProtoAction};

/// Envelope for CIC runs: application messages piggyback the index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CicEnv {
    /// The payload.
    pub payload: AppPayload,
    /// Sender's checkpoint index at send time.
    pub sn: u64,
}

/// One process's CIC state.
#[derive(Debug)]
pub struct Cic {
    #[allow(dead_code)]
    id: ProcessId,
    /// Current checkpoint index.
    sn: u64,
    /// Index at the previous scheduled tick; a basic checkpoint is skipped
    /// if a forced one already advanced the index this interval (keeps the
    /// per-interval checkpoint budget comparable to OCPT's).
    sn_at_last_tick: u64,
    stats: Counters,
}

impl Cic {
    /// A new instance for process `id`.
    pub fn new(id: ProcessId) -> Self {
        Cic { id, sn: 0, sn_at_last_tick: 0, stats: Counters::new() }
    }

    /// Current index (for tests and drivers).
    pub fn sn(&self) -> u64 {
        self.sn
    }

    /// Take a checkpoint covering indices `(old, new]`: the consistency cut
    /// for every skipped index sits at this same snapshot.
    fn checkpoint_to(&mut self, new_sn: u64, forced: bool, out: &mut Vec<ProtoAction<CicEnv>>) {
        let old = self.sn;
        self.sn = new_sn;
        self.stats.inc(if forced { "ckpt.forced" } else { "ckpt.basic" });
        out.push(ProtoAction::Snapshot { seq: new_sn });
        // A jump from index `old` to `new_sn` plugs every hole in between:
        // the checkpoint with index k (old < k ≤ new_sn) is this snapshot.
        for k in (old + 1)..=new_sn {
            out.push(ProtoAction::MarkCut { seq: k, back: 0 });
        }
        out.push(ProtoAction::FlushState { seq: new_sn });
        out.push(ProtoAction::Complete { seq: new_sn });
        if forced {
            out.push(ProtoAction::ForcedBeforeProcessing { seq: new_sn });
        }
    }
}

impl CheckpointProtocol for Cic {
    type Env = CicEnv;

    fn name(&self) -> &'static str {
        "cic"
    }

    fn wrap_app(
        &mut self,
        _dst: ProcessId,
        _msg_id: MsgId,
        payload: AppPayload,
        _out: &mut Vec<ProtoAction<CicEnv>>,
    ) -> CicEnv {
        self.stats.inc("app.sent");
        CicEnv { payload, sn: self.sn }
    }

    fn on_arrival(
        &mut self,
        _src: ProcessId,
        _msg_id: MsgId,
        env: CicEnv,
        out: &mut Vec<ProtoAction<CicEnv>>,
    ) -> Result<Option<AppPayload>, String> {
        self.stats.inc("app.received");
        if env.sn > self.sn {
            // Forced checkpoint BEFORE processing the message.
            self.checkpoint_to(env.sn, true, out);
        }
        Ok(Some(env.payload))
    }

    fn initiate(&mut self, out: &mut Vec<ProtoAction<CicEnv>>) {
        // Basic checkpoint: every process, every interval — unless a forced
        // checkpoint already advanced the index since the last tick.
        if self.sn > self.sn_at_last_tick {
            self.sn_at_last_tick = self.sn;
            self.stats.inc("ckpt.basic_skipped");
            return;
        }
        let next = self.sn + 1;
        self.checkpoint_to(next, false, out);
        self.sn_at_last_tick = self.sn;
    }

    fn env_wire_bytes(&self, env: &CicEnv) -> u64 {
        // Piggyback: 8-byte index.
        wire_cost::app(env.payload.len, 8)
    }

    fn env_telemetry(&self, env: &CicEnv) -> EnvTelemetry {
        EnvTelemetry::in_round(env.sn)
    }

    fn stats(&self) -> &Counters {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(len: u32) -> AppPayload {
        AppPayload { id: 1, len }
    }

    #[test]
    fn basic_checkpoint_increments_index() {
        let mut c = Cic::new(ProcessId(0));
        let mut out = Vec::new();
        c.initiate(&mut out);
        assert_eq!(c.sn(), 1);
        assert!(out.contains(&ProtoAction::Snapshot { seq: 1 }));
        assert!(out.contains(&ProtoAction::FlushState { seq: 1 }));
        assert!(!out.iter().any(|a| matches!(a, ProtoAction::ForcedBeforeProcessing { .. })));
    }

    #[test]
    fn higher_index_forces_checkpoint_before_processing() {
        let mut c = Cic::new(ProcessId(1));
        let mut out = Vec::new();
        let d = c
            .on_arrival(ProcessId(0), MsgId(0), CicEnv { payload: pl(10), sn: 3 }, &mut out)
            .unwrap();
        assert_eq!(d, Some(pl(10)));
        assert_eq!(c.sn(), 3);
        assert!(out.contains(&ProtoAction::ForcedBeforeProcessing { seq: 3 }));
        // Cut marked for every plugged index 1..=3.
        for k in 1..=3 {
            assert!(out.contains(&ProtoAction::MarkCut { seq: k, back: 0 }), "cut {k}");
        }
        assert_eq!(c.stats().get("ckpt.forced"), 1);
    }

    #[test]
    fn equal_or_lower_index_processes_directly() {
        let mut c = Cic::new(ProcessId(1));
        let mut out = Vec::new();
        c.initiate(&mut out); // sn = 1
        out.clear();
        let d = c
            .on_arrival(ProcessId(0), MsgId(0), CicEnv { payload: pl(5), sn: 1 }, &mut out)
            .unwrap();
        assert_eq!(d, Some(pl(5)));
        assert!(out.is_empty());
        let d = c
            .on_arrival(ProcessId(0), MsgId(1), CicEnv { payload: pl(5), sn: 0 }, &mut out)
            .unwrap();
        assert_eq!(d, Some(pl(5)));
        assert!(out.is_empty());
    }

    #[test]
    fn piggyback_carries_current_index() {
        let mut c = Cic::new(ProcessId(0));
        let mut out = Vec::new();
        c.initiate(&mut out);
        c.initiate(&mut out);
        let env = c.wrap_app(ProcessId(1), MsgId(0), pl(1), &mut out);
        assert_eq!(env.sn, 2);
    }

    #[test]
    fn wire_bytes_include_index() {
        let c = Cic::new(ProcessId(0));
        let env = CicEnv { payload: pl(100), sn: 1 };
        assert_eq!(c.env_wire_bytes(&env), wire_cost::app(100, 8));
    }
}
