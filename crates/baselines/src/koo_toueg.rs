//! Koo–Toueg blocking coordinated checkpointing \[5\].
//!
//! Two-phase commit over checkpoints: the coordinator takes a tentative
//! checkpoint and asks everyone to do the same; participants take the
//! checkpoint, **block application sends**, and ack; once all acks are in
//! the coordinator commits and everyone unblocks. We implement the
//! all-process variant (the original restricts requests to dependency
//! sets; with the dense workloads of the evaluation the dependency set is
//! almost always everyone, and the all-process variant is the canonical
//! "synchronous checkpointing" the paper argues against in §1).
//!
//! Two costs the experiments surface: (1) *blocking* — the application
//! cannot send between tentative and commit (E2); (2) *clustered storage
//! writes* — all processes write their state in phase 1 (E1).

use ocpt_core::AppPayload;
use ocpt_metrics::Counters;
use ocpt_sim::{MsgId, ProcessId};

use crate::api::{wire_cost, CheckpointProtocol, EnvTelemetry, ProtoAction};

/// Envelope for Koo–Toueg runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KtEnv {
    /// Application message.
    App {
        /// The payload.
        payload: AppPayload,
    },
    /// Coordinator → participant: take tentative checkpoint `seq`.
    TakeTentative {
        /// Checkpoint round.
        seq: u64,
    },
    /// Participant → coordinator: tentative checkpoint `seq` taken.
    Ack {
        /// Checkpoint round.
        seq: u64,
    },
    /// Coordinator → participant: make checkpoint `seq` permanent.
    Commit {
        /// Checkpoint round.
        seq: u64,
    },
}

/// One process's Koo–Toueg state.
#[derive(Debug)]
pub struct KooToueg {
    id: ProcessId,
    n: usize,
    seq: u64,
    /// Blocked between tentative and commit.
    blocked: bool,
    /// Coordinator only: acks still outstanding for the current round.
    acks_pending: usize,
    stats: Counters,
}

impl KooToueg {
    /// A new instance for process `id` of `n`.
    pub fn new(id: ProcessId, n: usize) -> Self {
        assert!(n >= 2);
        KooToueg { id, n, seq: 0, blocked: false, acks_pending: 0, stats: Counters::new() }
    }

    fn take_tentative(&mut self, seq: u64, out: &mut Vec<ProtoAction<KtEnv>>) {
        self.seq = seq;
        self.blocked = true;
        self.stats.inc("ckpt.taken");
        out.push(ProtoAction::Snapshot { seq });
        out.push(ProtoAction::MarkCut { seq, back: 0 });
        // Synchronous write in phase 1 — every process does this at once.
        out.push(ProtoAction::FlushState { seq });
    }
}

impl CheckpointProtocol for KooToueg {
    type Env = KtEnv;

    fn name(&self) -> &'static str {
        "koo-toueg"
    }

    fn can_send_app(&self) -> bool {
        !self.blocked
    }

    fn wrap_app(
        &mut self,
        _dst: ProcessId,
        _msg_id: MsgId,
        payload: AppPayload,
        _out: &mut Vec<ProtoAction<KtEnv>>,
    ) -> KtEnv {
        debug_assert!(!self.blocked, "driver must respect can_send_app");
        self.stats.inc("app.sent");
        KtEnv::App { payload }
    }

    fn on_arrival(
        &mut self,
        _src: ProcessId,
        _msg_id: MsgId,
        env: KtEnv,
        out: &mut Vec<ProtoAction<KtEnv>>,
    ) -> Result<Option<AppPayload>, String> {
        match env {
            KtEnv::App { payload } => {
                self.stats.inc("app.received");
                Ok(Some(payload))
            }
            KtEnv::TakeTentative { seq } => {
                self.stats.inc("ctrl.received");
                if seq != self.seq + 1 {
                    return Err(format!("{}: unexpected round {seq} at {}", self.id, self.seq));
                }
                self.take_tentative(seq, out);
                self.stats.inc("ctrl.ack_sent");
                out.push(ProtoAction::Send { dst: ProcessId::P0, env: KtEnv::Ack { seq } });
                Ok(None)
            }
            KtEnv::Ack { seq } => {
                self.stats.inc("ctrl.received");
                if self.id != ProcessId::P0 || seq != self.seq {
                    return Err(format!("{}: stray ack for round {seq}", self.id));
                }
                self.acks_pending -= 1;
                if self.acks_pending == 0 {
                    // Phase 2: commit everywhere.
                    for p in ProcessId::all(self.n).filter(|p| *p != self.id) {
                        self.stats.inc("ctrl.commit_sent");
                        out.push(ProtoAction::Send { dst: p, env: KtEnv::Commit { seq } });
                    }
                    self.blocked = false;
                    out.push(ProtoAction::Complete { seq });
                }
                Ok(None)
            }
            KtEnv::Commit { seq } => {
                self.stats.inc("ctrl.received");
                if seq != self.seq {
                    return Err(format!("{}: commit for wrong round {seq}", self.id));
                }
                self.blocked = false;
                out.push(ProtoAction::Complete { seq });
                Ok(None)
            }
        }
    }

    fn initiate(&mut self, out: &mut Vec<ProtoAction<KtEnv>>) {
        if self.id != ProcessId::P0 {
            return;
        }
        if self.blocked {
            self.stats.inc("ckpt.initiation_skipped");
            return;
        }
        let seq = self.seq + 1;
        self.take_tentative(seq, out);
        self.acks_pending = self.n - 1;
        for p in ProcessId::all(self.n).filter(|p| *p != self.id) {
            self.stats.inc("ctrl.request_sent");
            out.push(ProtoAction::Send { dst: p, env: KtEnv::TakeTentative { seq } });
        }
    }

    fn env_wire_bytes(&self, env: &KtEnv) -> u64 {
        match env {
            KtEnv::App { payload } => wire_cost::app(payload.len, 0),
            _ => wire_cost::CTRL,
        }
    }

    fn env_telemetry(&self, env: &KtEnv) -> EnvTelemetry {
        match env {
            KtEnv::App { .. } => EnvTelemetry::default(),
            KtEnv::TakeTentative { seq } => EnvTelemetry::coded("ctrl.take_tentative", *seq),
            KtEnv::Ack { seq } => EnvTelemetry::coded("ctrl.ack", *seq),
            KtEnv::Commit { seq } => EnvTelemetry::coded("ctrl.commit", *seq),
        }
    }

    fn stats(&self) -> &Counters {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(len: u32) -> AppPayload {
        AppPayload { id: 1, len }
    }

    #[test]
    fn full_round_unblocks_everyone() {
        let n = 3;
        let mut c = KooToueg::new(ProcessId(0), n);
        let mut p1 = KooToueg::new(ProcessId(1), n);
        let mut p2 = KooToueg::new(ProcessId(2), n);
        let mut out = Vec::new();

        c.initiate(&mut out);
        assert!(!c.can_send_app(), "coordinator blocks in phase 1");
        let reqs: Vec<ProcessId> = out
            .iter()
            .filter_map(|a| match a {
                ProtoAction::Send { dst, env: KtEnv::TakeTentative { seq: 1 } } => Some(*dst),
                _ => None,
            })
            .collect();
        assert_eq!(reqs.len(), 2);
        out.clear();

        // Participants take tentative checkpoints, block and ack.
        p1.on_arrival(ProcessId(0), MsgId(0), KtEnv::TakeTentative { seq: 1 }, &mut out).unwrap();
        assert!(!p1.can_send_app());
        assert!(out.contains(&ProtoAction::FlushState { seq: 1 }));
        out.clear();
        p2.on_arrival(ProcessId(0), MsgId(1), KtEnv::TakeTentative { seq: 1 }, &mut out).unwrap();
        out.clear();

        // Coordinator collects acks; after the last it commits.
        c.on_arrival(ProcessId(1), MsgId(2), KtEnv::Ack { seq: 1 }, &mut out).unwrap();
        assert!(out.is_empty(), "no commit until all acks");
        c.on_arrival(ProcessId(2), MsgId(3), KtEnv::Ack { seq: 1 }, &mut out).unwrap();
        assert!(c.can_send_app());
        assert!(out.contains(&ProtoAction::Complete { seq: 1 }));
        let commits = out
            .iter()
            .filter(|a| matches!(a, ProtoAction::Send { env: KtEnv::Commit { seq: 1 }, .. }))
            .count();
        assert_eq!(commits, 2);
        out.clear();

        p1.on_arrival(ProcessId(0), MsgId(4), KtEnv::Commit { seq: 1 }, &mut out).unwrap();
        assert!(p1.can_send_app());
        assert!(out.contains(&ProtoAction::Complete { seq: 1 }));
    }

    #[test]
    fn app_messages_pass_through() {
        let mut p = KooToueg::new(ProcessId(1), 2);
        let mut out = Vec::new();
        let d =
            p.on_arrival(ProcessId(0), MsgId(0), KtEnv::App { payload: pl(9) }, &mut out).unwrap();
        assert_eq!(d, Some(pl(9)));
        assert!(out.is_empty());
    }

    #[test]
    fn initiate_skipped_while_in_progress() {
        let mut c = KooToueg::new(ProcessId(0), 2);
        let mut out = Vec::new();
        c.initiate(&mut out);
        out.clear();
        c.initiate(&mut out);
        assert!(out.is_empty());
        assert_eq!(c.stats().get("ckpt.initiation_skipped"), 1);
    }

    #[test]
    fn protocol_violations_are_errors() {
        let mut p = KooToueg::new(ProcessId(1), 3);
        let mut out = Vec::new();
        // Round skip.
        assert!(p
            .on_arrival(ProcessId(0), MsgId(0), KtEnv::TakeTentative { seq: 2 }, &mut out)
            .is_err());
        // Ack at a non-coordinator.
        assert!(p.on_arrival(ProcessId(2), MsgId(1), KtEnv::Ack { seq: 0 }, &mut out).is_err());
        // Commit for wrong round.
        assert!(p.on_arrival(ProcessId(0), MsgId(2), KtEnv::Commit { seq: 5 }, &mut out).is_err());
    }

    #[test]
    fn wire_bytes_and_metadata() {
        let p = KooToueg::new(ProcessId(0), 4);
        assert_eq!(p.env_wire_bytes(&KtEnv::Ack { seq: 1 }), wire_cost::CTRL);
        assert_eq!(p.env_wire_bytes(&KtEnv::App { payload: pl(50) }), wire_cost::app(50, 0));
        assert_eq!(p.name(), "koo-toueg");
        assert!(!p.needs_fifo());
    }
}
