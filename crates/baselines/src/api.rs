//! The driver-facing protocol abstraction.
//!
//! Every checkpointing algorithm in this repository — the paper's OCPT and
//! the five comparators — implements [`CheckpointProtocol`]: a sans-io
//! state machine whose handlers append [`ProtoAction`]s for the driver
//! (simulator harness or threaded runtime) to execute. This is what lets
//! the experiments run *all* algorithms on the identical substrate with
//! identical workloads, which is the whole point of a controlled
//! comparison.
//!
//! ## Receive phases
//!
//! Arrival is split in two so that both checkpoint-before-processing (CIC
//! forced checkpoints) and checkpoint-after-processing (the paper's
//! algorithm, §1: "a process can first process the received message and
//! then take checkpoint") can be expressed:
//!
//! 1. [`CheckpointProtocol::on_arrival`] — runs before the application
//!    sees anything; may emit snapshots (forced checkpoints, marker
//!    handling). Returns the payload to deliver, if any.
//! 2. the driver processes the payload (records the receive event);
//! 3. [`CheckpointProtocol::after_delivery`] — runs after processing;
//!    OCPT's §3.4.3 case analysis lives here.

use ocpt_core::{AppPayload, MessageLog};
use ocpt_metrics::Counters;
use ocpt_sim::{MsgId, ProcessId, SimDuration};

/// An effect for the driver to execute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoAction<Env> {
    /// Snapshot the application state *now* into in-memory slot `seq`.
    Snapshot {
        /// Checkpoint identifier (sequence number / snapshot id / index).
        seq: u64,
    },
    /// The consistency cut of checkpoint `seq` sits at the current local
    /// application-event position minus `back`. Baselines emit this with
    /// their snapshot; OCPT emits it at finalization (the cut of
    /// `C_{i,k}` is the finalization event `CFE_{i,k}`, and `back = 1`
    /// when the trigger message was excluded from the log).
    MarkCut {
        /// Checkpoint identifier.
        seq: u64,
        /// Events to step back from the current position.
        back: u32,
    },
    /// Write the in-memory state snapshot `seq` to stable storage.
    FlushState {
        /// Checkpoint identifier.
        seq: u64,
    },
    /// Write auxiliary checkpoint data (message logs, channel state).
    FlushExtra {
        /// Checkpoint identifier.
        seq: u64,
        /// Bytes to charge the storage server with.
        bytes: u64,
        /// The actual log content, when the algorithm has one worth
        /// persisting for replay (OCPT's `logSet`); `None` for baselines
        /// whose aux data we only account by size.
        log: Option<MessageLog>,
    },
    /// Checkpoint `seq` is locally complete (committed / finalized).
    Complete {
        /// Checkpoint identifier.
        seq: u64,
    },
    /// Send a protocol envelope to `dst`.
    Send {
        /// Destination.
        dst: ProcessId,
        /// Envelope (application wrapper or algorithm control message).
        env: Env,
    },
    /// Arm a timer; the driver calls [`CheckpointProtocol::on_timer`] with
    /// `tag` when it fires.
    SetTimer {
        /// Owner-chosen discriminator.
        tag: u64,
        /// Delay from now.
        delay: SimDuration,
    },
    /// Cancel the timer with `tag`.
    CancelTimer {
        /// The tag passed to `SetTimer`.
        tag: u64,
    },
    /// A forced checkpoint was taken before the current message could be
    /// processed (communication-induced checkpointing). The driver charges
    /// the response-time penalty measured in experiment E8.
    ForcedBeforeProcessing {
        /// The forced checkpoint's identifier.
        seq: u64,
    },
}

/// How the flight recorder should classify an envelope: a stable event
/// code (e.g. `"ctrl.ck_bgn"`) and the checkpoint round (csn / snapshot
/// id) the envelope belongs to, when it belongs to one. Returned by
/// [`CheckpointProtocol::env_telemetry`]; consumed by the drivers when
/// recording `CtrlSend`/`CtrlRecv`/`AppSend` trace events (DESIGN.md §8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnvTelemetry {
    /// Stable machine-readable event code; `None` means "use the trace
    /// kind's default code" (anonymous traffic).
    pub code: Option<&'static str>,
    /// Checkpoint round the envelope carries or belongs to.
    pub seq: Option<u64>,
}

impl EnvTelemetry {
    /// Classified traffic: a code and the round it belongs to.
    pub fn coded(code: &'static str, seq: u64) -> Self {
        EnvTelemetry { code: Some(code), seq: Some(seq) }
    }

    /// Traffic that belongs to round `seq` but needs no special code
    /// (e.g. an application message piggybacking its sender's csn).
    pub fn in_round(seq: u64) -> Self {
        EnvTelemetry { code: None, seq: Some(seq) }
    }
}

/// A sans-io checkpointing protocol instance (one per process).
pub trait CheckpointProtocol {
    /// The envelope type this protocol puts on the wire.
    type Env: Clone + std::fmt::Debug;

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Whether the algorithm requires FIFO channels (Chandy–Lamport and
    /// derivatives do; the paper's algorithm does not, §2.1).
    fn needs_fifo(&self) -> bool {
        false
    }

    /// May the application send right now? Blocking coordinated protocols
    /// (Koo–Toueg) return `false` between tentative and commit; the driver
    /// defers workload sends and accounts the blocked time.
    fn can_send_app(&self) -> bool {
        true
    }

    /// Wrap an outgoing application payload into an envelope.
    fn wrap_app(
        &mut self,
        dst: ProcessId,
        msg_id: MsgId,
        payload: AppPayload,
        out: &mut Vec<ProtoAction<Self::Env>>,
    ) -> Self::Env;

    /// Phase 1 of receive: before the application processes anything.
    /// Returns the application payload to deliver, or `None` for pure
    /// control traffic. `Err` signals a protocol invariant violation.
    fn on_arrival(
        &mut self,
        src: ProcessId,
        msg_id: MsgId,
        env: Self::Env,
        out: &mut Vec<ProtoAction<Self::Env>>,
    ) -> Result<Option<AppPayload>, String>;

    /// Phase 2 of receive: after the application processed the payload
    /// returned by [`Self::on_arrival`].
    fn after_delivery(
        &mut self,
        src: ProcessId,
        msg_id: MsgId,
        payload: AppPayload,
        out: &mut Vec<ProtoAction<Self::Env>>,
    ) -> Result<(), String> {
        let _ = (src, msg_id, payload, out);
        Ok(())
    }

    /// The driver's periodic checkpoint trigger ("take a checkpoint once
    /// every interval"). Coordinator-based algorithms act only on the
    /// coordinator; others act everywhere.
    fn initiate(&mut self, out: &mut Vec<ProtoAction<Self::Env>>);

    /// A timer armed via [`ProtoAction::SetTimer`] fired.
    fn on_timer(&mut self, tag: u64, out: &mut Vec<ProtoAction<Self::Env>>) {
        let _ = (tag, out);
    }

    /// A stable-storage write for checkpoint `seq` became durable.
    fn on_storage_done(&mut self, seq: u64, out: &mut Vec<ProtoAction<Self::Env>>) {
        let _ = (seq, out);
    }

    /// Reset this instance to the protocol state it would hold right after
    /// finalizing the consistent global checkpoint `line` — the rollback
    /// half of recovery. Algorithms without live-recovery support return
    /// `Err` (the harness then refuses to continue past a crash).
    fn restore_from_line(&mut self, line: u64) -> Result<(), String> {
        let _ = line;
        Err(format!("{}: live recovery not supported", self.name()))
    }

    /// Envelope used to re-inject a logged in-transit payload during
    /// recovery (the sender's state already contains the send event, so
    /// the message is replayed by the recovery layer, not re-executed).
    fn replay_envelope(&self, payload: AppPayload) -> Option<Self::Env> {
        let _ = payload;
        None
    }

    /// Bytes `env` occupies on the wire (headers + piggyback + payload).
    fn env_wire_bytes(&self, env: &Self::Env) -> u64;

    /// Classify `env` for the flight recorder (event code + checkpoint
    /// round). The default classifies nothing; protocols with structured
    /// envelopes override this so control waves become traceable spans.
    fn env_telemetry(&self, env: &Self::Env) -> EnvTelemetry {
        let _ = env;
        EnvTelemetry::default()
    }

    /// Protocol event counters.
    fn stats(&self) -> &Counters;
}

/// Shared wire-size constants, kept consistent with `ocpt_core::wire`.
pub mod wire_cost {
    /// Envelope header bytes (version + discriminant + n as u32).
    pub const HEADER: u64 = 6;
    /// Fixed application fields (payload id + len).
    pub const APP_FIXED: u64 = 12;
    /// A small control message (kind + seq).
    pub const CTRL: u64 = HEADER + 9;

    /// App envelope cost with `piggyback` extra bytes.
    pub fn app(payload_len: u32, piggyback: u64) -> u64 {
        HEADER + APP_FIXED + piggyback + payload_len as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_cost_app() {
        assert_eq!(wire_cost::app(100, 8), 6 + 12 + 8 + 100);
        assert_eq!(wire_cost::CTRL, 15);
    }

    #[test]
    fn actions_compare() {
        let a: ProtoAction<u8> = ProtoAction::Snapshot { seq: 1 };
        assert_eq!(a.clone(), a);
        assert_ne!(a, ProtoAction::Complete { seq: 1 });
    }
}
