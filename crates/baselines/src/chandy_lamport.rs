//! Chandy–Lamport distributed snapshots \[3\], iterated for periodic
//! checkpointing.
//!
//! The classical algorithm: the coordinator records its state and floods a
//! marker on every channel; each process records its own state on first
//! marker receipt, relays markers, and records the state of channel `c` as
//! the messages arriving on `c` between its own recording and `c`'s
//! marker. Requires **FIFO channels**.
//!
//! For the contention comparison (E1) the salient behaviour is that every
//! process writes its state to stable storage **when it records** — i.e.
//! all within one marker-flood round-trip of each other — which is exactly
//! the clustered-write pattern the paper's algorithm exists to avoid.

use ocpt_core::AppPayload;
use ocpt_metrics::Counters;
use ocpt_sim::{MsgId, ProcessId};

use crate::api::{wire_cost, CheckpointProtocol, EnvTelemetry, ProtoAction};

/// Envelope for Chandy–Lamport runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClEnv {
    /// Application message (no piggyback — CL adds none).
    App {
        /// The payload.
        payload: AppPayload,
    },
    /// Snapshot marker.
    Marker {
        /// Snapshot instance id.
        seq: u64,
    },
}

/// One process's Chandy–Lamport state.
#[derive(Debug)]
pub struct ChandyLamport {
    id: ProcessId,
    n: usize,
    /// Declared state-image size (storage charge for a snapshot).
    state_bytes: u64,
    /// Current snapshot instance.
    seq: u64,
    /// Recording in progress: channels still awaiting a marker.
    awaiting: Vec<bool>,
    awaiting_count: usize,
    recording: bool,
    /// Bytes of channel state recorded during the current snapshot.
    channel_bytes: u64,
    stats: Counters,
}

impl ChandyLamport {
    /// A new instance for process `id` of `n`.
    pub fn new(id: ProcessId, n: usize, state_bytes: u64) -> Self {
        assert!(n >= 2);
        ChandyLamport {
            id,
            n,
            state_bytes,
            seq: 0,
            awaiting: vec![false; n],
            awaiting_count: 0,
            recording: false,
            channel_bytes: 0,
            stats: Counters::new(),
        }
    }

    /// Declared state size (used by drivers for storage accounting).
    pub fn state_bytes(&self) -> u64 {
        self.state_bytes
    }

    /// Record local state for snapshot `seq` and flood markers.
    fn record_local(
        &mut self,
        seq: u64,
        skip_marker_from: Option<ProcessId>,
        out: &mut Vec<ProtoAction<ClEnv>>,
    ) {
        self.seq = seq;
        self.recording = true;
        self.channel_bytes = 0;
        self.stats.inc("ckpt.taken");
        out.push(ProtoAction::Snapshot { seq });
        out.push(ProtoAction::MarkCut { seq, back: 0 });
        // CL writes the recorded state immediately — the clustered write.
        out.push(ProtoAction::FlushState { seq });
        for p in ProcessId::all(self.n).filter(|p| *p != self.id) {
            self.stats.inc("ctrl.marker_sent");
            out.push(ProtoAction::Send { dst: p, env: ClEnv::Marker { seq } });
        }
        self.awaiting_count = 0;
        for p in ProcessId::all(self.n) {
            let waiting = p != self.id && Some(p) != skip_marker_from;
            self.awaiting[p.index()] = waiting;
            self.awaiting_count += usize::from(waiting);
        }
        if self.awaiting_count == 0 {
            self.complete(out);
        }
    }

    fn complete(&mut self, out: &mut Vec<ProtoAction<ClEnv>>) {
        self.recording = false;
        out.push(ProtoAction::FlushExtra { seq: self.seq, bytes: self.channel_bytes, log: None });
        out.push(ProtoAction::Complete { seq: self.seq });
    }
}

impl CheckpointProtocol for ChandyLamport {
    type Env = ClEnv;

    fn name(&self) -> &'static str {
        "chandy-lamport"
    }

    fn needs_fifo(&self) -> bool {
        true
    }

    fn wrap_app(
        &mut self,
        _dst: ProcessId,
        _msg_id: MsgId,
        payload: AppPayload,
        _out: &mut Vec<ProtoAction<ClEnv>>,
    ) -> ClEnv {
        self.stats.inc("app.sent");
        ClEnv::App { payload }
    }

    fn on_arrival(
        &mut self,
        src: ProcessId,
        _msg_id: MsgId,
        env: ClEnv,
        out: &mut Vec<ProtoAction<ClEnv>>,
    ) -> Result<Option<AppPayload>, String> {
        match env {
            ClEnv::Marker { seq } => {
                self.stats.inc("ctrl.marker_received");
                if seq > self.seq {
                    // First marker of a new snapshot: record now; the
                    // channel from `src` is empty by FIFO.
                    if seq != self.seq + 1 {
                        return Err(format!(
                            "{}: marker seq {seq} skips ahead of {}",
                            self.id, self.seq
                        ));
                    }
                    self.record_local(seq, Some(src), out);
                } else if seq == self.seq && self.recording && self.awaiting[src.index()] {
                    self.awaiting[src.index()] = false;
                    self.awaiting_count -= 1;
                    if self.awaiting_count == 0 {
                        self.complete(out);
                    }
                }
                // Stale markers (seq < self.seq) are ignored.
                Ok(None)
            }
            ClEnv::App { payload } => {
                self.stats.inc("app.received");
                if self.recording && self.awaiting[src.index()] {
                    // Part of channel `src → self`'s state.
                    self.channel_bytes += payload.len as u64;
                    self.stats.inc("log.channel_msgs");
                }
                Ok(Some(payload))
            }
        }
    }

    fn initiate(&mut self, out: &mut Vec<ProtoAction<ClEnv>>) {
        // Coordinator-initiated; non-coordinators ignore the periodic tick.
        if self.id != ProcessId::P0 {
            return;
        }
        if self.recording {
            self.stats.inc("ckpt.initiation_skipped");
            return;
        }
        let seq = self.seq + 1;
        self.record_local(seq, None, out);
    }

    fn env_wire_bytes(&self, env: &ClEnv) -> u64 {
        match env {
            ClEnv::App { payload } => wire_cost::app(payload.len, 0),
            ClEnv::Marker { .. } => wire_cost::CTRL,
        }
    }

    fn env_telemetry(&self, env: &ClEnv) -> EnvTelemetry {
        match env {
            ClEnv::App { .. } => EnvTelemetry::default(),
            ClEnv::Marker { seq } => EnvTelemetry::coded("ctrl.marker", *seq),
        }
    }

    fn stats(&self) -> &Counters {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(id: u64, len: u32) -> AppPayload {
        AppPayload { id, len }
    }

    #[test]
    fn coordinator_initiates_and_floods_markers() {
        let mut cl = ChandyLamport::new(ProcessId(0), 3, 1024);
        let mut out = Vec::new();
        cl.initiate(&mut out);
        assert!(out.contains(&ProtoAction::Snapshot { seq: 1 }));
        assert!(out.contains(&ProtoAction::FlushState { seq: 1 }));
        let markers: Vec<_> = out
            .iter()
            .filter(|a| matches!(a, ProtoAction::Send { env: ClEnv::Marker { seq: 1 }, .. }))
            .collect();
        assert_eq!(markers.len(), 2);
    }

    #[test]
    fn non_coordinator_ignores_initiate() {
        let mut cl = ChandyLamport::new(ProcessId(1), 3, 1024);
        let mut out = Vec::new();
        cl.initiate(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn first_marker_triggers_recording() {
        let mut cl = ChandyLamport::new(ProcessId(1), 3, 1024);
        let mut out = Vec::new();
        let r = cl.on_arrival(ProcessId(0), MsgId(0), ClEnv::Marker { seq: 1 }, &mut out).unwrap();
        assert!(r.is_none());
        assert!(out.contains(&ProtoAction::Snapshot { seq: 1 }));
        // Awaits marker only from P2 (P0's channel is empty by FIFO).
        assert_eq!(cl.awaiting_count, 1);
        // Marker from P2 completes the snapshot.
        out.clear();
        cl.on_arrival(ProcessId(2), MsgId(1), ClEnv::Marker { seq: 1 }, &mut out).unwrap();
        assert!(out.contains(&ProtoAction::Complete { seq: 1 }));
    }

    #[test]
    fn channel_state_recorded_between_record_and_marker() {
        let mut cl = ChandyLamport::new(ProcessId(1), 3, 1024);
        let mut out = Vec::new();
        cl.on_arrival(ProcessId(0), MsgId(0), ClEnv::Marker { seq: 1 }, &mut out).unwrap();
        out.clear();
        // App message from P2 (marker outstanding) → channel state.
        let d = cl
            .on_arrival(ProcessId(2), MsgId(1), ClEnv::App { payload: pl(1, 64) }, &mut out)
            .unwrap();
        assert_eq!(d, Some(pl(1, 64)));
        // App message from P0 (marker already received) → not recorded.
        cl.on_arrival(ProcessId(0), MsgId(2), ClEnv::App { payload: pl(2, 32) }, &mut out).unwrap();
        out.clear();
        cl.on_arrival(ProcessId(2), MsgId(3), ClEnv::Marker { seq: 1 }, &mut out).unwrap();
        let extra = out
            .iter()
            .find_map(|a| match a {
                ProtoAction::FlushExtra { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .unwrap();
        assert_eq!(extra, 64);
    }

    #[test]
    fn iterated_snapshots_increment_seq() {
        let mut cl = ChandyLamport::new(ProcessId(0), 2, 1024);
        let mut out = Vec::new();
        cl.initiate(&mut out);
        out.clear();
        cl.on_arrival(ProcessId(1), MsgId(0), ClEnv::Marker { seq: 1 }, &mut out).unwrap();
        assert!(out.contains(&ProtoAction::Complete { seq: 1 }));
        out.clear();
        cl.initiate(&mut out);
        assert!(out.contains(&ProtoAction::Snapshot { seq: 2 }));
    }

    #[test]
    fn overlapping_initiation_skipped() {
        let mut cl = ChandyLamport::new(ProcessId(0), 3, 1024);
        let mut out = Vec::new();
        cl.initiate(&mut out);
        out.clear();
        cl.initiate(&mut out);
        assert!(out.is_empty());
        assert_eq!(cl.stats().get("ckpt.initiation_skipped"), 1);
    }

    #[test]
    fn marker_skip_is_error() {
        let mut cl = ChandyLamport::new(ProcessId(1), 3, 1024);
        let mut out = Vec::new();
        assert!(cl.on_arrival(ProcessId(0), MsgId(0), ClEnv::Marker { seq: 2 }, &mut out).is_err());
    }

    #[test]
    fn stale_marker_ignored() {
        let mut cl = ChandyLamport::new(ProcessId(1), 3, 1024);
        let mut out = Vec::new();
        cl.on_arrival(ProcessId(0), MsgId(0), ClEnv::Marker { seq: 1 }, &mut out).unwrap();
        cl.on_arrival(ProcessId(2), MsgId(1), ClEnv::Marker { seq: 1 }, &mut out).unwrap();
        out.clear();
        cl.on_arrival(ProcessId(0), MsgId(2), ClEnv::Marker { seq: 1 }, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn wire_bytes() {
        let cl = ChandyLamport::new(ProcessId(0), 3, 1024);
        assert_eq!(cl.env_wire_bytes(&ClEnv::Marker { seq: 1 }), wire_cost::CTRL);
        assert_eq!(cl.env_wire_bytes(&ClEnv::App { payload: pl(1, 100) }), wire_cost::app(100, 0));
        assert!(cl.needs_fifo());
    }
}
