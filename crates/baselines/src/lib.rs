//! # ocpt-baselines — comparator algorithms and the shared protocol trait
//!
//! The related work the paper positions against (§1, §4), implemented
//! clean-room behind one driver-facing trait so every algorithm runs on
//! the identical simulator, storage model and workloads:
//!
//! | Algorithm | Class | Key cost under study |
//! |---|---|---|
//! | [`ChandyLamport`] | synchronous snapshot \[3\] | clustered storage writes, FIFO required |
//! | [`KooToueg`] | blocking synchronous \[5\] | application blocked between phases |
//! | [`Staggered`] | synchronous, staggered writes \[11\] | serialised writes, long tail, token traffic |
//! | [`Cic`] | communication-induced [1, 8] | forced checkpoints **before** message processing |
//! | [`Uncoordinated`] | asynchronous | domino effect at recovery |
//! | [`OcptAdapter`] | **the paper's algorithm** | — |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod chandy_lamport;
pub mod cic;
pub mod koo_toueg;
pub mod ocpt_adapter;
pub mod staggered;
pub mod uncoordinated;

pub use api::{CheckpointProtocol, ProtoAction};
pub use chandy_lamport::{ChandyLamport, ClEnv};
pub use cic::{Cic, CicEnv};
pub use koo_toueg::{KooToueg, KtEnv};
pub use ocpt_adapter::OcptAdapter;
pub use staggered::{StagEnv, Staggered};
pub use uncoordinated::{UncoordEnv, Uncoordinated};
