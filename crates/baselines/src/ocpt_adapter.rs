//! Adapter exposing [`ocpt_core::OcptProcess`] through the driver-facing
//! [`CheckpointProtocol`] trait, including the tentative-checkpoint flush
//! policy (eager / lazy / jittered) that the paper leaves to the process
//! ("processes are able to choose their convenient time for writing the
//! tentative checkpoints … to stable storage").

use std::collections::HashMap;

use ocpt_core::{
    Action, AppPayload, CtrlMsg, Envelope, FlushPolicy, MessageLog, OcptConfig, OcptProcess,
    Piggyback, Status, WritePolicy,
};
use ocpt_metrics::Counters;
use ocpt_sim::{MsgId, ProcessId, SimDuration, SimRng};

use crate::api::{CheckpointProtocol, EnvTelemetry, ProtoAction};

/// Timer tag space: `csn * 4 + kind`, kind ∈ {0: convergence timer,
/// 1: early flush of the tentative checkpoint, 2: deferred finalize write}.
fn conv_tag(csn: u64) -> u64 {
    csn * 4
}
fn flush_tag(csn: u64) -> u64 {
    csn * 4 + 1
}
fn write_tag(csn: u64) -> u64 {
    csn * 4 + 2
}

/// [`OcptProcess`] behind the [`CheckpointProtocol`] trait.
#[derive(Debug)]
pub struct OcptAdapter {
    inner: OcptProcess,
    /// Piggyback of the message currently between `on_arrival` and
    /// `after_delivery`.
    pending: Option<Piggyback>,
    /// csn whose tentative state has been (or is being) flushed.
    state_flushed_for: Option<u64>,
    /// csn with a pending jittered-flush timer.
    flush_timer_for: Option<u64>,
    /// Tag of the currently armed convergence timer. Needed because core's
    /// `CancelTimer` is positional: by the time we translate it, `csn` may
    /// already have advanced (finalize-then-take sequences).
    armed_conv: Option<u64>,
    /// Finalized-but-not-yet-written logs, waiting on the write policy.
    pending_finalize: HashMap<u64, MessageLog>,
    /// csn observed at the previous scheduled-checkpoint tick; a tick
    /// initiates only if no round has touched this process since — the
    /// paper's "no process takes more than one checkpoint in any time
    /// interval of t seconds" (§1).
    csn_at_last_tick: u64,
    rng: SimRng,
}

impl OcptAdapter {
    /// Wrap a new OCPT process.
    pub fn new(id: ProcessId, n: usize, cfg: OcptConfig, seed: u64) -> Self {
        OcptAdapter {
            inner: OcptProcess::new(id, n, cfg),
            pending: None,
            state_flushed_for: None,
            flush_timer_for: None,
            armed_conv: None,
            pending_finalize: HashMap::new(),
            csn_at_last_tick: 0,
            rng: SimRng::derive(seed, 0x0C97_4F1C ^ id.0 as u64),
        }
    }

    /// The wrapped protocol instance.
    pub fn inner(&self) -> &OcptProcess {
        &self.inner
    }

    /// Issue the storage writes of a finalized checkpoint: the tentative
    /// state (unless an early flush already covered it) and the frozen log.
    fn emit_finalize_writes(
        &mut self,
        csn: u64,
        log: MessageLog,
        out: &mut Vec<ProtoAction<Envelope>>,
    ) {
        if self.state_flushed_for != Some(csn) {
            self.state_flushed_for = Some(csn);
            out.push(ProtoAction::FlushState { seq: csn });
        }
        // Durable size of the frozen log exactly as `MessageLog::encode`
        // lays it out — for the default selective strategy this is the
        // legacy `4 + flush_bytes()` framing, byte for byte; the extended
        // strategies pay their window/clock header here too.
        let bytes = log.encoded_len();
        out.push(ProtoAction::FlushExtra { seq: csn, bytes, log: Some(log) });
    }

    fn translate(&mut self, core_out: Vec<Action>, out: &mut Vec<ProtoAction<Envelope>>) {
        for a in core_out {
            match a {
                Action::TakeTentative { csn } => {
                    out.push(ProtoAction::Snapshot { seq: csn });
                    match self.inner.config().flush_policy {
                        FlushPolicy::Eager => {
                            self.state_flushed_for = Some(csn);
                            out.push(ProtoAction::FlushState { seq: csn });
                        }
                        FlushPolicy::Lazy => {}
                        FlushPolicy::Jittered { max_delay } => {
                            let delay = self.rng.uniform_duration(SimDuration::ZERO, max_delay);
                            self.flush_timer_for = Some(csn);
                            out.push(ProtoAction::SetTimer { tag: flush_tag(csn), delay });
                        }
                    }
                }
                Action::Finalize { csn, log, excluded } => {
                    // The decision point: the cut and the content are fixed
                    // here; the storage writes land per the write policy.
                    if self.flush_timer_for.take().is_some() {
                        out.push(ProtoAction::CancelTimer { tag: flush_tag(csn) });
                    }
                    out.push(ProtoAction::MarkCut {
                        seq: csn,
                        back: u32::from(excluded.is_some()),
                    });
                    out.push(ProtoAction::Complete { seq: csn });
                    let delay = match self.inner.config().finalize_write {
                        WritePolicy::Immediate => None,
                        WritePolicy::Jittered { window } => {
                            Some(self.rng.uniform_duration(SimDuration::ZERO, window))
                        }
                        WritePolicy::Phased { window } => {
                            let n = self.inner.n() as u64;
                            Some(window * self.inner.id().0 as u64 / n)
                        }
                    };
                    match delay {
                        None | Some(SimDuration::ZERO) => self.emit_finalize_writes(csn, log, out),
                        Some(d) => {
                            self.pending_finalize.insert(csn, log);
                            out.push(ProtoAction::SetTimer { tag: write_tag(csn), delay: d });
                        }
                    }
                }
                Action::SendCtrl { dst, cm } => {
                    out.push(ProtoAction::Send { dst, env: Envelope::Ctrl(cm) });
                }
                Action::SetTimer { csn } => {
                    self.armed_conv = Some(conv_tag(csn));
                    out.push(ProtoAction::SetTimer {
                        tag: conv_tag(csn),
                        delay: self.inner.config().convergence_timeout,
                    });
                }
                Action::CancelTimer => {
                    if let Some(tag) = self.armed_conv.take() {
                        out.push(ProtoAction::CancelTimer { tag });
                    }
                }
            }
        }
    }
}

impl CheckpointProtocol for OcptAdapter {
    type Env = Envelope;

    fn name(&self) -> &'static str {
        "ocpt"
    }

    fn wrap_app(
        &mut self,
        dst: ProcessId,
        msg_id: MsgId,
        payload: AppPayload,
        _out: &mut Vec<ProtoAction<Envelope>>,
    ) -> Envelope {
        let pb = self.inner.on_app_send(dst, msg_id, payload);
        Envelope::App { pb, payload }
    }

    fn on_arrival(
        &mut self,
        src: ProcessId,
        _msg_id: MsgId,
        env: Envelope,
        out: &mut Vec<ProtoAction<Envelope>>,
    ) -> Result<Option<AppPayload>, String> {
        match env {
            Envelope::Ctrl(cm) => {
                let mut core_out = Vec::new();
                self.inner.on_ctrl_receive(src, cm, &mut core_out).map_err(|e| e.to_string())?;
                self.translate(core_out, out);
                Ok(None)
            }
            Envelope::App { pb, payload } => {
                // The paper processes the message first (§3.4.3); the case
                // analysis runs in `after_delivery`.
                debug_assert!(self.pending.is_none(), "overlapping deliveries");
                self.pending = Some(pb);
                Ok(Some(payload))
            }
        }
    }

    fn after_delivery(
        &mut self,
        src: ProcessId,
        msg_id: MsgId,
        payload: AppPayload,
        out: &mut Vec<ProtoAction<Envelope>>,
    ) -> Result<(), String> {
        let pb = self.pending.take().expect("after_delivery without on_arrival");
        let mut core_out = Vec::new();
        self.inner
            .on_app_receive(src, msg_id, payload, &pb, &mut core_out)
            .map_err(|e| e.to_string())?;
        self.translate(core_out, out);
        Ok(())
    }

    fn initiate(&mut self, out: &mut Vec<ProtoAction<Envelope>>) {
        if self.inner.csn() > self.csn_at_last_tick {
            // Already checkpointed this interval (joined another round).
            self.csn_at_last_tick = self.inner.csn();
            return;
        }
        let mut core_out = Vec::new();
        self.inner.initiate_checkpoint(&mut core_out);
        self.csn_at_last_tick = self.inner.csn();
        self.translate(core_out, out);
    }

    fn on_timer(&mut self, tag: u64, out: &mut Vec<ProtoAction<Envelope>>) {
        let csn = tag / 4;
        match tag % 4 {
            0 => {
                let mut core_out = Vec::new();
                self.inner.on_timer(csn, &mut core_out);
                self.translate(core_out, out);
            }
            1 => {
                // Early flush of the tentative checkpoint.
                if self.flush_timer_for == Some(csn)
                    && self.inner.status() == Status::Tentative
                    && self.inner.csn() == csn
                    && self.state_flushed_for != Some(csn)
                {
                    self.flush_timer_for = None;
                    self.state_flushed_for = Some(csn);
                    out.push(ProtoAction::FlushState { seq: csn });
                }
            }
            2 => {
                // Deferred finalize write.
                if let Some(log) = self.pending_finalize.remove(&csn) {
                    self.emit_finalize_writes(csn, log, out);
                }
            }
            _ => unreachable!("unknown adapter timer tag"),
        }
    }

    fn restore_from_line(&mut self, line: u64) -> Result<(), String> {
        self.inner =
            OcptProcess::restored(self.inner.id(), self.inner.n(), *self.inner.config(), line);
        self.pending = None;
        self.state_flushed_for = None;
        self.flush_timer_for = None;
        self.armed_conv = None;
        self.pending_finalize.clear();
        self.csn_at_last_tick = line;
        Ok(())
    }

    fn replay_envelope(&self, payload: AppPayload) -> Option<Envelope> {
        // The restored sender sits just after CFE(i, line): Normal status,
        // csn = line — exactly what it would have piggybacked had the
        // message been in flight across the recovery line.
        Some(Envelope::App {
            pb: Piggyback::new(
                self.inner.csn(),
                Status::Normal,
                ocpt_core::TentSet::empty(self.inner.n()),
            ),
            payload,
        })
    }

    fn env_wire_bytes(&self, env: &Envelope) -> u64 {
        env.wire_bytes(self.inner.n())
    }

    fn env_telemetry(&self, env: &Envelope) -> EnvTelemetry {
        match env {
            Envelope::Ctrl(cm) => {
                let code = match cm.kind {
                    ocpt_core::CtrlKind::CkBgn => "ctrl.ck_bgn",
                    ocpt_core::CtrlKind::CkReq => "ctrl.ck_req",
                    ocpt_core::CtrlKind::CkEnd => "ctrl.ck_end",
                    ocpt_core::CtrlKind::CkGrpDone => "ctrl.ck_grp_done",
                };
                EnvTelemetry::coded(code, cm.csn)
            }
            Envelope::App { pb, .. } => EnvTelemetry::in_round(pb.csn),
        }
    }

    fn stats(&self) -> &Counters {
        self.inner.stats()
    }
}

/// Convenience: the envelope type paired with [`OcptAdapter`].
pub type OcptEnv = Envelope;

/// Re-exported for drivers that need to inspect control messages.
pub type OcptCtrl = CtrlMsg;

#[cfg(test)]
mod tests {
    use super::*;

    fn adapter(i: u32, n: usize, policy: FlushPolicy) -> OcptAdapter {
        // Immediate finalize writes keep these unit tests synchronous; the
        // deferred policies get their own tests below.
        let cfg = OcptConfig {
            flush_policy: policy,
            finalize_write: WritePolicy::Immediate,
            ..OcptConfig::default()
        };
        OcptAdapter::new(ProcessId(i), n, cfg, 42)
    }

    fn pl() -> AppPayload {
        AppPayload { id: 1, len: 32 }
    }

    #[test]
    fn eager_policy_flushes_at_take() {
        let mut a = adapter(0, 4, FlushPolicy::Eager);
        let mut out = Vec::new();
        a.initiate(&mut out);
        assert!(out.contains(&ProtoAction::Snapshot { seq: 1 }));
        assert!(out.contains(&ProtoAction::FlushState { seq: 1 }));
    }

    #[test]
    fn lazy_policy_flushes_at_finalize() {
        let mut a0 = adapter(0, 2, FlushPolicy::Lazy);
        let mut a1 = adapter(1, 2, FlushPolicy::Lazy);
        let mut out = Vec::new();
        a0.initiate(&mut out);
        assert!(!out.iter().any(|x| matches!(x, ProtoAction::FlushState { .. })));
        let env = a0.wrap_app(ProcessId(1), MsgId(0), pl(), &mut out);
        out.clear();
        // P1 receives: with N=2 it finalizes immediately — state + log flushed.
        let d = a1.on_arrival(ProcessId(0), MsgId(0), env, &mut out).unwrap();
        assert_eq!(d, Some(pl()));
        a1.after_delivery(ProcessId(0), MsgId(0), pl(), &mut out).unwrap();
        assert!(out.contains(&ProtoAction::FlushState { seq: 1 }));
        assert!(out.iter().any(|x| matches!(x, ProtoAction::FlushExtra { seq: 1, .. })));
        assert!(out.contains(&ProtoAction::Complete { seq: 1 }));
    }

    #[test]
    fn jittered_policy_sets_flush_timer_then_flushes() {
        let mut a =
            adapter(2, 4, FlushPolicy::Jittered { max_delay: SimDuration::from_millis(10) });
        let mut out = Vec::new();
        a.initiate(&mut out);
        let tag = out
            .iter()
            .find_map(|x| match x {
                ProtoAction::SetTimer { tag, .. } if tag & 1 == 1 => Some(*tag),
                _ => None,
            })
            .expect("flush timer armed");
        out.clear();
        a.on_timer(tag, &mut out);
        assert_eq!(out, vec![ProtoAction::FlushState { seq: 1 }]);
        // Firing again is a no-op.
        out.clear();
        a.on_timer(tag, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn mark_cut_back_one_when_trigger_excluded() {
        // P1 tentative; P0 (finalized, normal, same csn) sends M → case 3b:
        // finalize excluding M → MarkCut back = 1.
        let mut a1 = adapter(1, 3, FlushPolicy::Lazy);
        let mut out = Vec::new();
        a1.initiate(&mut out);
        out.clear();
        let pb = Piggyback::new(1, Status::Normal, ocpt_core::TentSet::empty(3));
        let env = Envelope::App { pb, payload: pl() };
        a1.on_arrival(ProcessId(0), MsgId(7), env, &mut out).unwrap();
        a1.after_delivery(ProcessId(0), MsgId(7), pl(), &mut out).unwrap();
        assert!(out.contains(&ProtoAction::MarkCut { seq: 1, back: 1 }));
    }

    #[test]
    fn mark_cut_back_zero_when_trigger_included() {
        // N=2 allPSet path includes the trigger.
        let mut a0 = adapter(0, 2, FlushPolicy::Lazy);
        let mut a1 = adapter(1, 2, FlushPolicy::Lazy);
        let mut out = Vec::new();
        a0.initiate(&mut out);
        let env = a0.wrap_app(ProcessId(1), MsgId(0), pl(), &mut out);
        out.clear();
        a1.on_arrival(ProcessId(0), MsgId(0), env, &mut out).unwrap();
        a1.after_delivery(ProcessId(0), MsgId(0), pl(), &mut out).unwrap();
        assert!(out.contains(&ProtoAction::MarkCut { seq: 1, back: 0 }));
    }

    #[test]
    fn phased_write_policy_defers_finalize_writes() {
        let cfg = OcptConfig {
            flush_policy: FlushPolicy::Lazy,
            finalize_write: WritePolicy::Phased { window: SimDuration::from_millis(400) },
            ..OcptConfig::default()
        };
        let mut a0 = OcptAdapter::new(ProcessId(0), 2, cfg, 1);
        let mut a1 = OcptAdapter::new(ProcessId(1), 2, cfg, 1);
        let mut out = Vec::new();
        a0.initiate(&mut out);
        let env = a0.wrap_app(ProcessId(1), MsgId(0), pl(), &mut out);
        out.clear();
        a1.on_arrival(ProcessId(0), MsgId(0), env, &mut out).unwrap();
        a1.after_delivery(ProcessId(0), MsgId(0), pl(), &mut out).unwrap();
        // Finalize decision is visible immediately...
        assert!(out.contains(&ProtoAction::Complete { seq: 1 }));
        // ...but the writes are deferred behind a timer (P1 offset = 200ms).
        assert!(!out.iter().any(|x| matches!(x, ProtoAction::FlushState { .. })));
        let tag = out
            .iter()
            .find_map(|x| match x {
                ProtoAction::SetTimer { tag, delay } if tag % 4 == 2 => {
                    assert_eq!(*delay, SimDuration::from_millis(200));
                    Some(*tag)
                }
                _ => None,
            })
            .expect("deferred write timer");
        out.clear();
        a1.on_timer(tag, &mut out);
        assert!(out.contains(&ProtoAction::FlushState { seq: 1 }));
        assert!(out.iter().any(|x| matches!(x, ProtoAction::FlushExtra { seq: 1, .. })));
        // Timer re-fire is a no-op.
        out.clear();
        a1.on_timer(tag, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn phased_write_p0_writes_immediately() {
        let cfg = OcptConfig {
            flush_policy: FlushPolicy::Lazy,
            finalize_write: WritePolicy::Phased { window: SimDuration::from_millis(400) },
            ..OcptConfig::default()
        };
        // P0's phase offset is 0 → writes at the decision.
        let mut a0 = OcptAdapter::new(ProcessId(0), 2, cfg, 1);
        let mut a1 = OcptAdapter::new(ProcessId(1), 2, cfg, 1);
        let mut out = Vec::new();
        a1.initiate(&mut out);
        let env = a1.wrap_app(ProcessId(0), MsgId(0), pl(), &mut out);
        out.clear();
        a0.on_arrival(ProcessId(1), MsgId(0), env, &mut out).unwrap();
        a0.after_delivery(ProcessId(1), MsgId(0), pl(), &mut out).unwrap();
        assert!(out.contains(&ProtoAction::FlushState { seq: 1 }));
    }

    #[test]
    fn ctrl_messages_translate_to_sends() {
        let mut a = adapter(2, 4, FlushPolicy::Lazy);
        let mut out = Vec::new();
        a.initiate(&mut out);
        out.clear();
        // Convergence timer fires → CK_BGN to P0.
        a.on_timer(conv_tag(1), &mut out);
        assert!(out
            .iter()
            .any(|x| matches!(x, ProtoAction::Send { dst: ProcessId(0), env: Envelope::Ctrl(_) })));
    }

    #[test]
    fn wire_bytes_delegate() {
        let a = adapter(0, 4, FlushPolicy::Lazy);
        let env = Envelope::Ctrl(CtrlMsg { kind: ocpt_core::CtrlKind::CkBgn, csn: 1 });
        assert_eq!(a.env_wire_bytes(&env), env.wire_bytes(4));
    }

    #[test]
    fn trait_object_compatible_metadata() {
        let a = adapter(0, 4, FlushPolicy::Lazy);
        assert_eq!(a.name(), "ocpt");
        assert!(!a.needs_fifo());
        assert!(a.can_send_app());
    }
}
