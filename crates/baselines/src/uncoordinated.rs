//! Uncoordinated (fully asynchronous) checkpointing — the domino-effect
//! baseline (paper §1).
//!
//! Each process checkpoints on its own schedule with no coordination and
//! no piggybacks. Cheap in the failure-free path; the price appears at
//! recovery, where finding a consistent global state can cascade rollbacks
//! (the *domino effect*) — possibly all the way to the initial state.
//! Experiment E7 computes the recovery line for an injected failure with
//! the standard rollback-propagation fixpoint (in `ocpt-harness`, using
//! the observer's exact message record) and compares the work lost against
//! OCPT's bounded rollback.

use ocpt_core::AppPayload;
use ocpt_metrics::Counters;
use ocpt_sim::{MsgId, ProcessId};

use crate::api::{wire_cost, CheckpointProtocol, ProtoAction};

/// Envelope for uncoordinated runs: bare application messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UncoordEnv {
    /// The payload.
    pub payload: AppPayload,
}

/// One process's uncoordinated-checkpointing state.
#[derive(Debug)]
pub struct Uncoordinated {
    #[allow(dead_code)]
    id: ProcessId,
    seq: u64,
    stats: Counters,
}

impl Uncoordinated {
    /// A new instance for process `id`.
    pub fn new(id: ProcessId) -> Self {
        Uncoordinated { id, seq: 0, stats: Counters::new() }
    }

    /// Local checkpoint count so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl CheckpointProtocol for Uncoordinated {
    type Env = UncoordEnv;

    fn name(&self) -> &'static str {
        "uncoordinated"
    }

    fn wrap_app(
        &mut self,
        _dst: ProcessId,
        _msg_id: MsgId,
        payload: AppPayload,
        _out: &mut Vec<ProtoAction<UncoordEnv>>,
    ) -> UncoordEnv {
        self.stats.inc("app.sent");
        UncoordEnv { payload }
    }

    fn on_arrival(
        &mut self,
        _src: ProcessId,
        _msg_id: MsgId,
        env: UncoordEnv,
        _out: &mut Vec<ProtoAction<UncoordEnv>>,
    ) -> Result<Option<AppPayload>, String> {
        self.stats.inc("app.received");
        Ok(Some(env.payload))
    }

    fn initiate(&mut self, out: &mut Vec<ProtoAction<UncoordEnv>>) {
        self.seq += 1;
        self.stats.inc("ckpt.taken");
        out.push(ProtoAction::Snapshot { seq: self.seq });
        out.push(ProtoAction::MarkCut { seq: self.seq, back: 0 });
        out.push(ProtoAction::FlushState { seq: self.seq });
        out.push(ProtoAction::Complete { seq: self.seq });
    }

    fn env_wire_bytes(&self, env: &UncoordEnv) -> u64 {
        wire_cost::app(env.payload.len, 0)
    }

    fn stats(&self) -> &Counters {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoints_are_local_and_sequential() {
        let mut u = Uncoordinated::new(ProcessId(2));
        let mut out = Vec::new();
        u.initiate(&mut out);
        u.initiate(&mut out);
        assert_eq!(u.seq(), 2);
        assert_eq!(u.stats().get("ckpt.taken"), 2);
        assert!(out.contains(&ProtoAction::Complete { seq: 2 }));
    }

    #[test]
    fn no_piggyback_no_control() {
        let mut u = Uncoordinated::new(ProcessId(0));
        let mut out = Vec::new();
        let env = u.wrap_app(ProcessId(1), MsgId(0), AppPayload { id: 1, len: 10 }, &mut out);
        assert!(out.is_empty());
        assert_eq!(u.env_wire_bytes(&env), wire_cost::app(10, 0));
        let d = u.on_arrival(ProcessId(1), MsgId(1), env, &mut out).unwrap();
        assert!(d.is_some());
        assert!(out.is_empty());
    }
}
