//! Vaidya's staggered consistent checkpointing \[11\].
//!
//! The coordinated-but-staggered middle ground the paper compares itself
//! to (§4). A consistent line is fixed with a Chandy–Lamport-style marker
//! flood (*logical* checkpoints taken immediately, in memory), but the
//! *physical* writes to stable storage are serialised by a token that
//! walks `P_0 → P_1 → … → P_{N-1}`: a process writes only when it holds
//! the token, and forwards it when its write is durable. At most one
//! checkpoint write is in flight at any time, eliminating contention — at
//! the price of a long completion tail and extra control messages, which
//! is the trade-off E1/E2 quantify against OCPT's approach.
//!
//! Simplification vs. \[11\]: Vaidya converts logical to physical
//! checkpoints with message logging between the two; we charge the
//! recorded channel state with the physical write. The storage behaviour
//! (serialised writes on a consistent line) — the property under study —
//! is preserved.

use ocpt_core::AppPayload;
use ocpt_metrics::Counters;
use ocpt_sim::{MsgId, ProcessId};

use crate::api::{wire_cost, CheckpointProtocol, EnvTelemetry, ProtoAction};

/// Envelope for staggered-checkpointing runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StagEnv {
    /// Application message.
    App {
        /// The payload.
        payload: AppPayload,
    },
    /// Consistent-line marker (CL-style; requires FIFO).
    Marker {
        /// Round id.
        seq: u64,
    },
    /// The write token: holder may write its physical checkpoint.
    Token {
        /// Round id.
        seq: u64,
    },
}

/// One process's staggered-checkpointing state.
#[derive(Debug)]
pub struct Staggered {
    id: ProcessId,
    n: usize,
    seq: u64,
    /// Logical checkpoint taken for the current round.
    logical_taken: bool,
    /// Physical write issued and we must forward the token when durable.
    writing: bool,
    /// Marker bookkeeping (channel state recording, as in CL).
    awaiting: Vec<bool>,
    awaiting_count: usize,
    recording: bool,
    channel_bytes: u64,
    /// Token arrived before the logical checkpoint (possible with slow
    /// markers): hold it until the logical checkpoint is taken.
    token_pending: bool,
    stats: Counters,
}

impl Staggered {
    /// A new instance for process `id` of `n`.
    pub fn new(id: ProcessId, n: usize) -> Self {
        assert!(n >= 2);
        Staggered {
            id,
            n,
            seq: 0,
            logical_taken: false,
            writing: false,
            awaiting: vec![false; n],
            awaiting_count: 0,
            recording: false,
            channel_bytes: 0,
            token_pending: false,
            stats: Counters::new(),
        }
    }

    fn record_logical(
        &mut self,
        seq: u64,
        skip_from: Option<ProcessId>,
        out: &mut Vec<ProtoAction<StagEnv>>,
    ) {
        self.seq = seq;
        self.logical_taken = true;
        self.recording = true;
        self.channel_bytes = 0;
        self.stats.inc("ckpt.taken");
        // Logical checkpoint: snapshot in memory, NO storage write yet.
        out.push(ProtoAction::Snapshot { seq });
        out.push(ProtoAction::MarkCut { seq, back: 0 });
        for p in ProcessId::all(self.n).filter(|p| *p != self.id) {
            self.stats.inc("ctrl.marker_sent");
            out.push(ProtoAction::Send { dst: p, env: StagEnv::Marker { seq } });
        }
        self.awaiting_count = 0;
        for p in ProcessId::all(self.n) {
            let waiting = p != self.id && Some(p) != skip_from;
            self.awaiting[p.index()] = waiting;
            self.awaiting_count += usize::from(waiting);
        }
        if self.awaiting_count == 0 {
            self.recording = false;
        }
        if self.token_pending {
            self.token_pending = false;
            self.start_physical_write(out);
        }
    }

    fn start_physical_write(&mut self, out: &mut Vec<ProtoAction<StagEnv>>) {
        debug_assert!(self.logical_taken);
        self.writing = true;
        self.stats.inc("ckpt.physical_write");
        out.push(ProtoAction::FlushState { seq: self.seq });
        if self.channel_bytes > 0 {
            out.push(ProtoAction::FlushExtra {
                seq: self.seq,
                bytes: self.channel_bytes,
                log: None,
            });
        }
    }
}

impl CheckpointProtocol for Staggered {
    type Env = StagEnv;

    fn name(&self) -> &'static str {
        "staggered"
    }

    fn needs_fifo(&self) -> bool {
        true
    }

    fn wrap_app(
        &mut self,
        _dst: ProcessId,
        _msg_id: MsgId,
        payload: AppPayload,
        _out: &mut Vec<ProtoAction<StagEnv>>,
    ) -> StagEnv {
        self.stats.inc("app.sent");
        StagEnv::App { payload }
    }

    fn on_arrival(
        &mut self,
        src: ProcessId,
        _msg_id: MsgId,
        env: StagEnv,
        out: &mut Vec<ProtoAction<StagEnv>>,
    ) -> Result<Option<AppPayload>, String> {
        match env {
            StagEnv::App { payload } => {
                self.stats.inc("app.received");
                if self.recording && self.awaiting[src.index()] {
                    self.channel_bytes += payload.len as u64;
                    self.stats.inc("log.channel_msgs");
                }
                Ok(Some(payload))
            }
            StagEnv::Marker { seq } => {
                self.stats.inc("ctrl.marker_received");
                if seq > self.seq {
                    if seq != self.seq + 1 {
                        return Err(format!(
                            "{}: marker skips to {seq} from {}",
                            self.id, self.seq
                        ));
                    }
                    self.record_logical(seq, Some(src), out);
                } else if seq == self.seq && self.recording && self.awaiting[src.index()] {
                    self.awaiting[src.index()] = false;
                    self.awaiting_count -= 1;
                    if self.awaiting_count == 0 {
                        self.recording = false;
                    }
                }
                Ok(None)
            }
            StagEnv::Token { seq } => {
                self.stats.inc("ctrl.token_received");
                if seq != self.seq && seq != self.seq + 1 {
                    return Err(format!("{}: token for round {seq} at {}", self.id, self.seq));
                }
                if seq == self.seq + 1 {
                    // Token outran the marker (non-FIFO across different
                    // channels): take the logical checkpoint now.
                    self.record_logical(seq, None, out);
                    self.token_pending = false;
                    self.start_physical_write(out);
                } else if self.logical_taken && !self.writing {
                    self.start_physical_write(out);
                } else {
                    self.token_pending = true;
                }
                Ok(None)
            }
        }
    }

    fn on_storage_done(&mut self, seq: u64, out: &mut Vec<ProtoAction<StagEnv>>) {
        if !self.writing || seq != self.seq {
            return;
        }
        self.writing = false;
        self.logical_taken = false;
        out.push(ProtoAction::Complete { seq });
        // Pass the token on; the last process completes the round.
        let next = self.id.0 + 1;
        if (next as usize) < self.n {
            self.stats.inc("ctrl.token_sent");
            out.push(ProtoAction::Send { dst: ProcessId(next), env: StagEnv::Token { seq } });
        }
    }

    fn initiate(&mut self, out: &mut Vec<ProtoAction<StagEnv>>) {
        if self.id != ProcessId::P0 {
            return;
        }
        if self.logical_taken || self.writing {
            self.stats.inc("ckpt.initiation_skipped");
            return;
        }
        let seq = self.seq + 1;
        self.record_logical(seq, None, out);
        // P0 is first in the stagger order: write immediately.
        self.start_physical_write(out);
    }

    fn env_wire_bytes(&self, env: &StagEnv) -> u64 {
        match env {
            StagEnv::App { payload } => wire_cost::app(payload.len, 0),
            _ => wire_cost::CTRL,
        }
    }

    fn env_telemetry(&self, env: &StagEnv) -> EnvTelemetry {
        match env {
            StagEnv::App { .. } => EnvTelemetry::default(),
            StagEnv::Marker { seq } => EnvTelemetry::coded("ctrl.marker", *seq),
            StagEnv::Token { seq } => EnvTelemetry::coded("ctrl.token", *seq),
        }
    }

    fn stats(&self) -> &Counters {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(len: u32) -> AppPayload {
        AppPayload { id: 1, len }
    }

    #[test]
    fn p0_takes_logical_and_writes_first() {
        let mut s = Staggered::new(ProcessId(0), 3);
        let mut out = Vec::new();
        s.initiate(&mut out);
        assert!(out.contains(&ProtoAction::Snapshot { seq: 1 }));
        assert!(out.contains(&ProtoAction::FlushState { seq: 1 }));
        let markers = out
            .iter()
            .filter(|a| matches!(a, ProtoAction::Send { env: StagEnv::Marker { .. }, .. }))
            .count();
        assert_eq!(markers, 2);
    }

    #[test]
    fn token_forwarded_only_after_durable_write() {
        let mut s = Staggered::new(ProcessId(0), 3);
        let mut out = Vec::new();
        s.initiate(&mut out);
        out.clear();
        // Nothing forwarded yet.
        s.on_storage_done(1, &mut out);
        assert!(out.contains(&ProtoAction::Complete { seq: 1 }));
        assert!(
            out.contains(&ProtoAction::Send { dst: ProcessId(1), env: StagEnv::Token { seq: 1 } })
        );
    }

    #[test]
    fn marker_then_token_writes_once() {
        let mut s = Staggered::new(ProcessId(1), 3);
        let mut out = Vec::new();
        s.on_arrival(ProcessId(0), MsgId(0), StagEnv::Marker { seq: 1 }, &mut out).unwrap();
        // Logical only: no flush yet.
        assert!(!out.iter().any(|a| matches!(a, ProtoAction::FlushState { .. })));
        out.clear();
        s.on_arrival(ProcessId(0), MsgId(1), StagEnv::Token { seq: 1 }, &mut out).unwrap();
        assert!(out.contains(&ProtoAction::FlushState { seq: 1 }));
        out.clear();
        s.on_storage_done(1, &mut out);
        assert!(
            out.contains(&ProtoAction::Send { dst: ProcessId(2), env: StagEnv::Token { seq: 1 } })
        );
    }

    #[test]
    fn token_before_marker_takes_checkpoint() {
        let mut s = Staggered::new(ProcessId(1), 3);
        let mut out = Vec::new();
        s.on_arrival(ProcessId(0), MsgId(0), StagEnv::Token { seq: 1 }, &mut out).unwrap();
        assert!(out.contains(&ProtoAction::Snapshot { seq: 1 }));
        assert!(out.contains(&ProtoAction::FlushState { seq: 1 }));
    }

    #[test]
    fn last_process_does_not_forward() {
        let mut s = Staggered::new(ProcessId(2), 3);
        let mut out = Vec::new();
        s.on_arrival(ProcessId(0), MsgId(0), StagEnv::Marker { seq: 1 }, &mut out).unwrap();
        s.on_arrival(ProcessId(1), MsgId(1), StagEnv::Token { seq: 1 }, &mut out).unwrap();
        out.clear();
        s.on_storage_done(1, &mut out);
        assert!(out.contains(&ProtoAction::Complete { seq: 1 }));
        assert!(!out.iter().any(|a| matches!(a, ProtoAction::Send { .. })));
    }

    #[test]
    fn channel_state_flushed_with_physical_write() {
        let mut s = Staggered::new(ProcessId(1), 3);
        let mut out = Vec::new();
        s.on_arrival(ProcessId(0), MsgId(0), StagEnv::Marker { seq: 1 }, &mut out).unwrap();
        s.on_arrival(ProcessId(2), MsgId(1), StagEnv::App { payload: pl(40) }, &mut out).unwrap();
        out.clear();
        s.on_arrival(ProcessId(0), MsgId(2), StagEnv::Token { seq: 1 }, &mut out).unwrap();
        assert!(out.iter().any(|a| matches!(a, ProtoAction::FlushExtra { bytes: 40, .. })));
    }

    #[test]
    fn app_passthrough_and_metadata() {
        let mut s = Staggered::new(ProcessId(1), 3);
        let mut out = Vec::new();
        let d = s
            .on_arrival(ProcessId(0), MsgId(0), StagEnv::App { payload: pl(7) }, &mut out)
            .unwrap();
        assert_eq!(d, Some(pl(7)));
        assert!(s.needs_fifo());
        assert_eq!(s.name(), "staggered");
    }
}
